//! Shared plumbing for the paper-reproduction benchmark targets.
//!
//! Every table and figure of the paper's evaluation (§5, Appendix B)
//! has a bench target (`cargo bench --bench <name>`) that prints the
//! same rows/series the paper reports. These helpers hold the common
//! configuration so all targets agree on scales and settings.
//!
//! Environment knobs:
//!
//! * `TGL_BENCH_SCALE` — integer divisor applied to every dataset's
//!   node/edge counts (default 2, sized so the full suite finishes in
//!   roughly an hour on a 2-core CPU box; use 1 for the largest runs
//!   or 8+ for a quick smoke run);
//! * `TGL_BENCH_EPOCHS` — override training epoch count (default 2).

use tgl_data::{DatasetKind, DatasetSpec};
use tgl_device::TransferModel;
use tgl_harness::{ExperimentConfig, Framework, ModelKind, Placement};

/// Reads the dataset scale divisor from `TGL_BENCH_SCALE`.
pub fn bench_scale() -> usize {
    std::env::var("TGL_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Reads the epoch override from `TGL_BENCH_EPOCHS`.
pub fn bench_epochs(default: usize) -> usize {
    std::env::var("TGL_BENCH_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The compute-slowdown factor between this CPU substrate and the
/// paper's GPUs, used to scale the simulated PCIe link so the
/// transfer:compute ratio matches the paper (see
/// `TransferModel::scaled`).
pub const COMPUTE_SLOWDOWN: f64 = 400.0;

/// The simulated V100-machine PCIe link at reproduction scale.
pub fn sim_link_v100() -> TransferModel {
    TransferModel::scaled(TransferModel::pcie_v100(), COMPUTE_SLOWDOWN)
}

/// Builds the standard experiment config for one grid cell, applying
/// the bench-scale knobs.
pub fn cell(
    framework: Framework,
    model: ModelKind,
    kind: DatasetKind,
    placement: Placement,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(framework, model, kind, placement);
    cfg.dataset = DatasetSpec::of(kind).scaled_down(bench_scale());
    cfg.train_cfg.epochs = bench_epochs(2);
    cfg.transfer = sim_link_v100();
    cfg
}

/// One row of the standard evaluation grid.
#[derive(Debug, Clone)]
pub struct GridRow {
    /// Framework under test.
    pub framework: Framework,
    /// Model under test.
    pub model: ModelKind,
    /// Dataset shape.
    pub dataset: DatasetKind,
    /// Mean training seconds per epoch.
    pub train_s: f64,
    /// Test-split inference seconds.
    pub test_s: f64,
    /// Best validation AP.
    pub val_ap: f64,
    /// Test AP.
    pub test_ap: f64,
}

/// Runs (or loads from the on-disk cache) the full standard grid —
/// 4 models × 4 standard datasets × 3 frameworks — for one placement.
///
/// Figure 5 / Table 4 / Table 5 all report views of the same grid, so
/// results are cached under `target/` keyed by placement, scale, and
/// epochs; delete the file (or change `TGL_BENCH_SCALE`) to recompute.
/// The JODIE `TGLite+opt` cell reuses the `TGLite` measurement (the
/// paper applies no further operators to JODIE).
pub fn standard_grid(placement: Placement) -> Vec<GridRow> {
    let tag = match placement {
        Placement::AllOnDevice => "gpu",
        Placement::HostResident => "cpu",
    };
    // Bench binaries run with the package directory as CWD; anchor the
    // cache at the workspace target dir instead.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!(
        "../../target/tgl-grid-{tag}-s{}-e{}.csv",
        bench_scale(),
        bench_epochs(2)
    ));
    if let Some(rows) = load_grid(&path) {
        eprintln!("(reusing cached grid results from {})", path.display());
        return rows;
    }
    let mut rows = Vec::new();
    for kind in DatasetKind::standard() {
        for model in ModelKind::all() {
            let mut lite_row: Option<GridRow> = None;
            for fw in Framework::all() {
                if fw == Framework::TgLiteOpt && model == ModelKind::Jodie {
                    let mut r = lite_row.clone().expect("TGLite ran before TGLite+opt");
                    r.framework = Framework::TgLiteOpt;
                    rows.push(r);
                    continue;
                }
                let cfg = cell(fw, model, kind, placement);
                let r = tgl_harness::run_experiment(&cfg);
                let row = GridRow {
                    framework: fw,
                    model,
                    dataset: kind,
                    train_s: r.train_s_per_epoch,
                    test_s: r.test_s,
                    val_ap: r.best_val_ap,
                    test_ap: r.test_ap,
                };
                eprintln!(
                    "  [{}] {}/{}: train {:.2}s/epoch test {:.2}s val-AP {:.3}",
                    fw.label(),
                    kind.name(),
                    model.label(),
                    row.train_s,
                    row.test_s,
                    row.val_ap
                );
                if fw == Framework::TgLite {
                    lite_row = Some(row.clone());
                }
                rows.push(row);
            }
        }
    }
    save_grid(&path, &rows);
    rows
}

/// Fetches one grid row.
///
/// # Panics
///
/// Panics if the combination is missing (grid covers the standard
/// datasets only).
pub fn grid_lookup(
    rows: &[GridRow],
    fw: Framework,
    model: ModelKind,
    dataset: DatasetKind,
) -> &GridRow {
    rows.iter()
        .find(|r| r.framework == fw && r.model == model && r.dataset == dataset)
        .expect("grid cell missing")
}

fn save_grid(path: &std::path::Path, rows: &[GridRow]) {
    let mut s = String::from("framework,model,dataset,train_s,test_s,val_ap,test_ap\n");
    for r in rows {
        s.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.framework.label(),
            r.model.label(),
            r.dataset.name(),
            r.train_s,
            r.test_s,
            r.val_ap,
            r.test_ap
        ));
    }
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("(could not cache grid to {}: {e})", path.display());
    }
}

fn load_grid(path: &std::path::Path) -> Option<Vec<GridRow>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 7 {
            return None;
        }
        let framework = Framework::all().into_iter().find(|x| x.label() == f[0])?;
        let model = ModelKind::all().into_iter().find(|x| x.label() == f[1])?;
        let dataset = DatasetKind::all().into_iter().find(|x| x.name() == f[2])?;
        rows.push(GridRow {
            framework,
            model,
            dataset,
            train_s: f[3].parse().ok()?,
            test_s: f[4].parse().ok()?,
            val_ap: f[5].parse().ok()?,
            test_ap: f[6].parse().ok()?,
        });
    }
    (rows.len() == 48).then_some(rows)
}

/// Prints the standard bench preamble.
pub fn preamble(what: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{what}");
    println!("reproduces: {paper_ref}");
    println!(
        "scale divisor: {} | epochs: {} | synthetic datasets (see DESIGN.md)",
        bench_scale(),
        bench_epochs(2)
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        if std::env::var("TGL_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), 2);
        }
        if std::env::var("TGL_BENCH_EPOCHS").is_err() {
            assert_eq!(bench_epochs(3), 3);
        }
    }

    #[test]
    fn scaled_link_is_slower_than_real() {
        let real = TransferModel::pcie_v100();
        let sim = sim_link_v100();
        assert!(sim.pageable_bw < real.pageable_bw);
        assert!(sim.enabled);
    }

    #[test]
    fn cell_builds_config() {
        let c = cell(
            Framework::Tgl,
            ModelKind::Tgat,
            DatasetKind::Wiki,
            Placement::AllOnDevice,
        );
        assert_eq!(c.model, ModelKind::Tgat);
        assert!(c.dataset.n_edges > 0);
    }
}
