//! Regenerates **Table 7** — training and inference times on the
//! large-scale benchmarks (WikiTalk-shape and GDELT-shape), data
//! host-resident, TGL vs TGLite+opt, under a simulated V100-class
//! device-memory capacity.
//!
//! Expected shape (paper §5.5): TGLite+opt ≥1.15× everywhere, strongly
//! amplified for TGAT/TGN on GDELT; TGL runs **OOM** for TGAT/TGN
//! under the tighter (V100-like) capacity while TGLite+opt completes.

use tgl_bench::{bench_epochs, bench_scale, preamble, sim_link_v100};
use tgl_data::{DatasetKind, DatasetSpec};
use tgl_harness::table::{secs, speedup, TextTable};
use tgl_harness::{
    run_experiment_with_capacity, ExperimentConfig, Framework, ModelKind, Placement,
};

fn large_cell(fw: Framework, model: ModelKind, kind: DatasetKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(fw, model, kind, Placement::HostResident);
    cfg.dataset = DatasetSpec::of(kind).scaled_down(bench_scale());
    // Paper: batch 4000 and fewer epochs for the large sets.
    cfg.train_cfg.batch_size = 400;
    cfg.train_cfg.epochs = bench_epochs(1);
    cfg.transfer = sim_link_v100();
    cfg
}

fn main() {
    preamble(
        "Table 7: large-scale training/inference times (host-resident)",
        "paper §5.5, Table 7",
    );
    tgl_device::set_transfer_model(sim_link_v100());

    // Phase 1: TGLite+opt runs, recording per-cell peak device usage.
    let mut lite: Vec<(DatasetKind, ModelKind, f64, f64, u64)> = Vec::new();
    for kind in [DatasetKind::WikiTalk, DatasetKind::Gdelt] {
        for model in ModelKind::all() {
            let fw = if model == ModelKind::Jodie {
                Framework::TgLite // JODIE has no further opts
            } else {
                Framework::TgLiteOpt
            };
            let cfg = large_cell(fw, model, kind);
            tgl_device::set_transfer_model(sim_link_v100());
            let r = run_experiment_with_capacity(&cfg, None).expect("TGLite must complete");
            lite.push((kind, model, r.train_s_per_epoch, r.test_s, r.peak_device_bytes));
            eprintln!(
                "  [TGLite+opt] {}/{}: train {:.1}s test {:.1}s peak {} MiB",
                kind.name(),
                model.label(),
                r.train_s_per_epoch,
                r.test_s,
                r.peak_device_bytes >> 20
            );
        }
    }
    // Simulated V100 capacity: sized so TGLite's working set fits with
    // headroom, mirroring the V100:workload ratio of the paper (the
    // A100, with 5x the memory, fits everything).
    let max_lite_peak = lite.iter().map(|r| r.4).max().unwrap_or(0);
    let cap_v100 = max_lite_peak * 2;
    println!(
        "\nsimulated V100 device capacity: {} MiB (2x TGLite+opt peak of {} MiB)\n",
        cap_v100 >> 20,
        max_lite_peak >> 20
    );

    // Phase 2: TGL baseline under the capacity cap.
    let mut t = TextTable::new(&[
        "Data", "Model", "TGL train", "TGL test", "TGLite+opt train", "TGLite+opt test",
    ]);
    for &(kind, model, lite_train, lite_test, _) in &lite {
        let cfg = large_cell(Framework::Tgl, model, kind);
        tgl_device::set_transfer_model(sim_link_v100());
        let (tgl_train_cell, tgl_test_cell, train_sp, test_sp) =
            match run_experiment_with_capacity(&cfg, Some(cap_v100)) {
                Ok(r) => (
                    secs(r.train_s_per_epoch),
                    secs(r.test_s),
                    speedup(r.train_s_per_epoch, lite_train),
                    speedup(r.test_s, lite_test),
                ),
                Err(oom) => {
                    eprintln!("  [TGL] {}/{}: {oom}", kind.name(), model.label());
                    ("OOM".into(), "OOM".into(), String::new(), String::new())
                }
            };
        t.row(&[
            kind.name().to_string(),
            model.label().to_string(),
            tgl_train_cell,
            tgl_test_cell,
            format!("{} {train_sp}", secs(lite_train)),
            format!("{} {test_sp}", secs(lite_test)),
        ]);
    }
    tgl_device::set_transfer_model(tgl_device::TransferModel::disabled());
    println!("{}", t.render());
    println!("\n(speedups vs TGL in parentheses; OOM = the baseline exceeded");
    println!(" the simulated V100 capacity, as in the paper's Table 7)");
}
