//! Regenerates **Table 6** — inference-runtime speedup from one
//! optimization operator at a time (TGAT / LastFM-shape), for both
//! data placements.
//!
//! Expected shape (paper §5.4): each single optimization improves over
//! plain TGLite; dedup and cache bring the largest gains; everything
//! is amplified in the CPU-to-GPU case.

use std::sync::Arc;

use tgl_bench::{bench_scale, preamble, sim_link_v100};
use tgl_data::{generate, DatasetKind, DatasetSpec, NegativeSampler, Split};
use tgl_device::{Device, TransferModel};
use tgl_harness::table::{speedup, TextTable};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tglite::tensor::no_grad;
use tglite::{TBatch, TContext};

/// Inference wall time over the test split for a TGAT with `opts`.
fn inference_time(
    spec: &DatasetSpec,
    host_resident: bool,
    opts: OptFlags,
    is_baseline: bool,
) -> f64 {
    let (g, _) = generate(spec);
    if !host_resident {
        if let Some(f) = g.node_feats() {
            g.set_node_feats(f.to(Device::Accel));
        }
        if let Some(f) = g.edge_feats() {
            g.set_edge_feats(f.to(Device::Accel));
        }
    }
    tgl_device::set_transfer_model(if host_resident {
        sim_link_v100()
    } else {
        TransferModel::disabled()
    });
    let ctx = TContext::with_device(Arc::clone(&g), Device::Accel);
    let split = Split::standard(&g);
    let cfg = ModelConfig {
        emb_dim: 32,
        time_dim: 16,
        heads: 2,
        n_layers: 2,
        n_neighbors: 10,
        mailbox_slots: 10,
    };
    let mut negs = NegativeSampler::for_spec(spec, 3);
    let elapsed = if is_baseline {
        let mut model = tgl_baseline::BaselineTgat::new(&ctx, cfg, 5);
        run_inference(&mut model, &ctx, &g, &split, &mut negs)
    } else {
        let mut model = Tgat::new(&ctx, cfg, opts, 5);
        model.set_training(false);
        run_inference(&mut model, &ctx, &g, &split, &mut negs)
    };
    tgl_device::set_transfer_model(TransferModel::disabled());
    elapsed
}

fn run_inference<M: TemporalModel>(
    model: &mut M,
    ctx: &TContext,
    g: &Arc<tglite::TGraph>,
    split: &Split,
    negs: &mut NegativeSampler,
) -> f64 {
    let start = tgl_harness::CpuTimer::start();
    let _guard = no_grad();
    for r in Split::batches(&split.test, 200) {
        let mut batch = TBatch::new(Arc::clone(g), r);
        batch.set_negatives(negs.draw(batch.len()));
        let _ = model.forward(ctx, &batch);
    }
    start.elapsed_s()
}

fn main() {
    preamble(
        "Table 6: per-optimization inference speedups (TGAT / LastFM)",
        "paper §5.4, Table 6",
    );
    let spec = DatasetSpec::of(DatasetKind::Lastfm).scaled_down(bench_scale());
    let variants: [(&str, OptFlags); 4] = [
        ("TGLite", OptFlags::preload_only()),
        (
            "+dedup",
            OptFlags {
                dedup: true,
                ..OptFlags::preload_only()
            },
        ),
        (
            "+cache",
            OptFlags {
                cache: true,
                ..OptFlags::preload_only()
            },
        ),
        (
            "+time",
            OptFlags {
                time_precompute: true,
                ..OptFlags::preload_only()
            },
        ),
    ];
    let mut t = TextTable::new(&["Case", "TGLite", "+dedup", "+cache", "+time"]);
    for &host_resident in &[true, false] {
        let case = if host_resident { "CPU-to-GPU" } else { "All-on-GPU" };
        let tgl = inference_time(&spec, host_resident, OptFlags::none(), true);
        let mut cells: Vec<String> = vec![case.to_string()];
        for (_, opts) in &variants {
            let ours = inference_time(&spec, host_resident, *opts, false);
            cells.push(speedup(tgl, ours).trim_matches(['(', ')']).to_string());
        }
        t.row(&cells);
        println!("  [{case}] TGL baseline: {tgl:.2}s");
    }
    println!("{}", t.render());
    println!("\n(speedups vs the TGL baseline, one optimization enabled at a");
    println!(" time on top of plain TGLite, as in the paper's Table 6)");
}
