//! Regenerates **Table 4** — training-evaluation AP scores (best
//! epoch) for the all-on-GPU case.
//!
//! Expected shape (paper §5.2.1): all three settings land within a
//! point or two of each other for each model/dataset — the
//! optimizations are semantic-preserving, so differences come only
//! from training stochasticity.
//!
//! Shares the cached standard grid with fig5/table5.

use tgl_bench::{grid_lookup, preamble, standard_grid};
use tgl_data::DatasetKind;
use tgl_harness::table::{ap, TextTable};
use tgl_harness::{Framework, ModelKind, Placement};

fn main() {
    preamble(
        "Table 4: training evaluation AP (best epoch), all-on-GPU",
        "paper §5.2.1, Table 4",
    );
    let grid = standard_grid(Placement::AllOnDevice);
    let mut t = TextTable::new(&["Data", "Model", "TGL", "TGLite", "TGLite+opt"]);
    for kind in DatasetKind::standard() {
        for model in ModelKind::all() {
            t.row(&[
                kind.name().to_string(),
                model.label().to_string(),
                ap(grid_lookup(&grid, Framework::Tgl, model, kind).val_ap),
                ap(grid_lookup(&grid, Framework::TgLite, model, kind).val_ap),
                if model == ModelKind::Jodie {
                    "-".into()
                } else {
                    ap(grid_lookup(&grid, Framework::TgLiteOpt, model, kind).val_ap)
                },
            ]);
        }
    }
    println!("{}", t.render());
    println!("\n(AP in percent on the validation split; '-' marks JODIE's");
    println!(" skipped TGLite+opt setting, as in the paper)");
}
