//! Overhead guard for the observability layer.
//!
//! The ISSUE's acceptance bar: observability must cost ≤ 2% when
//! disabled. A disabled counter site is a relaxed atomic load + branch
//! and a disabled span is one relaxed load, so the real budget is
//! noise — this bench measures a representative instrumented workload
//! (batch temporal sampling + dedup, the hottest counter paths) with
//! every observability feature disabled vs. enabled-but-draining, and
//! **asserts** the disabled path is within the budget of a baseline
//! run, rather than eyeballing it.
//!
//! Single-core CI boxes jitter by a few percent on sub-microsecond
//! timings, so the guard compares medians of interleaved rounds and
//! allows a small absolute slack on top of the 2% relative budget.

use std::sync::Arc;
use std::time::Instant;

use tgl_data::{generate, DatasetKind, DatasetSpec};
use tgl_sampler::{SamplingStrategy, TemporalSampler};
use tglite::obs;
use tglite::{op, prof, TBlock, TContext, TSampler};

/// Mean seconds/iter over an adaptive iteration count (~`budget_s`).
fn time_it<R>(mut f: impl FnMut() -> R, budget_s: f64) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget_s / once) as usize).clamp(1, 10_000);
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    println!("== observability overhead guard ==");
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(4);
    let (g, _) = generate(&spec);
    let ctx = TContext::new(Arc::clone(&g));
    let csr = g.tcsr();
    let n = 512usize;
    let nodes: Vec<u32> = (0..n as u32).map(|i| i % g.num_nodes() as u32).collect();
    let times: Vec<f64> = vec![g.max_time(); n];
    let sampler = TemporalSampler::new(10, SamplingStrategy::Recent);
    let blk_sampler = TSampler::new(10, SamplingStrategy::Recent);

    // The measured workload walks the hottest instrumented paths:
    // sampler counters, dedup counters, a latency histogram timer, a
    // gauge store, and a profiled scope per iter — every kind of site
    // the telemetry layer plants in the training loop.
    let workload = || {
        let _s = prof::scope("obs-overhead-workload");
        let _lat = tgl_obs::histogram!("bench.workload_ns").timer();
        // The per-batch insight bag the trainer installs: disabled,
        // begin/flush are one relaxed load each and the observation
        // sites inside sampler/dedup short-circuit the same way.
        tgl_obs::insight::begin_batch();
        // A per-op profiler site, the kind every tensor kernel now
        // carries: disabled it must be one relaxed load.
        let _op = tgl_obs::profile::op("bench.workload_op")
            .flops(64)
            .io(256, 256);
        let sample = sampler.sample(&csr, &nodes, &times);
        let blk = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
        op::dedup(&blk);
        blk_sampler.sample(&blk);
        tgl_obs::gauge!("bench.block_len").set(sample.len() as f64);
        // The per-step time-series push the trainer plants on the loss
        // path: disabled it must be one relaxed load + branch.
        tgl_obs::timeseries::record("bench.workload_loss", sample.len() as f64);
        tgl_obs::insight::flush_step();
        sample.len()
    };

    // Interleave rounds so slow drift (thermal, host load) hits both
    // configurations equally.
    const ROUNDS: usize = 7;
    let mut off = Vec::with_capacity(ROUNDS);
    let mut on = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        obs::metrics::set_enabled(false);
        prof::enable(false);
        obs::trace::enable(false);
        obs::profile::enable(false);
        obs::flight::enable(false);
        obs::timeseries::enable(false);
        obs::insight::enable(false);
        off.push(time_it(workload, 0.15));

        obs::metrics::set_enabled(true);
        prof::enable(true);
        obs::trace::enable(true);
        obs::profile::enable(true);
        obs::flight::enable(true);
        obs::timeseries::enable(true);
        obs::insight::enable(true);
        on.push(time_it(workload, 0.15));
        // Drain so the trace/profile sinks cannot grow across rounds.
        // (The time-series ring is retention-bounded and needs none.)
        obs::trace::take();
        prof::take();
        obs::profile::take();
    }
    obs::metrics::set_enabled(true);
    prof::enable(false);
    obs::trace::enable(false);
    obs::profile::enable(false);
    obs::flight::enable(false);
    obs::timeseries::enable(false);
    obs::insight::enable(false);
    obs::insight::reset();

    let off_med = median(off);
    let on_med = median(on);
    println!("  disabled: {:>10.1} us/iter", off_med * 1e6);
    println!(
        "  enabled:  {:>10.1} us/iter  ({:+.2}%)",
        on_med * 1e6,
        (on_med / off_med - 1.0) * 100.0
    );

    // The ≤2% acceptance criterion applies to *disabled* observability.
    // Sites stay compiled in either way, so "disabled" here means all
    // seven enable gates (metrics, phases, trace, op profiler, flight
    // recorder, time-series store, insight) off; the budget is 2% relative plus 5us
    // absolute slack for single-core scheduler noise on a workload of
    // hundreds of microseconds.
    let budget = off_med * 1.02 + 5e-6;
    // Guard against systematic regression: compare the disabled path
    // against itself re-measured, which catches a future change that
    // makes "disabled" sites expensive (the failure the bar exists for).
    obs::metrics::set_enabled(false);
    let recheck = median((0..ROUNDS).map(|_| time_it(workload, 0.15)).collect());
    obs::metrics::set_enabled(true);
    println!("  recheck:  {:>10.1} us/iter", recheck * 1e6);
    assert!(
        recheck <= budget,
        "disabled-observability workload regressed: {:.1}us > {:.1}us budget \
         (2% + 5us over the {:.1}us baseline)",
        recheck * 1e6,
        budget * 1e6,
        off_med * 1e6
    );
    // The enabled path is allowed to cost more (it does real work), but
    // flag pathological slowdowns loudly.
    if on_med > off_med * 1.25 {
        println!(
            "  note: enabled-observability overhead is {:.1}% — investigate before \
             relying on always-on tracing",
            (on_med / off_med - 1.0) * 100.0
        );
    }
    println!("  OK: disabled observability within 2% budget");

    // The flight recorder ships enabled by default, so unlike the
    // other gates its *enabled* cost must fit the same 2% + 5us
    // budget: with every other feature off, flight-on rounds are
    // interleaved against all-off rounds and the medians compared.
    let mut fl_base = Vec::with_capacity(ROUNDS);
    let mut fl_on = Vec::with_capacity(ROUNDS);
    obs::metrics::set_enabled(false);
    for _ in 0..ROUNDS {
        obs::flight::enable(false);
        fl_base.push(time_it(workload, 0.15));
        obs::flight::enable(true);
        fl_on.push(time_it(workload, 0.15));
    }
    obs::flight::enable(false);
    obs::metrics::set_enabled(true);
    let fl_base_med = median(fl_base);
    let fl_on_med = median(fl_on);
    println!(
        "  flight on: {:>9.1} us/iter  ({:+.2}% over {:.1}us all-off)",
        fl_on_med * 1e6,
        (fl_on_med / fl_base_med - 1.0) * 100.0,
        fl_base_med * 1e6
    );
    assert!(
        fl_on_med <= fl_base_med * 1.02 + 5e-6,
        "always-on flight recorder exceeds the 2% budget: {:.1}us > {:.1}us \
         (2% + 5us over the {:.1}us all-off baseline)",
        fl_on_med * 1e6,
        (fl_base_med * 1.02 + 5e-6) * 1e6,
        fl_base_med * 1e6
    );
    println!("  OK: always-on flight recorder within 2% budget");

    // Raw per-site cost of the histogram/gauge record paths, so the
    // bench-trend guard can watch them drift release over release. A
    // disabled site is one relaxed load + branch; an enabled histogram
    // record is a handful of relaxed RMWs.
    const SITES: usize = 1_000_000;
    let hist_path = || {
        for i in 0..SITES {
            tgl_obs::histogram!("bench.micro_ns").record(i as u64 & 0xFFFF);
        }
        SITES
    };
    let gauge_path = || {
        for i in 0..SITES {
            tgl_obs::gauge!("bench.micro_level").set(i as f64);
        }
        SITES
    };
    let per_site = |enabled: bool, f: &mut dyn FnMut() -> usize| {
        obs::metrics::set_enabled(enabled);
        let med = median((0..5).map(|_| time_it(&mut *f, 0.1)).collect());
        obs::metrics::set_enabled(true);
        med / SITES as f64 * 1e9
    };
    let prof_op_path = || {
        for i in 0..SITES {
            let _g = tgl_obs::profile::op("bench.micro_op")
                .flops(i as u64 & 0xFF)
                .io(256, 256);
        }
        SITES
    };
    let hist_off_ns = per_site(false, &mut { hist_path });
    let hist_on_ns = per_site(true, &mut { hist_path });
    let gauge_off_ns = per_site(false, &mut { gauge_path });
    let gauge_on_ns = per_site(true, &mut { gauge_path });
    // The op-profiler gate is its own flag, not obs::metrics.
    obs::profile::enable(false);
    let prof_off_ns = {
        let med = median((0..5).map(|_| time_it(prof_op_path, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    obs::profile::enable(true);
    let prof_on_ns = {
        let med = median((0..5).map(|_| time_it(prof_op_path, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    obs::profile::enable(false);
    obs::profile::take();
    // The span site with only the flight recorder live: one ring
    // write per span end. This is the cost every traced scope pays
    // in the always-on default configuration.
    let span_path = || {
        for _ in 0..SITES {
            let _g = obs::span("bench.micro_span");
        }
        SITES
    };
    obs::metrics::set_enabled(false);
    obs::flight::enable(false);
    let span_off_ns = {
        let med = median((0..5).map(|_| time_it(span_path, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    obs::flight::enable(true);
    let span_flight_ns = {
        let med = median((0..5).map(|_| time_it(span_path, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    obs::flight::enable(false);
    obs::metrics::set_enabled(true);
    // The time-series record path the trainer plants per step, and the
    // sampler/alert evaluation the telemetry hook runs each step.
    // Disabled, a record site is one relaxed load + branch; enabled it
    // is a mutex-guarded ring push. The tick/eval paths only ever run
    // gated on the same flag, so they are measured enabled-only, at
    // steady state (ring full, rules installed, no new transitions).
    let ts_path = || {
        for i in 0..SITES {
            tgl_obs::timeseries::record("bench.micro_series", i as f64);
        }
        SITES
    };
    obs::timeseries::enable(false);
    let ts_off_ns = {
        let med = median((0..5).map(|_| time_it(ts_path, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    obs::timeseries::enable(true);
    let ts_on_ns = {
        let med = median((0..5).map(|_| time_it(ts_path, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    const TICKS: usize = 10_000;
    let tick_path = || {
        for _ in 0..TICKS {
            tgl_obs::timeseries::sample_tick();
        }
        TICKS
    };
    let tick_ns = {
        let med = median((0..5).map(|_| time_it(tick_path, 0.1)).collect());
        med / TICKS as f64 * 1e9
    };
    tgl_obs::alert::install(
        tgl_obs::alert::RuleSet::parse(
            "[bench-divergence]\nmetric = bench.micro_series\nwindow = 8\nfor = 2\n\
             severity = info\nabove = 1e12\n\
             [bench-nonfinite]\nmetric = bench.micro_series\nnonfinite = true\nseverity = info",
        )
        .expect("bench rules parse"),
    );
    let eval_path = || {
        for _ in 0..TICKS {
            tgl_obs::alert::evaluate();
        }
        TICKS
    };
    let alert_eval_ns = {
        let med = median((0..5).map(|_| time_it(eval_path, 0.1)).collect());
        med / TICKS as f64 * 1e9
    };
    tgl_obs::alert::clear();
    // With no rules installed the evaluate() call on the step path is
    // one relaxed load — the cost every un-SLO'd run pays.
    let alert_idle_ns = {
        let med = median((0..5).map(|_| time_it(eval_path, 0.1)).collect());
        med / TICKS as f64 * 1e9
    };
    let live_series = obs::timeseries::snapshot().len();
    obs::timeseries::enable(false);
    obs::timeseries::reset();
    // The insight observation sites the sampler/dedup/model paths now
    // carry: disabled, one relaxed load; with a bag installed, a TLS
    // borrow plus a few integer adds. The per-step flush (the one
    // heavyweight moment — registry mutex + series pushes) is measured
    // per step, since it runs once per batch, not per site.
    let insight_site = || {
        for i in 0..SITES {
            tgl_obs::insight::observe_dedup(256, i as u64 & 0x3F);
        }
        SITES
    };
    obs::insight::enable(false);
    let ins_off_ns = {
        let med = median((0..5).map(|_| time_it(insight_site, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    obs::insight::enable(true);
    tgl_obs::insight::begin_batch();
    let ins_on_ns = {
        let med = median((0..5).map(|_| time_it(insight_site, 0.1)).collect());
        med / SITES as f64 * 1e9
    };
    tgl_obs::insight::take_batch();
    obs::timeseries::enable(true);
    let flush_path = || {
        for i in 0..TICKS {
            tgl_obs::insight::begin_batch();
            tgl_obs::insight::observe_dedup(512, 128);
            tgl_obs::insight::observe_neg_sampling(100, i as u64 % 100);
            tgl_obs::insight::record_group("bench.group", 1.0, 2.0, 0.5);
            tgl_obs::insight::flush_step();
        }
        TICKS
    };
    let ins_flush_ns = {
        let med = median((0..5).map(|_| time_it(flush_path, 0.1)).collect());
        med / TICKS as f64 * 1e9
    };
    obs::insight::enable(false);
    obs::insight::reset();
    obs::timeseries::enable(false);
    obs::timeseries::reset();
    println!(
        "  hist.record:  {hist_off_ns:>6.2} ns/site disabled, {hist_on_ns:>6.2} ns/site enabled"
    );
    println!(
        "  gauge.set:    {gauge_off_ns:>6.2} ns/site disabled, {gauge_on_ns:>6.2} ns/site enabled"
    );
    println!(
        "  profile.op:   {prof_off_ns:>6.2} ns/site disabled, {prof_on_ns:>6.2} ns/site enabled"
    );
    println!(
        "  span:         {span_off_ns:>6.2} ns/site all-off, {span_flight_ns:>6.2} ns/site flight-on"
    );
    println!(
        "  ts.record:    {ts_off_ns:>6.2} ns/site disabled, {ts_on_ns:>6.2} ns/site enabled"
    );
    println!("  ts.sample_tick: {tick_ns:>7.1} ns/tick enabled ({live_series} series live)");
    println!(
        "  alert.evaluate: {alert_eval_ns:>7.1} ns/eval (2 rules), {alert_idle_ns:>6.2} ns/eval uninstalled"
    );
    println!(
        "  insight.observe: {ins_off_ns:>5.2} ns/site disabled, {ins_on_ns:>6.2} ns/site bag installed"
    );
    println!("  insight.flush_step: {ins_flush_ns:>6.1} ns/step enabled");

    let json = format!(
        "{{\n  \"host_cpus\": {},\n  \"workload\": {{\n    \"disabled\": {{\"wall_s\": {:.9}}},\n    \
         \"enabled\": {{\"wall_s\": {:.9}}},\n    \"recheck\": {{\"wall_s\": {:.9}}},\n    \
         \"overhead_pct\": {:.3},\n    \"flight_on\": {{\"wall_s\": {:.9}}},\n    \
         \"flight_overhead_pct\": {:.3}\n  }},\n  \"per_site_ns\": {{\n    \
         \"hist_record_disabled\": {:.2},\n    \"hist_record_enabled\": {:.2},\n    \
         \"gauge_set_disabled\": {:.2},\n    \"gauge_set_enabled\": {:.2},\n    \
         \"profile_op_disabled\": {:.2},\n    \"profile_op_enabled\": {:.2},\n    \
         \"span_all_off\": {:.2},\n    \"span_flight_on\": {:.2},\n    \
         \"ts_record_disabled\": {:.2},\n    \"ts_record_enabled\": {:.2},\n    \
         \"ts_sample_tick\": {:.1},\n    \"alert_evaluate\": {:.1},\n    \
         \"alert_evaluate_uninstalled\": {:.2},\n    \
         \"insight_observe_disabled\": {:.2},\n    \"insight_observe_active\": {:.2},\n    \
         \"insight_flush_step\": {:.1}\n  }}\n}}\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        off_med,
        on_med,
        recheck,
        (on_med / off_med - 1.0) * 100.0,
        fl_on_med,
        (fl_on_med / fl_base_med - 1.0) * 100.0,
        hist_off_ns,
        hist_on_ns,
        gauge_off_ns,
        gauge_on_ns,
        prof_off_ns,
        prof_on_ns,
        span_off_ns,
        span_flight_ns,
        ts_off_ns,
        ts_on_ns,
        tick_ns,
        alert_eval_ns,
        alert_idle_ns,
        ins_off_ns,
        ins_on_ns,
        ins_flush_ns,
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    // The flight recorder is on by default; leave the process the way
    // a real one runs.
    obs::flight::enable(true);
}
