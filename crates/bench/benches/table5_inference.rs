//! Regenerates **Table 5** — test-set inference times (seconds) and AP
//! scores in the all-on-GPU case.
//!
//! Expected shape (paper §5.3): TGLite+opt 1.09–1.54×, TGLite
//! 0.85–1.61× against TGL; `cache()` benefits TGAT more than TGN.
//!
//! Shares the cached standard grid with fig5/table4.

use tgl_bench::{grid_lookup, preamble, standard_grid};
use tgl_data::DatasetKind;
use tgl_harness::table::{ap, secs, speedup, TextTable};
use tgl_harness::{Framework, ModelKind, Placement};

fn main() {
    preamble(
        "Table 5: test-set inference time + AP, all-on-GPU",
        "paper §5.3, Table 5",
    );
    let grid = standard_grid(Placement::AllOnDevice);
    let mut t = TextTable::new(&[
        "Data", "Model", "TGL", "AP", "TGLite", "AP", "TGLite+opt", "AP",
    ]);
    for kind in DatasetKind::standard() {
        for model in ModelKind::all() {
            let tgl = grid_lookup(&grid, Framework::Tgl, model, kind);
            let lite = grid_lookup(&grid, Framework::TgLite, model, kind);
            let opt = grid_lookup(&grid, Framework::TgLiteOpt, model, kind);
            let mut cells = vec![
                kind.name().to_string(),
                model.label().to_string(),
                secs(tgl.test_s),
                ap(tgl.test_ap),
                format!("{} {}", secs(lite.test_s), speedup(tgl.test_s, lite.test_s)),
                ap(lite.test_ap),
            ];
            if model == ModelKind::Jodie {
                cells.push("-".into());
                cells.push("-".into());
            } else {
                cells.push(format!(
                    "{} {}",
                    secs(opt.test_s),
                    speedup(tgl.test_s, opt.test_s)
                ));
                cells.push(ap(opt.test_ap));
            }
            t.row(&cells);
        }
    }
    println!("{}", t.render());
    println!("\n(inference over the chronological test split after training;");
    println!(" speedups vs TGL in parentheses)");
}
