//! Regenerates **Table 8** (Appendix B) — training and inference AP
//! scores on the large-scale benchmarks.
//!
//! Expected shape: TGL and TGLite+opt land within a point or two of
//! each other (the optimizations are semantic-preserving).
//!
//! Note: to keep this AP-only target affordable it runs at an extra 2x
//! dataset scale-down relative to table7 (override with
//! `TGL_BENCH_SCALE`).

use tgl_bench::{bench_epochs, bench_scale, preamble};
use tgl_data::{DatasetKind, DatasetSpec};
use tgl_harness::table::{ap, TextTable};
use tgl_harness::{run_experiment, ExperimentConfig, Framework, ModelKind, Placement};

fn main() {
    preamble(
        "Table 8: large-scale training/inference AP",
        "paper Appendix B, Table 8",
    );
    let scale = bench_scale() * 2;
    let mut t = TextTable::new(&[
        "Data", "Model", "TGL train-AP", "TGL test-AP", "TGLite+opt train-AP", "TGLite+opt test-AP",
    ]);
    for kind in [DatasetKind::WikiTalk, DatasetKind::Gdelt] {
        for model in ModelKind::all() {
            let mut cells = vec![kind.name().to_string(), model.label().to_string()];
            for fw in [Framework::Tgl, Framework::TgLiteOpt] {
                let fw = if fw == Framework::TgLiteOpt && model == ModelKind::Jodie {
                    Framework::TgLite
                } else {
                    fw
                };
                let mut cfg =
                    ExperimentConfig::paper_default(fw, model, kind, Placement::HostResident);
                cfg.dataset = DatasetSpec::of(kind).scaled_down(scale);
                cfg.train_cfg.batch_size = 400;
                cfg.train_cfg.epochs = bench_epochs(1);
                cfg.transfer = tgl_bench::sim_link_v100();
                let r = run_experiment(&cfg);
                cells.push(ap(r.best_val_ap));
                cells.push(ap(r.test_ap));
            }
            t.row(&cells);
        }
    }
    println!("{}", t.render());
    println!("\n(train-AP = best validation epoch; test-AP = chronological");
    println!(" test split; semantic-preserving opts keep the columns close)");
}
