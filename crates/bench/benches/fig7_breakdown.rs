//! Regenerates **Figure 7** — breakdown of major operations in one
//! TGAT training epoch (LastFM-shape, all-on-GPU) for TGL, TGLite, and
//! TGLite+opt.
//!
//! Expected shape (paper §5.2.3): backward similar across settings;
//! TGLite cheaper batch prep; TGLite+opt shrinks the attention and
//! time-encoding phases (with small overhead moving to the
//! precomputed-time operators).
//!
//! Phase durations come from the `tgl-obs` cross-thread span tracer:
//! every `prof::scope` in the run records a span (whichever thread runs
//! it — pool-worker time is included), and this bench aggregates the
//! drained spans by name. Alongside the text table it writes
//! `BENCH_fig7.json` (same flat `results` shape as
//! `BENCH_parallel.json`) so the perf trajectory accumulates data.

use tgl_bench::{cell, preamble};
use tgl_data::{DatasetKind, Json};
use tgl_harness::table::{bar, TextTable};
use tgl_harness::{run_experiment, Framework, ModelKind, Placement};
use tglite::obs::trace;

const PHASES: [&str; 9] = [
    "sample",
    "prep_batch",
    "feature_load",
    "preload",
    "time_zero",
    "time_nbrs",
    "attention",
    "backward",
    "opt_step",
];

/// Aggregates drained spans into per-phase `(seconds, span count)`,
/// keyed in `PHASES` order.
fn aggregate(spans: &[trace::Span]) -> Vec<(f64, u64)> {
    PHASES
        .iter()
        .map(|phase| {
            spans
                .iter()
                .filter(|s| s.name == *phase)
                .fold((0.0, 0), |(secs, n), s| {
                    (secs + s.dur_ns as f64 * 1e-9, n + 1)
                })
        })
        .collect()
}

fn main() {
    preamble(
        "Figure 7: TGAT epoch runtime breakdown (LastFM, all-on-GPU)",
        "paper §5.2.3, Figure 7",
    );
    let mut rows: Vec<(String, Vec<f64>)> =
        PHASES.iter().map(|p| (p.to_string(), Vec::new())).collect();
    let mut totals = Vec::new();
    let mut results: Vec<Json> = Vec::new();
    for fw in Framework::all() {
        let mut cfg = cell(fw, ModelKind::Tgat, DatasetKind::Lastfm, Placement::AllOnDevice);
        cfg.train_cfg.epochs = 1;
        trace::enable(true);
        trace::take();
        let r = run_experiment(&cfg);
        let spans = trace::take();
        trace::enable(false);
        totals.push(r.train_s_per_epoch);
        let agg = aggregate(&spans);
        for ((name, col), (secs, n_spans)) in rows.iter_mut().zip(&agg) {
            col.push(*secs);
            results.push(Json::obj(vec![
                ("framework".into(), Json::Str(fw.label().into())),
                ("phase".into(), Json::Str(name.clone())),
                ("secs".into(), Json::Num(*secs)),
                ("spans".into(), Json::Num(*n_spans as f64)),
            ]));
        }
        results.push(Json::obj(vec![
            ("framework".into(), Json::Str(fw.label().into())),
            ("phase".into(), Json::Str("epoch_total".into())),
            ("secs".into(), Json::Num(r.train_s_per_epoch)),
            ("spans".into(), Json::Num(0.0)),
        ]));
    }
    let max = rows
        .iter()
        .flat_map(|(_, v)| v.iter().cloned())
        .fold(0.0f64, f64::max);
    let mut t = TextTable::new(&["Phase", "TGL", "TGLite", "TGLite+opt", "bars"]);
    for (name, col) in &rows {
        t.row(&[
            name.clone(),
            format!("{:.2}", col[0]),
            format!("{:.2}", col[1]),
            format!("{:.2}", col[2]),
            format!(
                "{:<10}|{:<10}|{:<10}",
                bar(col[0], max, 10),
                bar(col[1], max, 10),
                bar(col[2], max, 10)
            ),
        ]);
    }
    t.row(&[
        "epoch total".into(),
        format!("{:.2}", totals[0]),
        format!("{:.2}", totals[1]),
        format!("{:.2}", totals[2]),
        String::new(),
    ]);
    println!("{}", t.render());
    println!("\n(phase seconds over one training epoch; 'time_zero'/'time_nbrs'");
    println!(" are the Φ(0)/Φ(Δt) encodings, matching the paper's labels)");

    let doc = Json::obj(vec![
        (
            "host_cpus".into(),
            Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        (
            "threads".into(),
            Json::Num(tgl_runtime::current_threads() as f64),
        ),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fig7.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
