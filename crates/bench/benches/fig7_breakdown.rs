//! Regenerates **Figure 7** — breakdown of major operations in one
//! TGAT training epoch (LastFM-shape, all-on-GPU) for TGL, TGLite, and
//! TGLite+opt.
//!
//! Expected shape (paper §5.2.3): backward similar across settings;
//! TGLite cheaper batch prep; TGLite+opt shrinks the attention and
//! time-encoding phases (with small overhead moving to the
//! precomputed-time operators).

use tgl_bench::{cell, preamble};
use tgl_data::DatasetKind;
use tgl_harness::table::{bar, TextTable};
use tgl_harness::{run_experiment, Framework, ModelKind, Placement};
use tglite::prof;

fn main() {
    preamble(
        "Figure 7: TGAT epoch runtime breakdown (LastFM, all-on-GPU)",
        "paper §5.2.3, Figure 7",
    );
    let phases = [
        "sample",
        "prep_batch",
        "feature_load",
        "preload",
        "time_zero",
        "time_nbrs",
        "attention",
        "backward",
        "opt_step",
    ];
    let mut rows: Vec<(String, Vec<f64>)> =
        phases.iter().map(|p| (p.to_string(), Vec::new())).collect();
    let mut totals = Vec::new();
    for fw in Framework::all() {
        let mut cfg = cell(fw, ModelKind::Tgat, DatasetKind::Lastfm, Placement::AllOnDevice);
        cfg.train_cfg.epochs = 1;
        prof::enable(true);
        prof::take();
        let r = run_experiment(&cfg);
        let report = prof::take();
        prof::enable(false);
        totals.push(r.train_s_per_epoch);
        for (name, col) in rows.iter_mut() {
            let d = report
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| d.as_secs_f64())
                .unwrap_or(0.0);
            col.push(d);
        }
    }
    let max = rows
        .iter()
        .flat_map(|(_, v)| v.iter().cloned())
        .fold(0.0f64, f64::max);
    let mut t = TextTable::new(&["Phase", "TGL", "TGLite", "TGLite+opt", "bars"]);
    for (name, col) in &rows {
        t.row(&[
            name.clone(),
            format!("{:.2}", col[0]),
            format!("{:.2}", col[1]),
            format!("{:.2}", col[2]),
            format!(
                "{:<10}|{:<10}|{:<10}",
                bar(col[0], max, 10),
                bar(col[1], max, 10),
                bar(col[2], max, 10)
            ),
        ]);
    }
    t.row(&[
        "epoch total".into(),
        format!("{:.2}", totals[0]),
        format!("{:.2}", totals[1]),
        format!("{:.2}", totals[2]),
        String::new(),
    ]);
    println!("{}", t.render());
    println!("\n(phase seconds over one training epoch; 'time_zero'/'time_nbrs'");
    println!(" are the Φ(0)/Φ(Δt) encodings, matching the paper's labels)");
}
