//! Regenerates **Figure 6** — training time per epoch (seconds) with
//! feature data resident on CPU host memory (the CPU-to-GPU case).
//!
//! Expected shape (paper §5.2.2): TGL takes noticeably longer than its
//! all-on-GPU times (the paper reports ≈4×); TGLite's pinned-pool
//! `preload()` gives 1.29–1.62×; TGLite+opt reaches 1.41–3.43×.

use tgl_bench::{grid_lookup, preamble, standard_grid};
use tgl_data::DatasetKind;
use tgl_harness::table::{bar, secs, speedup, TextTable};
use tgl_harness::{Framework, ModelKind, Placement};

fn main() {
    preamble(
        "Figure 6: training time per epoch, CPU-to-GPU",
        "paper §5.2.2, Figure 6",
    );
    let grid = standard_grid(Placement::HostResident);
    for kind in DatasetKind::standard() {
        println!("\n--- {} ---", kind.name());
        let mut t = TextTable::new(&["Model", "TGL", "TGLite", "TGLite+opt", "bars (s/epoch)"]);
        for model in ModelKind::all() {
            let tgl = grid_lookup(&grid, Framework::Tgl, model, kind).train_s;
            let lite = grid_lookup(&grid, Framework::TgLite, model, kind).train_s;
            let opt = grid_lookup(&grid, Framework::TgLiteOpt, model, kind).train_s;
            let max = tgl.max(lite).max(opt);
            t.row(&[
                model.label().to_string(),
                secs(tgl),
                format!("{} {}", secs(lite), speedup(tgl, lite)),
                if model == ModelKind::Jodie {
                    "- (same as TGLite)".to_string()
                } else {
                    format!("{} {}", secs(opt), speedup(tgl, opt))
                },
                format!(
                    "TGL {:<12} lite {:<12} +opt {:<12}",
                    bar(tgl, max, 12),
                    bar(lite, max, 12),
                    bar(opt, max, 12)
                ),
            ]);
        }
        println!("{}", t.render());
    }
    println!("\n(speedups vs TGL; host-resident features cross the scaled");
    println!(" PCIe cost model — pageable for TGL, pinned pool for TGLite)");
}
