//! Sequential-vs-pipelined trainer epoch walls.
//!
//! Trains the same TGAT configuration twice — pipeline depth 0 (the
//! sequential reference) and depth 2 (sampler stage prefetching over
//! the bounded channel) — and records per-epoch *wall* time for both.
//! CPU time is the wrong metric here: the pipeline wins by overlapping
//! the sampler stage with compute, which lowers wall clock while total
//! cycles stay put. On a single-core container the two series are
//! expected to be ~flat (the `--critpath` overlap report is the signal
//! there); on multi-core hosts the pipelined series should be faster.
//!
//! The bench also *asserts* the bitwise-identity contract: per-epoch
//! losses at depth 2 must equal the sequential ones bit for bit —
//! a perf artifact generated from a diverged run would be meaningless.

use std::sync::Arc;
use std::time::Instant;

use tgl_data::{generate, DatasetKind, DatasetSpec, Split};
use tgl_harness::{TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tglite::TContext;

const EPOCHS: usize = 3;

/// Trains `EPOCHS` epochs at the given pipeline depth, returning
/// per-epoch `(wall_s, loss)`.
fn run(depth: usize) -> Vec<(f64, f32)> {
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(8);
    let (g, _) = generate(&spec);
    let split = Split::standard(&g);
    let ctx = TContext::new(Arc::clone(&g));
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 42);
    let trainer = Trainer::new(
        TrainConfig {
            batch_size: 100,
            epochs: EPOCHS,
            lr: 1e-3,
            seed: 17,
        },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    )
    .with_pipeline(depth);
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
    (0..EPOCHS)
        .map(|e| {
            let t0 = Instant::now();
            let s = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, e);
            (t0.elapsed().as_secs_f64(), s.loss)
        })
        .collect()
}

fn main() {
    println!("== pipelined trainer: sequential vs depth-2 epoch walls ==");
    let sequential = run(0);
    let pipelined = run(2);

    for e in 0..EPOCHS {
        let (sw, sl) = sequential[e];
        let (pw, pl) = pipelined[e];
        assert_eq!(
            sl.to_bits(),
            pl.to_bits(),
            "epoch {e}: pipelined loss {pl} diverged from sequential {sl}"
        );
        println!(
            "  epoch {e}: sequential {:>7.3}s  pipelined {:>7.3}s  ({:.2}x)  loss {sl:.4} (bitwise equal)",
            sw,
            pw,
            sw / pw
        );
    }
    let seq_total: f64 = sequential.iter().map(|(w, _)| w).sum();
    let pipe_total: f64 = pipelined.iter().map(|(w, _)| w).sum();
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "  total: sequential {seq_total:.3}s, pipelined {pipe_total:.3}s \
         ({:.2}x on {cpus} cpus)",
        seq_total / pipe_total
    );

    let mut epochs_json = String::new();
    for (e, ((sw, _), (pw, _))) in sequential.iter().zip(&pipelined).enumerate() {
        epochs_json.push_str(&format!(
            "    {{\"epoch\": {e}, \"sequential\": {{\"wall_s\": {sw:.6}}}, \
             \"pipelined\": {{\"wall_s\": {pw:.6}}}}}{}\n",
            if e + 1 < EPOCHS { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"pipeline_depth\": 2,\n  \"bitwise_identical\": true,\n  \
         \"epochs\": [\n{epochs_json}  ],\n  \
         \"total\": {{\"sequential\": {{\"wall_s\": {seq_total:.6}}}, \
         \"pipelined\": {{\"wall_s\": {pipe_total:.6}}}, \"speedup\": {:.3}}}\n}}\n",
        seq_total / pipe_total
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
