//! Regenerates the **hooks-mechanism ablation** (paper §5.4).
//!
//! Removes the hooks mechanism: instead of `op::dedup` registering an
//! inversion hook that `op::aggregate` runs automatically, the user
//! deduplicates destinations manually, re-implements the multi-hop
//! traversal, and applies the inversions themselves — "what the user
//! implements here is effectively what TGLite provides via the hooks
//! mechanism" (the paper measured 49 extra user lines and no
//! noticeable perf regression).
//!
//! This bench verifies both paths produce identical embeddings and
//! compares their wall time.

use std::collections::HashMap;
use std::sync::Arc;
use tgl_harness::CpuTimer;

use tgl_bench::{bench_scale, preamble};
use tgl_data::{generate, DatasetKind, DatasetSpec, NegativeSampler, Split};
use tgl_models::{ModelConfig, TemporalAttnLayer};
use tgl_sampler::SamplingStrategy;
use tglite::tensor::{no_grad, Tensor};
use tglite::{op, NodeId, TBatch, TBlock, TContext, TSampler, Time};

const N_LAYERS: usize = 2;

/// With-hooks path: dedup registers hooks, aggregate runs them.
fn hooks_embeddings(
    ctx: &TContext,
    batch: &TBatch,
    sampler: &TSampler,
    layers: &[TemporalAttnLayer],
) -> Tensor {
    let head = batch.block(ctx);
    let mut tail = head.clone();
    for i in 0..N_LAYERS {
        if i > 0 {
            tail = tail.next_block();
        }
        op::dedup(&tail);
        sampler.sample(&tail);
    }
    tail.set_dstdata("h", tail.dstfeat());
    tail.set_srcdata("h", tail.srcfeat());
    op::aggregate(&head, "h", |blk| layers[blk.layer()].forward(ctx, blk, false))
}

/// Manual path: user-level dedup + inversion + traversal (the extra
/// application code the hooks mechanism saves).
fn manual_embeddings(
    ctx: &TContext,
    batch: &TBatch,
    sampler: &TSampler,
    layers: &[TemporalAttnLayer],
) -> Tensor {
    let head = batch.block(ctx);
    let mut chain: Vec<TBlock> = vec![head.clone()];
    let mut inverses: Vec<Option<Vec<usize>>> = Vec::new();
    let mut tail = head.clone();
    for i in 0..N_LAYERS {
        if i > 0 {
            tail = tail.next_block();
            chain.push(tail.clone());
        }
        // Manual dedup: unique (node, time) pairs + inverse index.
        let (uniq_n, uniq_t, inv) = tail.with_dst(|nodes, times| {
            let mut seen: HashMap<(NodeId, u64), usize> = HashMap::new();
            let mut un: Vec<NodeId> = Vec::new();
            let mut ut: Vec<Time> = Vec::new();
            let mut inv = Vec::with_capacity(nodes.len());
            for (&n, &t) in nodes.iter().zip(times) {
                let p = *seen.entry((n, t.to_bits())).or_insert_with(|| {
                    un.push(n);
                    ut.push(t);
                    un.len() - 1
                });
                inv.push(p);
            }
            (un, ut, inv)
        });
        if uniq_n.len() < inv.len() {
            tail.replace_dst(uniq_n, uniq_t);
            inverses.push(Some(inv));
        } else {
            inverses.push(None);
        }
        sampler.sample(&tail);
    }
    tail.set_dstdata("h", tail.dstfeat());
    tail.set_srcdata("h", tail.srcfeat());
    // Manual multi-hop traversal (what aggregate + hooks would do).
    let mut out = None;
    for (blk, inv) in chain.iter().zip(&inverses).rev() {
        let mut o = layers[blk.layer()].forward(ctx, blk, false);
        if let Some(inv) = inv {
            o = o.index_select(inv);
        }
        match blk.prev() {
            Some(prev) => {
                let nd = prev.num_dst();
                prev.set_dstdata("h", o.narrow_rows(0, nd));
                prev.set_srcdata("h", o.narrow_rows(nd, o.dim(0) - nd));
            }
            None => out = Some(o),
        }
    }
    out.expect("head output")
}

fn main() {
    preamble(
        "Ablation: hooks mechanism vs manual post-processing (TGAT)",
        "paper §5.4 'Hooks Mechanism'",
    );
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(bench_scale());
    let (g, _) = generate(&spec);
    let ctx = TContext::new(Arc::clone(&g));
    let split = Split::standard(&g);
    let cfg = ModelConfig {
        emb_dim: 32,
        time_dim: 16,
        heads: 2,
        n_layers: N_LAYERS,
        n_neighbors: 10,
        mailbox_slots: 10,
    };
    let mut rng = <tgl_runtime::rng::StdRng as tgl_runtime::rng::SeedableRng>::seed_from_u64(3);
    let layers: Vec<TemporalAttnLayer> = (0..N_LAYERS)
        .map(|i| {
            let dim_in = if i == N_LAYERS - 1 {
                g.node_feat_dim()
            } else {
                cfg.emb_dim
            };
            TemporalAttnLayer::new(dim_in, g.edge_feat_dim(), cfg.time_dim, cfg.emb_dim, cfg.heads, &mut rng)
        })
        .collect();
    let sampler = TSampler::from_engine(
        tgl_sampler::TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent).with_seed(1),
    );
    let mut negs = NegativeSampler::for_spec(&spec, 2);

    // Correctness: both paths agree on every batch.
    let _guard = no_grad();
    let mut max_diff = 0.0f32;
    let (mut t_hooks, mut t_manual) = (0.0f64, 0.0f64);
    // Alternate execution order per batch (and loop the split a few
    // times) so first-run warm-up effects don't bias either path.
    for round in 0..4 {
        for (bi, r) in Split::batches(&split.test, 200).enumerate() {
            let mut batch = TBatch::new(Arc::clone(&g), r);
            batch.set_negatives(negs.draw(batch.len()));
            let hooks_first = (bi + round) % 2 == 0;
            let (a, b) = if hooks_first {
                let s = CpuTimer::start();
                let a = hooks_embeddings(&ctx, &batch, &sampler, &layers);
                t_hooks += s.elapsed_s();
                let s = CpuTimer::start();
                let b = manual_embeddings(&ctx, &batch, &sampler, &layers);
                t_manual += s.elapsed_s();
                (a, b)
            } else {
                let s = CpuTimer::start();
                let b = manual_embeddings(&ctx, &batch, &sampler, &layers);
                t_manual += s.elapsed_s();
                let s = CpuTimer::start();
                let a = hooks_embeddings(&ctx, &batch, &sampler, &layers);
                t_hooks += s.elapsed_s();
                (a, b)
            };
            if round == 0 {
                for (x, y) in a.to_vec().iter().zip(b.to_vec()) {
                    max_diff = max_diff.max((x - y).abs());
                }
            }
        }
    }
    println!("with hooks:    {t_hooks:.3}s");
    println!("manual (user): {t_manual:.3}s");
    println!(
        "perf delta:    {:+.1}% (paper: no noticeable regression)",
        (t_manual / t_hooks - 1.0) * 100.0
    );
    println!("max output difference: {max_diff:.2e} (must be 0: same semantics)");
    assert!(max_diff < 1e-5, "hooks and manual paths diverged");
    println!("\n(the manual path costs ~50 extra user-level lines per model,");
    println!(" which the hooks mechanism folds into the framework)");
}
