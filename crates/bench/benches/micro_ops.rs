//! Std-only microbenchmarks for the operators underneath the paper's
//! results: temporal sampling, segmented kernels, the redundancy
//! operators, time precomputation, and tier transfers. These support
//! the Fig. 7 breakdown analysis at operator granularity.
//!
//! The second half sweeps the `tgl-runtime` pool over 1..=N threads for
//! the three hottest parallel kernels (dense matmul, segment softmax,
//! batch temporal sampling) and writes the measurements to
//! `BENCH_parallel.json` at the workspace root so the perf trajectory
//! is recorded per machine. Speedups are relative to the same kernel
//! forced onto one thread; on a single-core host the sweep still runs
//! (validating determinism and overhead) but cannot show wall-clock
//! gains, so the JSON also records `host_cpus`.

use std::sync::Arc;
use std::time::Instant;

use tgl_runtime::rng::{SeedableRng, StdRng};
use tgl_runtime::set_threads;

use tgl_data::{generate, DatasetKind, DatasetSpec};
use tgl_device::{Device, PinnedPool};
use tgl_sampler::{SamplingStrategy, TemporalSampler};
use tgl_tensor::ops::{segment_softmax, segment_sum};
use tgl_tensor::Tensor;
use tglite::nn::TimeEncode;
use tglite::{op, TBlock, TContext, TSampler};

/// Times `f`, adaptively picking an iteration count that fills roughly
/// `budget_s` seconds, and returns mean seconds per iteration.
fn time_it<R>(mut f: impl FnMut() -> R, budget_s: f64) -> f64 {
    // Warm-up + calibration run.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget_s / once) as usize).clamp(1, 10_000);
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn report<R>(name: &str, f: impl FnMut() -> R) {
    let s = time_it(f, 0.3);
    println!("  {name:<36} {:>12.1} us/iter", s * 1e6);
}

fn setup() -> (Arc<tglite::TGraph>, TContext) {
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(4);
    let (g, _) = generate(&spec);
    let ctx = TContext::new(Arc::clone(&g));
    (g, ctx)
}

fn bench_sampler() {
    let (g, _ctx) = setup();
    let csr = g.tcsr();
    let n = 512usize;
    let nodes: Vec<u32> = (0..n as u32).map(|i| i % g.num_nodes() as u32).collect();
    let times: Vec<f64> = vec![g.max_time(); n];
    let recent = TemporalSampler::new(10, SamplingStrategy::Recent).with_threads(1);
    let uniform = TemporalSampler::new(10, SamplingStrategy::Uniform).with_threads(1);
    report("sampler_recent_512x10", || recent.sample(&csr, &nodes, &times));
    report("sampler_uniform_512x10", || uniform.sample(&csr, &nodes, &times));
}

fn bench_segment_ops() {
    let mut rng = StdRng::seed_from_u64(0);
    let n = 4096;
    let d = 32;
    let vals = Tensor::rand_uniform([n, d], -1.0, 1.0, &mut rng);
    let logits = Tensor::rand_uniform([n, 2], -1.0, 1.0, &mut rng);
    let seg: Vec<usize> = (0..n).map(|i| i / 10).collect();
    let nseg = n / 10 + 1;
    report("segment_sum_4096x32", || segment_sum(&vals, &seg, nseg));
    report("segment_softmax_4096x2", || segment_softmax(&logits, &seg, nseg));
}

fn bench_redundancy_ops() {
    let (_g, ctx) = setup();
    // Heavily duplicated destinations (the dedup win case).
    let nodes: Vec<u32> = (0..600u32).map(|i| i % 50).collect();
    let times: Vec<f64> = (0..600).map(|i| (i % 25) as f64 * 100.0 + 1000.0).collect();
    report("dedup_600_dsts", || {
        let blk = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
        op::dedup(&blk);
        blk.num_dst()
    });
    // Cache with a warm table.
    let warm = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
    op::cache(&ctx, &warm);
    let k = warm.num_dst();
    warm.run_hooks(Tensor::zeros([k, 32]));
    report("cache_600_dsts_warm", || {
        let blk = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
        op::cache(&ctx, &blk);
        blk.num_dst()
    });
}

fn bench_time_encode() {
    let (_g, ctx) = setup();
    let mut rng = StdRng::seed_from_u64(1);
    let enc = TimeEncode::new(16, &mut rng);
    // Quantized deltas: few distinct values (the precompute win case).
    let deltas: Vec<f32> = (0..2048).map(|i| (i % 40) as f32 * 900.0).collect();
    report("time_encode_direct_2048", || enc.forward(&deltas));
    op::precomputed_times(&ctx, &enc, &deltas); // warm the table
    report("time_encode_precomputed_2048", || op::precomputed_times(&ctx, &enc, &deltas));
}

fn bench_transfers() {
    tgl_device::set_transfer_model(tgl_device::TransferModel::disabled());
    let t = Tensor::zeros([512, 64]);
    let pool = PinnedPool::new();
    report("transfer_pageable_128k", || t.to(Device::Accel));
    report("transfer_pinned_128k", || t.to_pinned(Device::Accel, &pool));
}

fn bench_sampling_block_path() {
    let (g, ctx) = setup();
    let sampler = TSampler::new(10, SamplingStrategy::Recent);
    let nodes: Vec<u32> = (0..256u32).map(|i| i % g.num_nodes() as u32).collect();
    let times = vec![g.max_time(); 256];
    report("block_sample_and_chain", || {
        let head = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
        sampler.sample(&head);
        let tail = head.next_block();
        sampler.sample(&tail);
        tail.num_edges()
    });
}

fn bench_matmul() {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    report("matmul_256", || a.matmul(&b));
}

/// One measured cell of the single-thread GEMM series.
struct GemmCell {
    m: usize,
    k: usize,
    n: usize,
    kernel: &'static str,
    secs: f64,
    gflops: f64,
}

/// One measured cell of the GEMM thread scaling series (512^3).
struct GemmThreadCell {
    kernel: &'static str,
    threads: usize,
    secs: f64,
    gflops: f64,
}

/// Times the cache-blocked GEMM over a size series that spans the
/// L1/L2 tiling regimes plus attention-shaped skinny GEMMs
/// (m = batch*heads, k = dim-per-head, small n = neighbor fan-out),
/// in both kernel modes (`exact` keeps scalar bitwise parity, `fast`
/// enables FMA contraction), then scales 512^3 over the pool's thread
/// counts. Writes `BENCH_micro_gemm.json` at the workspace root.
/// GFLOP/s uses the usual 2·m·k·n flop count for C += A·B.
fn bench_gemm_series(counts: &[usize]) {
    const SIZES: [(usize, usize, usize); 9] = [
        (64, 64, 64),
        (128, 128, 128),
        (256, 256, 256),
        (512, 512, 512),
        (384, 768, 96),  // skinny output panel (embedding-sized)
        (96, 384, 768),  // wide output panel
        (400, 16, 10),   // attention scores: (batch*heads) x dim_per_head x fanout
        (400, 10, 16),   // attention output: (batch*heads) x fanout x dim_per_head
        (800, 32, 16),   // wider heads, deeper fan-in
    ];
    const MODES: [tgl_tensor::kernel::KernelMode; 2] =
        [tgl_tensor::kernel::KernelMode::Exact, tgl_tensor::kernel::KernelMode::Fast];
    let ambient_mode = tgl_tensor::kernel::mode();
    let mut cells = Vec::new();
    for mode in MODES {
        tgl_tensor::kernel::set_mode(mode);
        set_threads(1);
        let mut rng = StdRng::seed_from_u64(3);
        println!();
        println!("== single-thread GEMM series (blocked kernel, {} mode) ==", mode.label());
        for (m, k, n) in SIZES {
            let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
            let secs = time_it(|| a.matmul(&b), 0.4);
            let gflops = 2.0 * (m * k * n) as f64 / secs / 1e9;
            println!(
                "  gemm_{m}x{k}x{n:<24} {:>12.1} us/iter  {gflops:>7.2} GFLOP/s",
                secs * 1e6
            );
            cells.push(GemmCell { m, k, n, kernel: mode.label(), secs, gflops });
        }
    }

    // Thread scaling of the MC-panel parallel GEMM at 512^3.
    let mut tcells = Vec::new();
    println!();
    println!("== GEMM thread scaling (512^3, MC row panels) ==");
    for mode in MODES {
        tgl_tensor::kernel::set_mode(mode);
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform([512, 512], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([512, 512], -1.0, 1.0, &mut rng);
        for &t in counts {
            set_threads(t);
            let secs = time_it(|| a.matmul(&b), 0.4);
            let gflops = 2.0 * (512usize * 512 * 512) as f64 / secs / 1e9;
            println!(
                "  gemm_512 {:<5} t={t:<2} {:>12.1} us/iter  {gflops:>7.2} GFLOP/s",
                mode.label(),
                secs * 1e6
            );
            tcells.push(GemmThreadCell { kernel: mode.label(), threads: t, secs, gflops });
        }
    }
    tgl_tensor::kernel::set_mode(ambient_mode);
    set_threads(1);

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!("  \"simd\": {:?},\n", tgl_tensor::kernel::simd_label()));
    s.push_str("  \"threads\": 1,\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"kernel\": {:?}, \"secs\": {:.6e}, \"gflops\": {:.3}}}{}\n",
            c.m,
            c.k,
            c.n,
            c.kernel,
            c.secs,
            c.gflops,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"multi_thread\": [\n");
    let base = |kernel: &str| {
        tcells
            .iter()
            .find(|c| c.kernel == kernel && c.threads == 1)
            .map_or(f64::NAN, |c| c.secs)
    };
    for (i, c) in tcells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"m\": 512, \"k\": 512, \"n\": 512, \"kernel\": {:?}, \"threads\": {}, \"secs\": {:.6e}, \"gflops\": {:.3}, \"speedup_vs_1t\": {:.3}}}{}\n",
            c.kernel,
            c.threads,
            c.secs,
            c.gflops,
            base(c.kernel) / c.secs,
            if i + 1 == tcells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_micro_gemm.json");
    match std::fs::write(&path, &s) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// One measured cell of the thread sweep.
struct SweepCell {
    bench: &'static str,
    threads: usize,
    secs: f64,
}

/// Sweeps the three hottest parallel kernels over the given thread
/// counts and returns per-cell timings.
fn thread_sweep(counts: &[usize]) -> Vec<SweepCell> {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Tensor::rand_uniform([512, 512], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([512, 512], -1.0, 1.0, &mut rng);

    let n = 32 * 1024;
    let d = 16;
    let vals = Tensor::rand_uniform([n, d], -1.0, 1.0, &mut rng);
    let seg: Vec<usize> = (0..n).map(|i| i / 10).collect();
    let nseg = n / 10 + 1;

    let (g, _ctx) = setup();
    let csr = g.tcsr();
    let batch = 1024usize;
    let nodes: Vec<u32> = (0..batch as u32).map(|i| i % g.num_nodes() as u32).collect();
    let times: Vec<f64> = vec![g.max_time(); batch];

    let mut cells = Vec::new();
    for &t in counts {
        set_threads(t);
        let uniform = TemporalSampler::new(10, SamplingStrategy::Uniform).with_threads(t);
        cells.push(SweepCell {
            bench: "matmul_512",
            threads: t,
            secs: time_it(|| a.matmul(&b), 0.5),
        });
        cells.push(SweepCell {
            bench: "segment_softmax_32768x16",
            threads: t,
            secs: time_it(|| segment_softmax(&vals, &seg, nseg), 0.5),
        });
        cells.push(SweepCell {
            bench: "sampling_uniform_1024x10",
            threads: t,
            secs: time_it(|| uniform.sample(&csr, &nodes, &times), 0.5),
        });
    }
    cells
}

/// Renders the sweep as JSON (hand-rolled; the workspace is
/// dependency-free) and returns it as a string.
fn sweep_json(cells: &[SweepCell], counts: &[usize], host_cpus: usize) -> String {
    let base = |name: &str| {
        cells
            .iter()
            .find(|c| c.bench == name && c.threads == 1)
            .map_or(f64::NAN, |c| c.secs)
    };
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!(
        "  \"threads_swept\": [{}],\n",
        counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
    ));
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let speedup = base(c.bench) / c.secs;
        s.push_str(&format!(
            "    {{\"bench\": {:?}, \"threads\": {}, \"secs\": {:.6e}, \"speedup_vs_1t\": {:.3}}}{}\n",
            c.bench,
            c.threads,
            c.secs,
            speedup,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    println!("== operator microbenchmarks (std timer, mean of adaptive iters) ==");
    bench_sampler();
    bench_segment_ops();
    bench_redundancy_ops();
    bench_time_encode();
    bench_transfers();
    bench_sampling_block_path();
    bench_matmul();

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&c| c == 1 || c <= host_cpus.max(4))
        .collect();
    bench_gemm_series(&counts);
    println!();
    println!("== thread sweep ({host_cpus} host cpus) ==");
    let cells = thread_sweep(&counts);
    for c in &cells {
        let base = cells
            .iter()
            .find(|x| x.bench == c.bench && x.threads == 1)
            .map_or(f64::NAN, |x| x.secs);
        println!(
            "  {:<28} t={:<2} {:>12.1} us/iter  (x{:.2} vs 1t)",
            c.bench,
            c.threads,
            c.secs * 1e6,
            base / c.secs
        );
    }
    set_threads(1);

    let json = sweep_json(&cells, &counts, host_cpus);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
