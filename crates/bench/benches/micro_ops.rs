//! Criterion microbenchmarks for the operators underneath the paper's
//! results: temporal sampling, segmented kernels, the redundancy
//! operators, time precomputation, and tier transfers. These support
//! the Fig. 7 breakdown analysis at operator granularity.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use tgl_data::{generate, DatasetKind, DatasetSpec};
use tgl_device::{Device, PinnedPool};
use tgl_sampler::{SamplingStrategy, TemporalSampler};
use tgl_tensor::ops::{segment_softmax, segment_sum};
use tgl_tensor::Tensor;
use tglite::nn::TimeEncode;
use tglite::{op, TBlock, TContext, TSampler};

fn setup() -> (Arc<tglite::TGraph>, TContext) {
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(4);
    let (g, _) = generate(&spec);
    let ctx = TContext::new(Arc::clone(&g));
    (g, ctx)
}

fn bench_sampler(c: &mut Criterion) {
    let (g, _ctx) = setup();
    let csr = g.tcsr();
    let n = 512usize;
    let nodes: Vec<u32> = (0..n as u32).map(|i| i % g.num_nodes() as u32).collect();
    let times: Vec<f64> = vec![g.max_time(); n];
    let recent = TemporalSampler::new(10, SamplingStrategy::Recent).with_threads(1);
    let uniform = TemporalSampler::new(10, SamplingStrategy::Uniform).with_threads(1);
    c.bench_function("sampler_recent_512x10", |b| {
        b.iter(|| recent.sample(&csr, &nodes, &times))
    });
    c.bench_function("sampler_uniform_512x10", |b| {
        b.iter(|| uniform.sample(&csr, &nodes, &times))
    });
}

fn bench_segment_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let n = 4096;
    let d = 32;
    let vals = Tensor::rand_uniform([n, d], -1.0, 1.0, &mut rng);
    let logits = Tensor::rand_uniform([n, 2], -1.0, 1.0, &mut rng);
    let seg: Vec<usize> = (0..n).map(|i| i / 10).collect();
    let nseg = n / 10 + 1;
    c.bench_function("segment_sum_4096x32", |b| {
        b.iter(|| segment_sum(&vals, &seg, nseg))
    });
    c.bench_function("segment_softmax_4096x2", |b| {
        b.iter(|| segment_softmax(&logits, &seg, nseg))
    });
}

fn bench_redundancy_ops(c: &mut Criterion) {
    let (_g, ctx) = setup();
    // Heavily duplicated destinations (the dedup win case).
    let nodes: Vec<u32> = (0..600u32).map(|i| i % 50).collect();
    let times: Vec<f64> = (0..600).map(|i| (i % 25) as f64 * 100.0 + 1000.0).collect();
    c.bench_function("dedup_600_dsts", |b| {
        b.iter(|| {
            let blk = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
            op::dedup(&blk);
            blk.num_dst()
        })
    });
    // Cache with a warm table.
    let warm = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
    op::cache(&ctx, &warm);
    let k = warm.num_dst();
    warm.run_hooks(Tensor::zeros([k, 32]));
    c.bench_function("cache_600_dsts_warm", |b| {
        b.iter(|| {
            let blk = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
            op::cache(&ctx, &blk);
            blk.num_dst()
        })
    });
}

fn bench_time_encode(c: &mut Criterion) {
    let (_g, ctx) = setup();
    let mut rng = StdRng::seed_from_u64(1);
    let enc = TimeEncode::new(16, &mut rng);
    // Quantized deltas: few distinct values (the precompute win case).
    let deltas: Vec<f32> = (0..2048).map(|i| (i % 40) as f32 * 900.0).collect();
    c.bench_function("time_encode_direct_2048", |b| {
        b.iter(|| enc.forward(&deltas))
    });
    op::precomputed_times(&ctx, &enc, &deltas); // warm the table
    c.bench_function("time_encode_precomputed_2048", |b| {
        b.iter(|| op::precomputed_times(&ctx, &enc, &deltas))
    });
}

fn bench_transfers(c: &mut Criterion) {
    tgl_device::set_transfer_model(tgl_device::TransferModel::disabled());
    let t = Tensor::zeros([512, 64]);
    let pool = PinnedPool::new();
    c.bench_function("transfer_pageable_128k", |b| {
        b.iter(|| t.to(Device::Accel))
    });
    c.bench_function("transfer_pinned_128k", |b| {
        b.iter(|| t.to_pinned(Device::Accel, &pool))
    });
}

fn bench_sampling_block_path(c: &mut Criterion) {
    let (g, ctx) = setup();
    let sampler = TSampler::new(10, SamplingStrategy::Recent);
    let nodes: Vec<u32> = (0..256u32).map(|i| i % g.num_nodes() as u32).collect();
    let times = vec![g.max_time(); 256];
    c.bench_function("block_sample_and_chain", |b| {
        b.iter(|| {
            let head = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
            sampler.sample(&head);
            let tail = head.next_block();
            sampler.sample(&tail);
            tail.num_edges()
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let b_ = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    c.bench_function("matmul_256", |b| b.iter(|| a.matmul(&b_)));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sampler, bench_segment_ops, bench_redundancy_ops,
              bench_time_encode, bench_transfers, bench_sampling_block_path,
              bench_matmul
}
criterion_main!(benches);
