//! Regenerates the **TBlock-vs-MFG ablation** (paper §5.4).
//!
//! Replaces the TBlock abstraction with standalone MFG objects (the
//! `tgl-baseline` path, which shares kernels but materializes
//! everything upfront and re-implements the multi-hop bookkeeping) and
//! compares TGAT training time in both placements.
//!
//! Expected shape: the MFG implementation is a few percent slower
//! (paper: ~3% all-on-GPU, ~9% CPU-to-GPU, from extra data movement),
//! and needs user-level reimplementation of `aggregate()` etc.

use tgl_bench::{cell, preamble, sim_link_v100};
use tgl_data::DatasetKind;
use tgl_harness::table::TextTable;
use tgl_harness::{run_experiment, Framework, ModelKind, Placement};
use tgl_models::OptFlags;

fn main() {
    preamble(
        "Ablation: TBlock vs MFG (TGAT training)",
        "paper §5.4 'TBlock-vs-MFG'",
    );
    let mut t = TextTable::new(&["Case", "TBlock (s/epoch)", "MFG (s/epoch)", "MFG overhead"]);
    for &placement in &[Placement::AllOnDevice, Placement::HostResident] {
        if placement == Placement::HostResident {
            tgl_device::set_transfer_model(sim_link_v100());
        }
        // TBlock path without redundancy opts, isolating the
        // abstraction itself (preload off so data movement is like an
        // MFG user's, matching the paper's ablation framing).
        let mut lite_cfg = cell(Framework::TgLite, ModelKind::Tgat, DatasetKind::Wiki, placement);
        lite_cfg.train_cfg.epochs = 1;
        let lite = run_experiment(&lite_cfg);
        let _ = OptFlags::none();
        let mut mfg_cfg = cell(Framework::Tgl, ModelKind::Tgat, DatasetKind::Wiki, placement);
        mfg_cfg.train_cfg.epochs = 1;
        let mfg = run_experiment(&mfg_cfg);
        let overhead = (mfg.train_s_per_epoch / lite.train_s_per_epoch - 1.0) * 100.0;
        t.row(&[
            placement.label().to_string(),
            format!("{:.2}", lite.train_s_per_epoch),
            format!("{:.2}", mfg.train_s_per_epoch),
            format!("{overhead:+.1}%"),
        ]);
    }
    println!("{}", t.render());
    println!("\n(the MFG path also peaks higher on device memory — see");
    println!(" table7_large_scale for the capacity consequence)");
}
