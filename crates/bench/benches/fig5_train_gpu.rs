//! Regenerates **Figure 5** — training time per epoch (seconds) with
//! all data resident on device memory (the all-on-GPU case), for the
//! four models × four standard datasets × {TGL, TGLite, TGLite+opt}.
//!
//! Expected shape (paper §5.2.1): TGLite ≈ TGL (the `preload()`
//! operator has no effect when data is already on device), TGLite+opt
//! faster than TGL via dedup (paper: 1.06–1.81×).
//!
//! Shares the cached standard grid with table4/table5.

use tgl_bench::{grid_lookup, preamble, standard_grid};
use tgl_data::DatasetKind;
use tgl_harness::table::{bar, secs, speedup, TextTable};
use tgl_harness::{Framework, ModelKind, Placement};

fn main() {
    preamble(
        "Figure 5: training time per epoch, all-on-GPU",
        "paper §5.2.1, Figure 5",
    );
    let grid = standard_grid(Placement::AllOnDevice);
    for kind in DatasetKind::standard() {
        println!("\n--- {} ---", kind.name());
        let mut t = TextTable::new(&["Model", "TGL", "TGLite", "TGLite+opt", "bars (s/epoch)"]);
        for model in ModelKind::all() {
            let tgl = grid_lookup(&grid, Framework::Tgl, model, kind).train_s;
            let lite = grid_lookup(&grid, Framework::TgLite, model, kind).train_s;
            let opt = grid_lookup(&grid, Framework::TgLiteOpt, model, kind).train_s;
            let max = tgl.max(lite).max(opt);
            t.row(&[
                model.label().to_string(),
                secs(tgl),
                format!("{} {}", secs(lite), speedup(tgl, lite)),
                if model == ModelKind::Jodie {
                    "- (same as TGLite)".to_string()
                } else {
                    format!("{} {}", secs(opt), speedup(tgl, opt))
                },
                format!(
                    "TGL {:<12} lite {:<12} +opt {:<12}",
                    bar(tgl, max, 12),
                    bar(lite, max, 12),
                    bar(opt, max, 12)
                ),
            ]);
        }
        println!("{}", t.render());
    }
    println!("\n(speedups vs TGL in parentheses; JODIE has no further opt");
    println!(" operators per the paper, so TGLite+opt == TGLite for it)");
}
