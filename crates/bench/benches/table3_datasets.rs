//! Regenerates **Table 3** — benchmark dataset statistics.
//!
//! Paper row shape: Dataset | |V| | |E| | d_v | d_e | max(t).
//! We add the measured repeat-edge fraction, the redundancy property
//! the dedup/cache operators exploit.

use tgl_bench::{bench_scale, preamble};
use tgl_data::{generate, DatasetKind, DatasetSpec};
use tgl_harness::table::TextTable;

fn main() {
    preamble("Table 3: benchmark datasets", "paper §5.1, Table 3");
    let mut t = TextTable::new(&["Dataset", "|V|", "|E|", "d_v", "d_e", "max(t)", "repeat%"]);
    for kind in DatasetKind::all() {
        let spec = DatasetSpec::of(kind).scaled_down(bench_scale());
        let (_, stats) = generate(&spec);
        t.row(&[
            kind.name().to_string(),
            stats.num_nodes.to_string(),
            stats.num_edges.to_string(),
            stats.d_node.to_string(),
            stats.d_edge.to_string(),
            format!("{:.1e}", stats.max_t),
            format!("{:.1}", stats.repeat_fraction * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!();
    println!("(counts are the paper's Table 3 shapes scaled for a CPU-only");
    println!(" reproduction; relative ordering across datasets is preserved)");
}
