//! Allocation-churn benchmark for the tensor buffer pool.
//!
//! Runs one tiny TGLite+opt training epoch twice — once with the pool
//! recycling buffers (the default) and once with recycling disabled
//! (`TGL_POOL=off` semantics) — and reports, via the pool's own
//! counters, how many backing buffers and bytes each configuration
//! had to allocate. With recycling off every request is a miss, so the
//! miss/alloc-bytes deltas are exactly the allocation churn of the
//! epoch. The headline claim this measures: with the pool on, an epoch
//! performs O(parameters) heap allocations instead of O(ops × batches).
//!
//! The two runs must also be *bitwise identical*: recycled buffers are
//! dirty, so any kernel that reads an element it did not write would
//! show up here as a loss divergence. The bench hard-fails on that.
//!
//! Results go to `BENCH_alloc.json` at the workspace root. CI runs this
//! as a smoke test (`scripts/ci.sh`); `ALLOC_BENCH_SCALE` shrinks or
//! grows the dataset (default 4 = Wikipedia/4; the epoch must be long
//! enough that steady-state recycling, not the O(parameters)
//! first-touch misses, dominates the counts).

use std::time::Instant;

use tgl_data::DatasetKind;
use tgl_harness::{run_experiment, ExperimentConfig, Framework, ModelKind, Placement};
use tgl_models::ModelConfig;
use tgl_obs::metrics;
use tgl_tensor::pool;

/// Pool counter deltas plus losses for one training epoch.
struct EpochRun {
    requests: u64,
    hits: u64,
    misses: u64,
    alloc_bytes: u64,
    recycled_bytes: u64,
    losses: Vec<f32>,
    wall_s: f64,
}

const POOL_COUNTERS: [&str; 5] = [
    "tensor.pool.request",
    "tensor.pool.hit",
    "tensor.pool.miss",
    "tensor.pool.alloc_bytes",
    "tensor.pool.recycled_bytes",
];

fn fixture() -> ExperimentConfig {
    let scale: usize = std::env::var("ALLOC_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let mut cfg = ExperimentConfig::paper_default(
        Framework::TgLiteOpt,
        ModelKind::Tgat,
        DatasetKind::Wiki,
        Placement::AllOnDevice,
    );
    cfg.dataset = cfg.dataset.scaled_down(scale);
    cfg.model_cfg = ModelConfig::tiny();
    cfg.train_cfg.epochs = 1;
    cfg.train_cfg.batch_size = 60;
    cfg
}

/// Runs the fixture epoch with recycling toggled and captures the pool
/// counter deltas over it.
fn run_epoch(cfg: &ExperimentConfig, pool_on: bool) -> EpochRun {
    // Start both configurations from the same state: empty free lists
    // (a pre-warmed pool would understate the on-path's first-touch
    // misses) and live counters.
    pool::set_enabled(pool_on);
    pool::clear();
    metrics::set_enabled(true);
    let before: Vec<u64> = POOL_COUNTERS.iter().map(|n| metrics::get(n)).collect();
    let t0 = Instant::now();
    let result = run_experiment(cfg);
    let wall_s = t0.elapsed().as_secs_f64();
    let delta: Vec<u64> = POOL_COUNTERS
        .iter()
        .zip(&before)
        .map(|(n, b)| metrics::get(n) - b)
        .collect();
    EpochRun {
        requests: delta[0],
        hits: delta[1],
        misses: delta[2],
        alloc_bytes: delta[3],
        recycled_bytes: delta[4],
        losses: result.epochs.iter().map(|e| e.loss).collect(),
        wall_s,
    }
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn run_json(r: &EpochRun) -> String {
    format!(
        "{{\"requests\": {}, \"hits\": {}, \"buffer_allocs\": {}, \"alloc_bytes\": {}, \
         \"recycled_bytes\": {}, \"wall_s\": {:.3}}}",
        r.requests, r.hits, r.misses, r.alloc_bytes, r.recycled_bytes, r.wall_s
    )
}

fn main() {
    println!("== tensor pool allocation churn (one TGAT epoch, Wiki/scale) ==");
    let cfg = fixture();

    // Off first, then on: the on-run's pool state is then self-built,
    // and neither run sees buffers donated by the other.
    let off = run_epoch(&cfg, false);
    let on = run_epoch(&cfg, true);
    pool::set_enabled(true);
    pool::clear();

    let bitwise = on.losses.len() == off.losses.len()
        && on
            .losses
            .iter()
            .zip(&off.losses)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    let alloc_ratio = off.misses as f64 / (on.misses.max(1)) as f64;
    let bytes_ratio = off.alloc_bytes as f64 / (on.alloc_bytes.max(1)) as f64;

    println!(
        "  pool off: {:>9} buffer allocs, {:>9.1} MiB allocated, {:.2}s",
        off.misses,
        mib(off.alloc_bytes),
        off.wall_s
    );
    println!(
        "  pool on : {:>9} buffer allocs, {:>9.1} MiB allocated, {:.2}s \
         ({} hits, {:.1} MiB recycled)",
        on.misses,
        mib(on.alloc_bytes),
        on.wall_s,
        on.hits,
        mib(on.recycled_bytes)
    );
    println!("  allocation ratio (off/on): {alloc_ratio:.1}x   bytes ratio: {bytes_ratio:.1}x");
    println!("  losses bitwise identical : {bitwise}");

    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str(&format!("  \"pool_off\": {},\n", run_json(&off)));
    s.push_str(&format!("  \"pool_on\": {},\n", run_json(&on)));
    s.push_str(&format!("  \"alloc_ratio\": {alloc_ratio:.2},\n"));
    s.push_str(&format!("  \"bytes_ratio\": {bytes_ratio:.2},\n"));
    s.push_str(&format!("  \"losses_bitwise_identical\": {bitwise}\n"));
    s.push_str("}\n");
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_alloc.json");
    match std::fs::write(&path, &s) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    // Recycling must be invisible to the numerics; anything else means
    // a kernel read an element of a dirty buffer it never wrote.
    assert!(
        bitwise,
        "pool-on and pool-off epochs diverged: {:?} vs {:?}",
        on.losses, off.losses
    );
    // The headline claim, enforced: recycling eliminates the vast
    // majority of buffer allocations and allocated bytes.
    assert!(
        alloc_ratio >= 10.0,
        "expected >=10x fewer buffer allocations with the pool on, got {alloc_ratio:.1}x"
    );
    assert!(
        bytes_ratio >= 5.0,
        "expected >=5x fewer allocated bytes with the pool on, got {bytes_ratio:.1}x"
    );
    println!("alloc churn guard passed");
}
