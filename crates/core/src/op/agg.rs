//! Multi-block operators: pull-style aggregation and push-style
//! propagation over the block chain.

use tgl_tensor::Tensor;

use crate::TBlock;

/// Pull-style multi-hop neighborhood aggregation (paper §3.3).
///
/// "Given a block it will traverse the linked list to the tail and
/// apply a function provided by the user to each block all the way
/// back up to the starting block. It also handles some tedious
/// bookkeeping that is necessary when passing information across
/// blocks, such as assigning the correct data to the destination and
/// source nodes."
///
/// Concretely, walking tail→head for each block `b`:
/// 1. `out = f(b)` — the user layer computes one row per destination;
/// 2. `out = b.run_hooks(out)` — registered post-processing (dedup
///    inversion, cache merge) restores the pre-filter layout;
/// 3. if `b` has a predecessor `p`, the rows split into
///    `p.dstdata[key] = out[..p.num_dst()]` and
///    `p.srcdata[key] = out[p.num_dst()..]` (this works because
///    [`TBlock::next_block`] stacks `p`'s destinations before its
///    sampled sources when creating `b`'s destination list).
///
/// Returns the head block's (hook-processed) output.
///
/// # Panics
///
/// Panics if an intermediate output's row count does not match the
/// predecessor's `num_dst() + num_edges()`.
pub fn aggregate(head: &TBlock, key: &str, mut f: impl FnMut(&TBlock) -> Tensor) -> Tensor {
    // Collect the chain head..=tail.
    let mut chain = vec![head.clone()];
    while let Some(next) = chain.last().expect("nonempty").next() {
        chain.push(next);
    }
    for blk in chain.iter().rev() {
        let out = f(blk);
        let out = blk.run_hooks(out);
        match blk.prev() {
            Some(prev) => {
                let nd = prev.num_dst();
                let ne = prev.num_edges();
                assert_eq!(
                    out.dim(0),
                    nd + ne,
                    "aggregate: layer output rows ({}) != predecessor dst+edges ({nd}+{ne})",
                    out.dim(0)
                );
                prev.set_dstdata(key, out.narrow_rows(0, nd));
                prev.set_srcdata(key, out.narrow_rows(nd, ne));
            }
            None => return out,
        }
    }
    unreachable!("chain iteration always returns at the head block")
}

/// Push-style propagation (paper §3.3): applies `f` to each block from
/// the given one toward the tail of the chain.
///
/// "The propagate() operator does the push-style where it starts at
/// the given block and works its way toward the tail of the list. This
/// propagation pattern is useful for the APAN model."
pub fn propagate(start: &TBlock, mut f: impl FnMut(&TBlock)) {
    let mut cur = Some(start.clone());
    while let Some(blk) = cur {
        f(&blk);
        cur = blk.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{op, TBlock, TContext, TSampler};
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;
    use tgl_sampler::SamplingStrategy;

    fn setup() -> (Arc<TemporalGraph>, TContext) {
        let g = Arc::new(TemporalGraph::from_edges(
            5,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0), (0, 2, 5.0)],
        ));
        g.set_node_feats(Tensor::from_vec(
            (0..5).map(|v| v as f32).collect(),
            [5, 1],
        ));
        let ctx = TContext::new(Arc::clone(&g));
        (g, ctx)
    }

    /// A simple "layer": dst value + sum of neighbor values.
    fn sum_layer(blk: &TBlock) -> Tensor {
        let nbr = op::edge_reduce(blk, &blk.srcdata("h"), op::ReduceOp::Sum);
        blk.dstdata("h").add(&nbr)
    }

    #[test]
    fn single_block_aggregate_runs_hooks_and_returns() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![2], vec![9.0]);
        TSampler::new(10, SamplingStrategy::Recent).sample(&blk);
        blk.set_dstdata("h", blk.dstfeat());
        blk.set_srcdata("h", blk.srcfeat());
        let out = aggregate(&blk, "h", sum_layer);
        // node 2's earlier neighbors: 1@2, 3@3, 0@5 -> 2 + (1+3+0) = 6
        assert_eq!(out.to_vec(), vec![6.0]);
    }

    #[test]
    fn two_hop_aggregate_propagates_between_blocks() {
        let (_g, ctx) = setup();
        let sampler = TSampler::new(10, SamplingStrategy::Recent);
        let head = TBlock::new(&ctx, 0, vec![2], vec![9.0]);
        sampler.sample(&head);
        let tail = head.next_block();
        sampler.sample(&tail);
        tail.set_dstdata("h", tail.dstfeat());
        tail.set_srcdata("h", tail.srcfeat());
        let out = aggregate(&head, "h", sum_layer);
        assert_eq!(out.dim(0), 1);
        // Hand-computed 2-hop result:
        // layer-1 value of node v at time t: v + sum(earlier nbrs of v)
        // head dst = 2@9: nbrs = 1@2, 3@3, 0@5
        //   l1(2@9)= 2 + (1+3+0) = 6
        //   l1(1@2)= 1 + 0 (nbr 0@1) = 1        [0 at t<2: edge 0-1@1 -> nbr 0]
        //   l1(3@3)= 3 + 2 (nbr 2@3? strictly before 3 -> edge 2-3@3 excluded; 3 has no earlier)
        // Recompute carefully below via independent code instead:
        let expected = {
            let g = head.graph();
            let csr = g.tcsr();
            let l1 = |v: u32, t: f64| -> f32 {
                let (nbrs, _, _) = csr.neighbors_before(v, t);
                v as f32 + nbrs.iter().map(|&n| n as f32).sum::<f32>()
            };
            let (nbrs, _, times) = csr.neighbors_before(2, 9.0);
            l1(2, 9.0)
                + nbrs
                    .iter()
                    .zip(times)
                    .map(|(&n, &t)| l1(n, t))
                    .sum::<f32>()
        };
        assert_eq!(out.to_vec(), vec![expected]);
    }

    #[test]
    fn aggregate_with_dedup_matches_without() {
        // Semantic preservation: dedup'd aggregation == plain aggregation.
        let (_g, ctx) = setup();
        let sampler = TSampler::new(10, SamplingStrategy::Recent);
        let dsts = vec![2u32, 2, 3, 2];
        let times = vec![9.0, 9.0, 9.0, 9.0];

        let run = |use_dedup: bool| -> Vec<f32> {
            let head = TBlock::new(&ctx, 0, dsts.clone(), times.clone());
            if use_dedup {
                op::dedup(&head);
            }
            sampler.sample(&head);
            let tail = head.next_block();
            if use_dedup {
                op::dedup(&tail);
            }
            sampler.sample(&tail);
            tail.set_dstdata("h", tail.dstfeat());
            tail.set_srcdata("h", tail.srcfeat());
            aggregate(&head, "h", sum_layer).to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn propagate_visits_whole_chain_in_order() {
        let (_g, ctx) = setup();
        let sampler = TSampler::new(2, SamplingStrategy::Recent);
        let head = TBlock::new(&ctx, 0, vec![2], vec![9.0]);
        sampler.sample(&head);
        let tail = head.next_block();
        sampler.sample(&tail);
        let mut layers = Vec::new();
        propagate(&head, |b| layers.push(b.layer()));
        assert_eq!(layers, vec![0, 1]);
    }
}
