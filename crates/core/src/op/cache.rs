//! The memoization (embedding cache) optimization operator.

use std::sync::Arc;

use tgl_tensor::ops::cat;
use tgl_tensor::Tensor;

use crate::block::BlockHook;
use crate::ctx::EmbedCache;
use crate::{TBlock, TContext};

/// Memoizes computed embeddings per `(layer, node, time)` key
/// (the paper's `cache()` operator, after TGOpt).
///
/// Looks up the block's destination pairs in the context's embedding
/// cache; cached pairs are removed from the destination list (so they
/// are neither sampled nor recomputed) and a hook is registered that
/// (1) stores freshly computed rows into the cache and (2) merges
/// cached and computed rows back into the original layout — "thus
/// avoiding repeated computations for cached embeddings and retaining
/// expected output semantics" (§3.3).
///
/// Intended for inference: memoization across parameter updates would
/// serve stale embeddings, so call [`TContext::clear_caches`] after
/// training steps (the paper likewise enables `cache()` only at
/// inference).
///
/// # Panics
///
/// Panics if the block already has a sampled neighborhood.
pub fn cache(ctx: &TContext, blk: &TBlock) -> TBlock {
    assert!(
        !blk.has_nbrs(),
        "cache must be applied before sampling the neighborhood"
    );
    let layer = blk.layer();
    let store: &EmbedCache = ctx.embed_cache();
    let (nodes, times) = (blk.dst_nodes(), blk.dst_times());
    let n = nodes.len();

    let mut hit_rows: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut miss_positions: Vec<usize> = Vec::new();
    for (i, (&node, &t)) in nodes.iter().zip(&times).enumerate() {
        match store.get(layer, node, t) {
            Some(row) => hit_rows.push((i, row)),
            None => miss_positions.push(i),
        }
    }
    tgl_obs::counter!("cache.hits").add(hit_rows.len() as u64);
    tgl_obs::counter!("cache.misses").add(miss_positions.len() as u64);

    // Capture what the hook needs to populate the cache with fresh rows.
    let miss_nodes: Vec<_> = miss_positions.iter().map(|&i| nodes[i]).collect();
    let miss_times: Vec<_> = miss_positions.iter().map(|&i| times[i]).collect();
    let cache_handle = CacheHandle {
        cache: ctx.embed_cache_arc(),
    };

    if hit_rows.is_empty() {
        // Nothing cached yet: keep dst as-is, only register the
        // store-after-compute hook.
        blk.register_hook(BlockHook::new("cache-store", move |out: Tensor| {
            cache_handle.store(layer, &miss_nodes, &miss_times, &out);
            out
        }));
        return blk.clone();
    }

    let device = blk.device();
    blk.replace_dst(
        miss_positions.iter().map(|&i| nodes[i]).collect(),
        miss_positions.iter().map(|&i| times[i]).collect(),
    );

    // Permutation: original row i comes from computed row (for misses)
    // or from the cached block appended after the computed rows.
    let mut perm = vec![0usize; n];
    for (k, &i) in miss_positions.iter().enumerate() {
        perm[i] = k;
    }
    for (k, (i, _)) in hit_rows.iter().enumerate() {
        perm[*i] = miss_positions.len() + k;
    }
    let cached_flat: Vec<f32> = hit_rows.iter().flat_map(|(_, r)| r.iter().copied()).collect();
    let num_hits = hit_rows.len();

    blk.register_hook(BlockHook::new("cache-merge", move |out: Tensor| {
        cache_handle.store(layer, &miss_nodes, &miss_times, &out);
        let width = if out.rank() >= 2 {
            out.dim(1)
        } else {
            cached_flat.len().checked_div(num_hits).unwrap_or(0)
        };
        debug_assert_eq!(
            cached_flat.len(),
            num_hits * width,
            "cached row width changed between runs"
        );
        let cached = Tensor::from_vec_on(cached_flat.clone(), [num_hits, width], device);
        let stacked = cat(&[out, cached], 0);
        stacked.index_select(&perm)
    }));
    blk.clone()
}

struct CacheHandle {
    cache: Arc<EmbedCache>,
}

impl CacheHandle {
    fn store(&self, layer: usize, nodes: &[tgl_graph::NodeId], times: &[tgl_graph::Time], out: &Tensor) {
        if nodes.is_empty() {
            return;
        }
        debug_assert_eq!(out.dim(0), nodes.len(), "cache store row count mismatch");
        let width: usize = out.dims()[1..].iter().product();
        out.with_data(|data| {
            for (k, (&node, &t)) in nodes.iter().zip(times).enumerate() {
                self.cache
                    .put(layer, node, t, data[k * width..(k + 1) * width].to_vec());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TContext;
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;

    fn ctx() -> TContext {
        TContext::new(Arc::new(TemporalGraph::from_edges(
            5,
            vec![(0, 1, 1.0), (1, 2, 2.0)],
        )))
    }

    #[test]
    fn first_pass_stores_second_pass_hits() {
        let ctx = ctx();
        // Pass 1: all misses.
        let blk = TBlock::new(&ctx, 0, vec![1, 2], vec![5.0, 5.0]);
        cache(&ctx, &blk);
        assert_eq!(blk.num_dst(), 2, "no hits yet; dst unchanged");
        let out = Tensor::from_vec(vec![10.0, 11.0, 20.0, 21.0], [2, 2]);
        let restored = blk.run_hooks(out);
        assert_eq!(restored.to_vec(), vec![10.0, 11.0, 20.0, 21.0]);
        let (hits, _) = ctx.embed_cache().stats();
        assert_eq!(hits, 0);

        // Pass 2: node 2 cached, node 3 new.
        let blk2 = TBlock::new(&ctx, 0, vec![2, 3], vec![5.0, 5.0]);
        cache(&ctx, &blk2);
        assert_eq!(blk2.dst_nodes(), vec![3], "hit removed from dst");
        let out2 = Tensor::from_vec(vec![30.0, 31.0], [1, 2]);
        let restored2 = blk2.run_hooks(out2);
        // original layout: row for node 2 (cached), row for node 3 (fresh)
        assert_eq!(restored2.to_vec(), vec![20.0, 21.0, 30.0, 31.0]);
    }

    #[test]
    fn all_hits_yields_empty_dst() {
        let ctx = ctx();
        ctx.embed_cache().put(0, 4, 9.0, vec![7.0]);
        let blk = TBlock::new(&ctx, 0, vec![4], vec![9.0]);
        cache(&ctx, &blk);
        assert_eq!(blk.num_dst(), 0);
        let restored = blk.run_hooks(Tensor::zeros([0, 1]));
        assert_eq!(restored.to_vec(), vec![7.0]);
    }

    #[test]
    fn layer_keys_are_distinct() {
        let ctx = ctx();
        ctx.embed_cache().put(0, 1, 5.0, vec![1.0]);
        let blk = TBlock::new(&ctx, 1, vec![1], vec![5.0]);
        cache(&ctx, &blk);
        assert_eq!(blk.num_dst(), 1, "layer-1 lookup must miss layer-0 entry");
    }

    #[test]
    fn semantic_preservation_random_layout() {
        // cache() + hooks must reproduce exactly what an uncached
        // computation produces, for a deterministic row function.
        let ctx = ctx();
        let f = |nodes: &[tgl_graph::NodeId]| -> Vec<f32> {
            nodes.iter().flat_map(|&n| [n as f32, n as f32 * 10.0]).collect()
        };
        // Warm the cache with nodes 1 and 2.
        let blk = TBlock::new(&ctx, 0, vec![1, 2], vec![3.0, 3.0]);
        cache(&ctx, &blk);
        let rows = f(&blk.dst_nodes());
        let k = blk.num_dst();
        blk.run_hooks(Tensor::from_vec(rows, [k, 2]));

        // Mixed query.
        let query = vec![2u32, 0, 1, 3];
        let blk2 = TBlock::new(&ctx, 0, query.clone(), vec![3.0; 4]);
        cache(&ctx, &blk2);
        assert!(blk2.num_dst() < 4, "some hits expected");
        let rows2 = f(&blk2.dst_nodes());
        let k2 = blk2.num_dst();
        let restored = blk2.run_hooks(Tensor::from_vec(rows2, [k2, 2]));
        assert_eq!(restored.to_vec(), f(&query), "optimized != unoptimized");
    }

    #[test]
    #[should_panic(expected = "before sampling")]
    fn after_sampling_panics() {
        let ctx = ctx();
        let blk = TBlock::new(&ctx, 0, vec![1], vec![5.0]);
        crate::TSampler::new(2, tgl_sampler::SamplingStrategy::Recent).sample(&blk);
        cache(&ctx, &blk);
    }
}
