//! The deduplication optimization operator.

use std::collections::HashMap;

use tgl_graph::{NodeId, Time};

use crate::block::BlockHook;
use crate::TBlock;

/// Filters the block's destination `(node, time)` pairs to unique ones
/// and registers a hook that re-expands computed outputs to the
/// original row layout — a semantic-preserving transformation
/// ("deduplication filters out duplicates to ensure embeddings are only
/// computed for unique node-time pairs", paper §2).
///
/// Must be applied *before* sampling so that downstream subgraphs
/// shrink too. Returns the same block for chaining. When all pairs are
/// already unique, the block is left untouched (no hook).
///
/// # Panics
///
/// Panics if the block already has a sampled neighborhood.
pub fn dedup(blk: &TBlock) -> TBlock {
    dedup_planned(blk);
    blk.clone()
}

/// Like [`dedup`], but also returns the `(nodes, times, inverse)`
/// replacement when one actually happened, so a prefetch plan can
/// replay it later with [`dedup_apply`]. Counters fire here (once).
pub(crate) fn dedup_planned(blk: &TBlock) -> Option<(Vec<NodeId>, Vec<Time>, Vec<usize>)> {
    assert!(
        !blk.has_nbrs(),
        "dedup must be applied before sampling the neighborhood"
    );
    let (uniq_nodes, uniq_times, inverse) = blk.with_dst(compute);
    tgl_obs::counter!("dedup.rows_in").add(inverse.len() as u64);
    tgl_obs::counter!("dedup.rows_saved").add((inverse.len() - uniq_nodes.len()) as u64);
    tgl_obs::insight::observe_dedup(inverse.len() as u64, (inverse.len() - uniq_nodes.len()) as u64);
    if uniq_nodes.len() == inverse.len() {
        return None; // already unique — nothing to do
    }
    dedup_apply(blk, uniq_nodes.clone(), uniq_times.clone(), inverse.clone());
    Some((uniq_nodes, uniq_times, inverse))
}

/// Applies a precomputed dedup replacement: swaps in the unique
/// destination list and registers the inversion hook. Fires no
/// counters — the plan-apply path, where [`dedup_planned`] already
/// counted this work on the sampler stage.
pub(crate) fn dedup_apply(blk: &TBlock, nodes: Vec<NodeId>, times: Vec<Time>, inverse: Vec<usize>) {
    blk.replace_dst(nodes, times);
    blk.register_hook(BlockHook::new("dedup-invert", move |out| {
        out.index_select(&inverse)
    }));
}

/// The pure dedup computation: unique `(node, time)` pairs in
/// first-appearance order plus the inverse row mapping.
fn compute(nodes: &[NodeId], times: &[Time]) -> (Vec<NodeId>, Vec<Time>, Vec<usize>) {
    let mut seen: HashMap<(NodeId, u64), usize> = HashMap::with_capacity(nodes.len());
    let mut uniq_nodes: Vec<NodeId> = Vec::new();
    let mut uniq_times: Vec<Time> = Vec::new();
    let mut inverse = Vec::with_capacity(nodes.len());
    for (&n, &t) in nodes.iter().zip(times) {
        let key = (n, t.to_bits());
        let pos = *seen.entry(key).or_insert_with(|| {
            uniq_nodes.push(n);
            uniq_times.push(t);
            uniq_nodes.len() - 1
        });
        inverse.push(pos);
    }
    (uniq_nodes, uniq_times, inverse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TContext, TSampler};
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;
    use tgl_sampler::SamplingStrategy;
    use tgl_tensor::Tensor;

    fn ctx() -> TContext {
        TContext::new(Arc::new(TemporalGraph::from_edges(
            5,
            vec![(0, 1, 1.0), (1, 2, 2.0)],
        )))
    }

    #[test]
    fn removes_duplicates_and_restores_layout() {
        let ctx = ctx();
        let blk = TBlock::new(&ctx, 0, vec![3, 1, 3, 1, 2], vec![5.0, 5.0, 5.0, 5.0, 5.0]);
        dedup(&blk);
        assert_eq!(blk.dst_nodes(), vec![3, 1, 2]);
        assert_eq!(blk.num_hooks(), 1);
        // Simulate per-unique-row outputs 10, 20, 30.
        let out = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3, 1]);
        let restored = blk.run_hooks(out);
        assert_eq!(restored.to_vec(), vec![10.0, 20.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn same_node_different_time_not_merged() {
        let ctx = ctx();
        let blk = TBlock::new(&ctx, 0, vec![1, 1], vec![5.0, 6.0]);
        dedup(&blk);
        assert_eq!(blk.num_dst(), 2);
        assert_eq!(blk.num_hooks(), 0);
    }

    #[test]
    fn already_unique_is_noop() {
        let ctx = ctx();
        let blk = TBlock::new(&ctx, 0, vec![0, 1, 2], vec![5.0, 5.0, 5.0]);
        dedup(&blk);
        assert_eq!(blk.num_dst(), 3);
        assert_eq!(blk.num_hooks(), 0);
    }

    #[test]
    #[should_panic(expected = "before sampling")]
    fn after_sampling_panics() {
        let ctx = ctx();
        let blk = TBlock::new(&ctx, 0, vec![1, 1], vec![5.0, 5.0]);
        TSampler::new(2, SamplingStrategy::Recent).sample(&blk);
        dedup(&blk);
    }

    #[test]
    fn dedup_invert_is_identity_composition() {
        // dedup ∘ invert == identity on arbitrary duplicated layouts.
        let ctx = ctx();
        let nodes = vec![4, 4, 0, 2, 0, 4];
        let times = vec![3.0, 3.0, 3.0, 7.0, 3.0, 3.0];
        let blk = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
        dedup(&blk);
        // Identity function on unique rows: output row i = unique node id.
        let vals: Vec<f32> = blk.dst_nodes().iter().map(|&n| n as f32).collect();
        let k = vals.len();
        let restored = blk.run_hooks(Tensor::from_vec(vals, [k, 1]));
        let expect: Vec<f32> = nodes.iter().map(|&n| n as f32).collect();
        assert_eq!(restored.to_vec(), expect);
    }
}
