//! Time-precomputation optimization operators (after TGOpt).
//!
//! "The time-encoder often produces the same time vectors, so those
//! can be precomputed ahead-of-time and reused" (paper §2). Duplicate
//! time deltas are extremely common in CTDG batches (e.g. Δt = 0 for
//! every target node, repeated deltas from recent sampling), so
//! memoizing `Φ(Δt)` rows by exact delta value skips both the cosine
//! computation and the autograd bookkeeping.
//!
//! These operators produce *detached* tensors (no gradient to the
//! encoder parameters), so — like the paper — models enable them only
//! for inference. Clear the tables with
//! [`crate::TContext::clear_caches`] whenever encoder parameters
//! change.

use tgl_tensor::{no_grad, Tensor};

use crate::nn::TimeEncode;
use crate::TContext;

/// Precomputed time vectors for all-zero deltas: returns `[n, dim]`
/// rows of `Φ(0)` (paper §3.4: "specialized to the case when a user
/// knows that they have time deltas of zeros" — the self-time-encoding
/// of target nodes, Eq. 4).
pub fn precomputed_zeros(ctx: &TContext, encoder: &TimeEncode, n: usize) -> Tensor {
    let row = {
        let mut zeros = ctx.time_zeros().lock();
        match zeros.as_ref() {
            Some(r) => r.clone(),
            None => {
                let _g = no_grad();
                let r = encoder.forward(&[0.0]).to_vec();
                *zeros = Some(r.clone());
                r
            }
        }
    };
    let dim = row.len();
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        data.extend_from_slice(&row);
    }
    Tensor::from_vec_on(data, [n, dim], ctx.device())
}

/// Precomputed time vectors for arbitrary deltas: memoizes `Φ(Δt)`
/// per distinct delta value, computing only previously unseen deltas
/// (in one batched encoder call) and reusing rows for the rest.
pub fn precomputed_times(ctx: &TContext, encoder: &TimeEncode, deltas: &[f32]) -> Tensor {
    let dim = encoder.dim();
    let mut table = ctx.time_table().lock();
    // Find unseen deltas.
    let mut missing: Vec<f32> = Vec::new();
    for &d in deltas {
        let key = d.to_bits() as u64;
        if !table.contains_key(&key) && !missing.iter().any(|&m| m.to_bits() == d.to_bits()) {
            missing.push(d);
        }
    }
    if !missing.is_empty() {
        let _g = no_grad();
        let fresh = encoder.forward(&missing);
        fresh.with_data(|rows| {
            for (k, &d) in missing.iter().enumerate() {
                table.insert(d.to_bits() as u64, rows[k * dim..(k + 1) * dim].to_vec());
            }
        });
    }
    let mut data = Vec::with_capacity(deltas.len() * dim);
    for &d in deltas {
        data.extend_from_slice(&table[&(d.to_bits() as u64)]);
    }
    drop(table);
    Tensor::from_vec_on(data, [deltas.len(), dim], ctx.device())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;

    fn setup() -> (TContext, TimeEncode) {
        let g = Arc::new(TemporalGraph::from_edges(2, vec![(0, 1, 1.0)]));
        let ctx = TContext::new(g);
        let mut rng = StdRng::seed_from_u64(0);
        (ctx, TimeEncode::new(4, &mut rng))
    }

    #[test]
    fn zeros_matches_direct_encoding() {
        let (ctx, enc) = setup();
        let pre = precomputed_zeros(&ctx, &enc, 3);
        let direct = enc.forward(&[0.0, 0.0, 0.0]);
        assert_eq!(pre.dims(), &[3, 4]);
        assert_eq!(pre.to_vec(), direct.to_vec());
    }

    #[test]
    fn times_match_direct_encoding() {
        let (ctx, enc) = setup();
        let deltas = [1.5f32, 0.0, 1.5, 7.25];
        let pre = precomputed_times(&ctx, &enc, &deltas);
        let direct = enc.forward(&deltas);
        assert_eq!(pre.to_vec(), direct.to_vec());
    }

    #[test]
    fn table_is_reused_across_calls() {
        let (ctx, enc) = setup();
        precomputed_times(&ctx, &enc, &[2.0, 3.0]);
        assert_eq!(ctx.time_table().lock().len(), 2);
        precomputed_times(&ctx, &enc, &[3.0, 2.0, 2.0]);
        assert_eq!(ctx.time_table().lock().len(), 2, "no new entries expected");
    }

    #[test]
    fn results_are_detached() {
        let (ctx, enc) = setup();
        let pre = precomputed_times(&ctx, &enc, &[1.0]);
        assert!(!pre.requires_grad_flag());
        let prez = precomputed_zeros(&ctx, &enc, 1);
        assert!(!prez.requires_grad_flag());
    }

    #[test]
    fn clear_caches_invalidates_tables() {
        let (ctx, enc) = setup();
        precomputed_times(&ctx, &enc, &[2.0]);
        precomputed_zeros(&ctx, &enc, 1);
        ctx.clear_caches();
        assert!(ctx.time_table().lock().is_empty());
        assert!(ctx.time_zeros().lock().is_none());
    }

    #[test]
    fn empty_deltas_empty_tensor() {
        let (ctx, enc) = setup();
        let pre = precomputed_times(&ctx, &enc, &[]);
        assert_eq!(pre.dims(), &[0, 4]);
    }
}
