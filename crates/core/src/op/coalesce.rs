//! The `coalesce` operator: reduce each destination's sources to one.

use tgl_sampler::NeighborSample;

use crate::TBlock;

/// Which edge survives coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoalesceBy {
    /// Keep the edge with the latest timestamp (ties: last occurrence).
    ///
    /// This is what TGN's `save_raw_msgs` needs: "only retains the
    /// latest message in the batch for each node" (paper §4).
    #[default]
    Latest,
    /// Keep the edge with the earliest timestamp (ties: first
    /// occurrence).
    Earliest,
}

/// Re-arranges and reduces the block's sources so each destination
/// keeps exactly one edge, selected by `by` (paper §3.3: "coalesce()
/// re-arranges and reduces the source nodes for each destination node
/// based on some property, such as latest edge timestamp").
///
/// Destinations with no sampled edges remain without edges. Returns
/// the same block for chaining.
///
/// # Panics
///
/// Panics if the block has no sampled neighborhood.
pub fn coalesce(blk: &TBlock, by: CoalesceBy) -> TBlock {
    let reduced = blk.with_nbrs(|n| {
        let num_dst = blk.num_dst();
        let mut keep: Vec<Option<usize>> = vec![None; num_dst];
        for (e, &d) in n.dst_index.iter().enumerate() {
            keep[d] = Some(match keep[d] {
                None => e,
                Some(prev) => match by {
                    CoalesceBy::Latest => {
                        if n.src_times[e] >= n.src_times[prev] {
                            e
                        } else {
                            prev
                        }
                    }
                    CoalesceBy::Earliest => {
                        if n.src_times[e] < n.src_times[prev] {
                            e
                        } else {
                            prev
                        }
                    }
                },
            });
        }
        let mut out = NeighborSample::default();
        for (d, k) in keep.iter().enumerate() {
            if let Some(e) = *k {
                out.src_nodes.push(n.src_nodes[e]);
                out.src_times.push(n.src_times[e]);
                out.eids.push(n.eids[e]);
                out.dst_index.push(d);
            }
        }
        out
    });
    // Re-attach (clears stale src/edge feature caches).
    blk.set_neighborhood(reduced);
    blk.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TBlock, TContext};
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;

    fn block() -> TBlock {
        let g = Arc::new(TemporalGraph::from_edges(5, vec![(0, 1, 1.0)]));
        let ctx = TContext::new(g);
        let blk = TBlock::new(&ctx, 0, vec![0, 1, 2], vec![9.0, 9.0, 9.0]);
        blk.set_neighborhood(NeighborSample {
            src_nodes: vec![3, 4, 3, 4],
            src_times: vec![1.0, 5.0, 2.0, 4.0],
            eids: vec![0, 1, 2, 3],
            dst_index: vec![0, 0, 1, 1],
        });
        blk
    }

    #[test]
    fn latest_keeps_max_time_edge_per_dst() {
        let blk = block();
        coalesce(&blk, CoalesceBy::Latest);
        assert_eq!(blk.num_edges(), 2);
        assert_eq!(blk.src_times(), vec![5.0, 4.0]);
        assert_eq!(blk.src_nodes(), vec![4, 4]);
        assert_eq!(blk.dst_index(), vec![0, 1]);
    }

    #[test]
    fn earliest_keeps_min_time_edge() {
        let blk = block();
        coalesce(&blk, CoalesceBy::Earliest);
        assert_eq!(blk.src_times(), vec![1.0, 2.0]);
        assert_eq!(blk.src_nodes(), vec![3, 3]);
    }

    #[test]
    fn dst_without_edges_stays_empty() {
        let blk = block();
        coalesce(&blk, CoalesceBy::Latest);
        // dst 2 had no edges; dst_index never contains 2.
        assert!(!blk.dst_index().contains(&2));
    }

    #[test]
    fn latest_tie_prefers_last_occurrence() {
        let g = Arc::new(TemporalGraph::from_edges(3, vec![(0, 1, 1.0)]));
        let ctx = TContext::new(g);
        let blk = TBlock::new(&ctx, 0, vec![0], vec![9.0]);
        blk.set_neighborhood(NeighborSample {
            src_nodes: vec![1, 2],
            src_times: vec![3.0, 3.0],
            eids: vec![0, 1],
            dst_index: vec![0, 0],
        });
        coalesce(&blk, CoalesceBy::Latest);
        assert_eq!(blk.src_nodes(), vec![2]);
    }

    #[test]
    fn idempotent() {
        let blk = block();
        coalesce(&blk, CoalesceBy::Latest);
        let once = (blk.src_nodes(), blk.src_times(), blk.dst_index());
        coalesce(&blk, CoalesceBy::Latest);
        assert_eq!(once, (blk.src_nodes(), blk.src_times(), blk.dst_index()));
    }
}
