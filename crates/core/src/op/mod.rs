//! TBlock-based operators (paper Table 1).
//!
//! Single-block computation operators: [`edge_softmax`],
//! [`edge_reduce`], [`src_scatter`], [`coalesce`].
//! Multi-block operators: [`aggregate`] (pull-style message passing)
//! and [`propagate`] (push-style).
//! Optimization operators (semantic-preserving): [`dedup`], [`cache`],
//! [`preload`], [`precomputed_zeros`], [`precomputed_times`].

mod agg;
mod cache;
mod coalesce;
mod dedup;
mod preload;
mod segment;
mod time;

pub use agg::{aggregate, propagate};
pub use cache::cache;
pub use coalesce::{coalesce, CoalesceBy};
pub use dedup::dedup;
pub(crate) use dedup::{dedup_apply, dedup_planned};
pub use preload::preload;
pub use segment::{edge_reduce, edge_softmax, src_scatter, ReduceOp};
pub use time::{precomputed_times, precomputed_zeros};
