//! The `preload` data-movement optimization operator.

use tgl_device::Device;

use crate::{TBlock, TContext};

/// Loads feature data for *all* blocks in the chain onto the compute
/// device ahead of computation, staging host-resident tensors through
/// the context's pre-allocated pinned-memory pool when `use_pin` is
/// set (paper §3.3: "preload() ... focuses on optimizing data
/// movements ... one technique is to use pinned memory to minimize
/// data transfer costs").
///
/// With `use_pin = false` the pageable (slow) path is used, which is
/// what an unoptimized implementation does implicitly on first feature
/// access. In the all-on-GPU configuration (features already on the
/// compute device) this is a no-op — matching the paper's observation
/// that "the preload() operator in TGLite has no effect in this
/// scenario".
pub fn preload(ctx: &TContext, head: &TBlock, use_pin: bool) {
    tgl_obs::counter!("preload.calls").incr();
    let device = ctx.device();
    let mut cur = Some(head.clone());
    while let Some(blk) = cur {
        preload_block(ctx, &blk, device, use_pin);
        cur = blk.next();
    }
}

fn preload_block(ctx: &TContext, blk: &TBlock, device: Device, use_pin: bool) {
    let g = blk.graph();
    let move_to = |t: tgl_tensor::Tensor| -> tgl_tensor::Tensor {
        if t.device() == device {
            t
        } else {
            tgl_obs::counter!("preload.tensors_moved").incr();
            if use_pin {
                t.to_pinned(device, ctx.pinned_pool())
            } else {
                t.to(device)
            }
        }
    };
    let dst = (g.node_feat_dim() > 0).then(|| {
        let gathered = blk.with_dst(|nodes, _| g.node_feat_rows(nodes));
        move_to(gathered)
    });
    let (src, edge) = if blk.has_nbrs() {
        let src = (g.node_feat_dim() > 0).then(|| {
            let gathered = blk.with_nbrs(|n| g.node_feat_rows(&n.src_nodes));
            move_to(gathered)
        });
        let edge = (g.edge_feat_dim() > 0).then(|| {
            let gathered = blk.with_nbrs(|n| g.edge_feat_rows(&n.eids));
            move_to(gathered)
        });
        (src, edge)
    } else {
        (None, None)
    };
    blk.install_feat_cache(dst, src, edge);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TBlock, TContext, TSampler};
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;
    use tgl_sampler::SamplingStrategy;
    use tgl_tensor::Tensor;

    fn setup(feat_device: Device, compute: Device) -> (Arc<TemporalGraph>, TContext) {
        let g = Arc::new(TemporalGraph::from_edges(
            3,
            vec![(0, 1, 1.0), (1, 2, 2.0)],
        ));
        g.set_node_feats(Tensor::from_vec((0..6).map(|v| v as f32).collect(), [3, 2]).to(feat_device));
        g.set_edge_feats(Tensor::from_vec(vec![1.0, 2.0], [2, 1]).to(feat_device));
        let ctx = TContext::with_device(Arc::clone(&g), compute);
        (g, ctx)
    }

    #[test]
    fn preload_moves_features_to_compute_device() {
        let (_g, ctx) = setup(Device::Host, Device::Accel);
        let head = TBlock::new(&ctx, 0, vec![2], vec![9.0]);
        TSampler::new(2, SamplingStrategy::Recent).sample(&head);
        preload(&ctx, &head, true);
        assert_eq!(head.dstfeat().device(), Device::Accel);
        assert_eq!(head.srcfeat().device(), Device::Accel);
        assert_eq!(head.efeat().device(), Device::Accel);
        // Pool was exercised.
        let (acquired, _) = ctx.pinned_pool().stats();
        assert!(acquired >= 2);
    }

    #[test]
    fn preload_walks_whole_chain() {
        let (_g, ctx) = setup(Device::Host, Device::Accel);
        let sampler = TSampler::new(2, SamplingStrategy::Recent);
        let head = TBlock::new(&ctx, 0, vec![2], vec![9.0]);
        sampler.sample(&head);
        let tail = head.next_block();
        sampler.sample(&tail);
        preload(&ctx, &head, true);
        assert_eq!(tail.dstfeat().device(), Device::Accel);
        assert_eq!(tail.srcfeat().device(), Device::Accel);
    }

    #[test]
    fn preload_noop_when_already_on_device() {
        let (_g, ctx) = setup(Device::Host, Device::Host);
        let head = TBlock::new(&ctx, 0, vec![1], vec![9.0]);
        let before = tgl_device::stats().transfer_count;
        preload(&ctx, &head, true);
        assert_eq!(tgl_device::stats().transfer_count, before);
    }

    #[test]
    fn pinned_transfers_use_pinned_kind() {
        let (_g, ctx) = setup(Device::Host, Device::Accel);
        let head = TBlock::new(&ctx, 0, vec![0, 1, 2], vec![9.0, 9.0, 9.0]);
        let before = tgl_device::stats();
        preload(&ctx, &head, true);
        let after = tgl_device::stats();
        assert!(after.h2d_bytes > before.h2d_bytes);
    }
}
