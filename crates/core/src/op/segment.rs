//! Edge-wise segmented computation operators.
//!
//! These let models express attention "more naturally with edge-wise
//! computation operators on TBlocks" (paper §3.1) instead of batched
//! matmul + masked softmax over padded neighbor tensors.

use tgl_tensor::ops::{segment_max, segment_mean, segment_softmax, segment_sum};
use tgl_tensor::Tensor;

use crate::TBlock;

/// Reduction applied by [`edge_reduce`] / [`src_scatter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReduceOp {
    /// Sum rows per group.
    #[default]
    Sum,
    /// Average rows per group.
    Mean,
    /// Elementwise max per group.
    Max,
}

/// Segmented softmax of per-edge values grouped by destination
/// (the `edge_softmax()` of paper Listing 2, line 34).
///
/// `values` has one row per sampled edge (columns = attention heads);
/// rows belonging to the same destination are normalized together.
///
/// # Panics
///
/// Panics if `values.dim(0) != blk.num_edges()`.
pub fn edge_softmax(blk: &TBlock, values: &Tensor) -> Tensor {
    assert_eq!(
        values.dim(0),
        blk.num_edges(),
        "edge_softmax expects one row per edge"
    );
    segment_softmax(values, &blk.dst_index(), blk.num_dst())
}

/// Segmented reduction of per-edge values into per-destination rows
/// (the `edge_reduce()` of paper Listing 2, line 36).
///
/// "For each destination node it applies a reduce operation to its
/// group of source nodes to combine their data" (§3.3). Destinations
/// with no sampled edges yield zero rows.
///
/// # Panics
///
/// Panics if `values.dim(0) != blk.num_edges()`.
pub fn edge_reduce(blk: &TBlock, values: &Tensor, op: ReduceOp) -> Tensor {
    assert_eq!(
        values.dim(0),
        blk.num_edges(),
        "edge_reduce expects one row per edge"
    );
    let seg = blk.dst_index();
    let n = blk.num_dst();
    match op {
        ReduceOp::Sum => segment_sum(values, &seg, n),
        ReduceOp::Mean => segment_mean(values, &seg, n),
        ReduceOp::Max => segment_max(values, &seg, n),
    }
}

/// Scatters per-edge values onto the block's *unique source nodes*,
/// reducing duplicates (the `src_scatter()` used by APAN's
/// `send_mails`, paper Listing 6).
///
/// Returns the unique source node list (first-appearance order) and a
/// `[num_unique, D]` tensor.
///
/// # Panics
///
/// Panics if `values.dim(0) != blk.num_edges()`.
pub fn src_scatter(
    blk: &TBlock,
    values: &Tensor,
    op: ReduceOp,
) -> (Vec<tgl_graph::NodeId>, Tensor) {
    assert_eq!(
        values.dim(0),
        blk.num_edges(),
        "src_scatter expects one row per edge"
    );
    let (uniq, index) = blk.uniq_src();
    let n = uniq.len();
    let out = match op {
        ReduceOp::Sum => segment_sum(values, &index, n),
        ReduceOp::Mean => segment_mean(values, &index, n),
        ReduceOp::Max => segment_max(values, &index, n),
    };
    (uniq, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TBlock, TContext};
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;
    use tgl_sampler::NeighborSample;

    fn block_with_edges() -> TBlock {
        let g = Arc::new(TemporalGraph::from_edges(4, vec![(0, 1, 1.0)]));
        let ctx = TContext::new(g);
        let blk = TBlock::new(&ctx, 0, vec![0, 1], vec![5.0, 5.0]);
        blk.set_neighborhood(NeighborSample {
            src_nodes: vec![2, 3, 2],
            src_times: vec![1.0, 2.0, 3.0],
            eids: vec![0, 0, 0],
            dst_index: vec![0, 0, 1],
        });
        blk
    }

    #[test]
    fn edge_softmax_normalizes_per_dst() {
        let blk = block_with_edges();
        let attn = Tensor::from_vec(vec![1.0, 1.0, 7.0], [3, 1]);
        let s = edge_softmax(&blk, &attn).to_vec();
        assert!((s[0] - 0.5).abs() < 1e-6);
        assert!((s[1] - 0.5).abs() < 1e-6);
        assert!((s[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn edge_reduce_sum_mean_max() {
        let blk = block_with_edges();
        let vals = Tensor::from_vec(vec![1.0, 3.0, 10.0], [3, 1]);
        assert_eq!(edge_reduce(&blk, &vals, ReduceOp::Sum).to_vec(), vec![4.0, 10.0]);
        assert_eq!(edge_reduce(&blk, &vals, ReduceOp::Mean).to_vec(), vec![2.0, 10.0]);
        assert_eq!(edge_reduce(&blk, &vals, ReduceOp::Max).to_vec(), vec![3.0, 10.0]);
    }

    #[test]
    fn src_scatter_mean_merges_duplicate_sources() {
        let blk = block_with_edges();
        let vals = Tensor::from_vec(vec![2.0, 4.0, 6.0], [3, 1]);
        let (uniq, out) = src_scatter(&blk, &vals, ReduceOp::Mean);
        assert_eq!(uniq, vec![2, 3]);
        // node 2 receives rows 0 and 2 -> mean(2, 6) = 4
        assert_eq!(out.to_vec(), vec![4.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "one row per edge")]
    fn wrong_row_count_panics() {
        let blk = block_with_edges();
        edge_reduce(&blk, &Tensor::zeros([5, 1]), ReduceOp::Sum);
    }

    #[test]
    fn gradient_flows_through_edge_ops() {
        let blk = block_with_edges();
        let vals = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3, 1]).requires_grad(true);
        let attn = edge_softmax(&blk, &vals);
        let out = edge_reduce(&blk, &attn.mul(&vals), ReduceOp::Sum);
        out.sum_all().backward();
        assert!(vals.grad().is_some());
    }
}
