//! `TSampler`: temporal neighborhood sampling as a block operator.

use tgl_sampler::{SamplingStrategy, TemporalSampler};

use crate::TBlock;

/// Samples temporal neighbors for a block's destination pairs
/// (paper Table 2 / §3.4: "TGLite provides a TSampler module that
/// exposes 1-hop temporal sampling via its sample() method, which can
/// be used as a block operator").
#[derive(Debug, Clone)]
pub struct TSampler {
    inner: TemporalSampler,
}

impl TSampler {
    /// Creates a sampler taking up to `k` neighbors per destination.
    pub fn new(k: usize, strategy: SamplingStrategy) -> TSampler {
        TSampler {
            inner: TemporalSampler::new(k, strategy),
        }
    }

    /// Wraps a pre-configured engine (custom threads/seed).
    pub fn from_engine(engine: TemporalSampler) -> TSampler {
        TSampler { inner: engine }
    }

    /// Neighbors per destination.
    pub fn num_neighbors(&self) -> usize {
        self.inner.num_neighbors()
    }

    /// The underlying sampling engine (models expose a clone of this in
    /// their [`crate::plan::SamplingSpec`] so a prefetch stage can
    /// replay sampling deterministically).
    pub fn engine(&self) -> &TemporalSampler {
        &self.inner
    }

    /// Samples the block's neighborhood in place and returns the same
    /// block for chaining.
    ///
    /// Apply destination-filtering optimizations (`dedup`, `cache`)
    /// *before* sampling "so to minimize the size of the following
    /// subgraphs" (paper §3.2).
    pub fn sample(&self, blk: &TBlock) -> TBlock {
        let csr = blk.graph().tcsr();
        let nbrs = blk.with_dst(|nodes, times| self.inner.sample(&csr, nodes, times));
        blk.set_neighborhood(nbrs);
        blk.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TBlock, TContext};
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;

    #[test]
    fn sample_fills_block() {
        let g = Arc::new(TemporalGraph::from_edges(
            3,
            vec![(0, 1, 1.0), (0, 2, 2.0)],
        ));
        let ctx = TContext::new(Arc::clone(&g));
        let blk = TBlock::new(&ctx, 0, vec![0], vec![5.0]);
        let sampler = TSampler::new(5, SamplingStrategy::Recent);
        assert_eq!(sampler.num_neighbors(), 5);
        let same = sampler.sample(&blk);
        assert!(same.has_nbrs());
        assert_eq!(blk.num_edges(), 2);
        assert_eq!(blk.src_nodes(), vec![1, 2]);
    }
}
