//! Lightweight phase profiling for breakdown analyses.
//!
//! The paper's Fig. 7 breaks a TGAT training epoch into major
//! operations (sample, batch prep, time encoding, attention, backward,
//! …). This module keeps the original `scope()/take()` API but is now a
//! facade over the [`tgl_obs`](crate::obs) observability substrate: a
//! scope is an obs span, so phase time aggregates into one *global*
//! accumulator no matter which thread records it — including
//! `tgl-runtime` pool workers, whose time the old thread-local
//! implementation silently dropped — and, when tracing is enabled, the
//! same scope also emits a Chrome trace event.
//!
//! Profiling is process-global and disabled (near-zero cost) unless a
//! harness calls [`enable`].
//!
//! # Examples
//!
//! ```
//! use tglite::prof;
//!
//! prof::enable(true);
//! {
//!     let _g = prof::scope("attention");
//!     // ... work ...
//! }
//! let report = prof::take();
//! assert!(report.iter().any(|(name, _)| *name == "attention"));
//! prof::enable(false);
//! ```

use std::time::Duration;

pub use tgl_obs::SpanGuard as ScopeGuard;

/// Enables or disables phase accumulation (process-global).
pub fn enable(on: bool) {
    tgl_obs::phase::enable(on);
}

/// Whether profiling is currently enabled.
pub fn enabled() -> bool {
    tgl_obs::phase::enabled()
}

/// Starts timing the named phase (no-op when profiling is disabled —
/// unless tracing is on, in which case the guard still records a trace
/// event). Time accumulates into the global report regardless of the
/// recording thread.
pub fn scope(name: &'static str) -> ScopeGuard {
    tgl_obs::span(name)
}

/// Adds an externally measured duration to a phase.
pub fn add(name: &'static str, d: Duration) {
    if enabled() {
        tgl_obs::phase::add(name, d);
    }
}

/// Drains and returns the accumulated `(phase, duration)` pairs from
/// every thread, sorted by descending duration.
pub fn take() -> Vec<(&'static str, Duration)> {
    tgl_obs::phase::take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The accumulator is process-global and cargo runs tests
    /// concurrently, so tests serialize and look for their own unique
    /// phase names rather than asserting the report is empty.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let _g = serial();
        let was = enabled();
        enable(false);
        {
            let _s = scope("prof-test-disabled");
        }
        add("prof-test-disabled", Duration::from_millis(1));
        enable(true);
        let report = take();
        enable(was);
        assert!(!report.iter().any(|(n, _)| *n == "prof-test-disabled"));
    }

    #[test]
    fn enabled_scope_accumulates() {
        let _g = serial();
        enable(true);
        {
            let _s = scope("prof-test-alpha");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _s = scope("prof-test-alpha");
        }
        add("prof-test-beta", Duration::from_millis(1));
        let report = take();
        enable(false);
        let alpha = report.iter().find(|(n, _)| *n == "prof-test-alpha").unwrap();
        assert!(alpha.1 >= Duration::from_millis(2));
        assert!(report.iter().any(|(n, _)| *n == "prof-test-beta"));
    }

    #[test]
    fn take_drains() {
        let _g = serial();
        enable(true);
        add("prof-test-drain", Duration::from_millis(1));
        assert!(take().iter().any(|(n, _)| *n == "prof-test-drain"));
        assert!(!take().iter().any(|(n, _)| *n == "prof-test-drain"));
        enable(false);
    }

    #[test]
    fn worker_thread_scopes_reach_caller_report() {
        // Regression test for the PR 1 era bug: phases recorded inside
        // pool closures vanished from the caller's thread-local report.
        let _g = serial();
        enable(true);
        take();
        let before = tgl_runtime::current_threads();
        tgl_runtime::set_threads(2);
        tgl_runtime::parallel_for(4096, 1, |r| {
            let _s = scope("prof-test-worker-phase");
            let mut acc = 0.0f64;
            for i in r {
                acc += (i as f64).sqrt();
            }
            std::hint::black_box(acc);
        });
        tgl_runtime::set_threads(before);
        let report = take();
        enable(false);
        let phase = report
            .iter()
            .find(|(n, _)| *n == "prof-test-worker-phase")
            .expect("phase recorded inside a parallel region must appear in the report");
        assert!(phase.1 > Duration::ZERO);
    }
}
