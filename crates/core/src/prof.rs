//! Lightweight phase profiling for breakdown analyses.
//!
//! The paper's Fig. 7 breaks a TGAT training epoch into major
//! operations (sample, batch prep, time encoding, attention, backward,
//! …). This module provides a thread-local named-phase accumulator
//! that framework and model code mark with [`scope`] guards; it is
//! disabled (near-zero cost) unless a harness calls [`enable`].
//!
//! # Examples
//!
//! ```
//! use tglite::prof;
//!
//! prof::enable(true);
//! {
//!     let _g = prof::scope("attention");
//!     // ... work ...
//! }
//! let report = prof::take();
//! assert!(report.iter().any(|(name, _)| *name == "attention"));
//! prof::enable(false);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::{Duration, Instant};

thread_local! {
    static ENABLED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static PHASES: RefCell<HashMap<&'static str, Duration>> = RefCell::new(HashMap::new());
}

/// Enables or disables phase accumulation on this thread.
pub fn enable(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether profiling is currently enabled on this thread.
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// RAII guard accumulating wall time into a named phase on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts timing the named phase (no-op when profiling is disabled).
pub fn scope(name: &'static str) -> ScopeGuard {
    ScopeGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            PHASES.with(|p| {
                *p.borrow_mut().entry(self.name).or_default() += elapsed;
            });
        }
    }
}

/// Adds an externally measured duration to a phase.
pub fn add(name: &'static str, d: Duration) {
    if enabled() {
        PHASES.with(|p| {
            *p.borrow_mut().entry(name).or_default() += d;
        });
    }
}

/// Drains and returns the accumulated `(phase, duration)` pairs,
/// sorted by descending duration.
pub fn take() -> Vec<(&'static str, Duration)> {
    let mut v: Vec<_> = PHASES.with(|p| p.borrow_mut().drain().collect());
    v.sort_by_key(|e| std::cmp::Reverse(e.1));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scope_records_nothing() {
        enable(false);
        take();
        {
            let _g = scope("x");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn enabled_scope_accumulates() {
        enable(true);
        take();
        {
            let _g = scope("alpha");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _g = scope("alpha");
        }
        add("beta", Duration::from_millis(1));
        let report = take();
        enable(false);
        let alpha = report.iter().find(|(n, _)| *n == "alpha").unwrap();
        assert!(alpha.1 >= Duration::from_millis(2));
        assert!(report.iter().any(|(n, _)| *n == "beta"));
    }

    #[test]
    fn take_drains() {
        enable(true);
        add("g", Duration::from_millis(1));
        assert!(!take().is_empty());
        assert!(take().is_empty());
        enable(false);
    }
}
