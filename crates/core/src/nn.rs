//! Domain-specific neural modules provided by TGLite.

use tgl_runtime::rng::Rng;
use tgl_tensor::nn::Module;
use tgl_tensor::Tensor;

/// The learnable time encoder `Φ(Δt) = cos(ω·Δt + φ)` (paper Eq. 8).
///
/// Maps a batch of scalar time deltas to `dim`-dimensional vectors by
/// broadcasting the delta against learnable frequency (`ω`) and phase
/// (`φ`) vectors. TGAT/TGN inject these vectors into message passing by
/// concatenation with node/edge features.
///
/// # Examples
///
/// ```
/// use tgl_runtime::rng::{SeedableRng, StdRng};
/// use tglite::nn::TimeEncode;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let enc = TimeEncode::new(8, &mut rng);
/// let v = enc.forward(&[0.0, 1.5, 100.0]);
/// assert_eq!(v.dims(), &[3, 8]);
/// // Δt = 0 encodes to cos(φ): bounded by 1.
/// assert!(v.to_vec().iter().all(|x| x.abs() <= 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeEncode {
    weight: Tensor,
    bias: Tensor,
    dim: usize,
}

impl TimeEncode {
    /// Creates an encoder producing `dim`-wide time vectors.
    ///
    /// Frequencies follow the TGAT initialization: a geometric ladder
    /// `1 / 10^(k·9/dim)` spanning ~9 decades, which covers both short
    /// and long time scales; phases start at zero. Both are trainable.
    pub fn new(dim: usize, _rng: &mut impl Rng) -> TimeEncode {
        assert!(dim > 0, "time encoding dim must be positive");
        let freqs: Vec<f32> = (0..dim)
            .map(|k| 1.0f32 / 10f32.powf(k as f32 * 9.0 / dim as f32))
            .collect();
        TimeEncode {
            weight: Tensor::from_vec(freqs, [dim]).requires_grad(true),
            bias: Tensor::zeros([dim]).requires_grad(true),
            dim,
        }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns a copy of this encoder with parameters on `device`.
    pub fn to_device(&self, device: tgl_device::Device) -> TimeEncode {
        TimeEncode {
            weight: self.weight.to(device).requires_grad(true),
            bias: self.bias.to(device).requires_grad(true),
            dim: self.dim,
        }
    }

    /// Encodes a slice of deltas into `[n, dim]` time vectors.
    pub fn forward(&self, deltas: &[f32]) -> Tensor {
        let n = deltas.len();
        let dt = Tensor::from_vec(deltas.to_vec(), [n, 1]).to(self.weight.device());
        self.forward_tensor(&dt)
    }

    /// Encodes a `[n, 1]` delta tensor (differentiable path).
    pub fn forward_tensor(&self, deltas: &Tensor) -> Tensor {
        deltas.mul(&self.weight).add(&self.bias).cos()
    }
}

impl Module for TimeEncode {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;
    use tgl_tensor::nn::Module;

    fn enc(dim: usize) -> TimeEncode {
        let mut rng = StdRng::seed_from_u64(0);
        TimeEncode::new(dim, &mut rng)
    }

    #[test]
    fn zero_delta_gives_cos_phase() {
        let e = enc(4);
        // phase starts at zero => cos(0) = 1 everywhere
        assert_eq!(e.forward(&[0.0]).to_vec(), vec![1.0; 4]);
    }

    #[test]
    fn output_shape() {
        let e = enc(6);
        assert_eq!(e.forward(&[1.0, 2.0, 3.0]).dims(), &[3, 6]);
        assert_eq!(e.dim(), 6);
    }

    #[test]
    fn deterministic_per_delta() {
        let e = enc(8);
        let a = e.forward(&[5.0]).to_vec();
        let b = e.forward(&[5.0]).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_deltas_distinct_codes() {
        let e = enc(8);
        let v = e.forward(&[1.0, 1000.0]);
        let rows = v.to_vec();
        assert_ne!(rows[..8], rows[8..]);
    }

    #[test]
    fn parameters_are_trainable() {
        let e = enc(4);
        let params = e.parameters();
        assert_eq!(params.len(), 2);
        let dt = Tensor::from_vec(vec![2.0], [1, 1]);
        e.forward_tensor(&dt).sum_all().backward();
        assert!(params[0].grad().is_some(), "weight grad missing");
        assert!(params[1].grad().is_some(), "bias grad missing");
    }

    #[test]
    fn frequency_ladder_is_decreasing() {
        let e = enc(8);
        let w = e.parameters()[0].to_vec();
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        assert!((w[0] - 1.0).abs() < 1e-6);
    }
}
