//! `TBatch`: a lazy view of a chronological slice of temporal edges.

use std::ops::Range;
use std::sync::Arc;

use tgl_graph::{NodeId, TemporalGraph, Time};
use tgl_sampler::NeighborSample;

use crate::{TBlock, TContext};

/// "Represents a batch of temporal edges to process ... a thin wrapper
/// with a TGraph reference and without actually materializing any
/// arrays until they are needed" (paper §3.4).
///
/// For link-prediction training a batch may also carry sampled
/// negative destination nodes.
#[derive(Debug, Clone)]
pub struct TBatch {
    graph: Arc<TemporalGraph>,
    range: Range<usize>,
    negs: Vec<NodeId>,
    /// Prefetched sampling/staging work attached by the pipelined
    /// trainer's sampler stage (see [`crate::plan`]).
    plan: Option<Arc<crate::plan::BatchPlan>>,
    /// Introspection observations collected while the batch was built
    /// (possibly on a sampler thread), carried to the compute thread so
    /// they flush in batch order regardless of pipeline depth.
    insight: Option<Box<tgl_obs::insight::InsightBag>>,
}

impl TBatch {
    /// Creates a batch over edge indices `range` (chronological order).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the graph's edge count.
    pub fn new(graph: Arc<TemporalGraph>, range: Range<usize>) -> TBatch {
        assert!(range.end <= graph.num_edges(), "batch range out of bounds");
        TBatch {
            graph,
            range,
            negs: Vec::new(),
            plan: None,
            insight: None,
        }
    }

    /// Number of edges in the batch.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True when the batch has no edges.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Arc<TemporalGraph> {
        &self.graph
    }

    /// The edge index range.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Source endpoints of the batch edges.
    pub fn srcs(&self) -> &[NodeId] {
        &self.graph.src()[self.range.clone()]
    }

    /// Destination endpoints of the batch edges.
    pub fn dsts(&self) -> &[NodeId] {
        &self.graph.dst()[self.range.clone()]
    }

    /// Timestamps of the batch edges.
    pub fn times(&self) -> &[Time] {
        &self.graph.times()[self.range.clone()]
    }

    /// Edge ids (chronological indices) of the batch edges.
    pub fn eids(&self) -> Vec<tgl_graph::EdgeId> {
        self.range.clone().map(|e| e as tgl_graph::EdgeId).collect()
    }

    /// Attaches negative destination samples (one per edge) for link
    /// prediction.
    ///
    /// # Panics
    ///
    /// Panics if `negs.len() != len()`.
    pub fn set_negatives(&mut self, negs: Vec<NodeId>) {
        assert_eq!(negs.len(), self.len(), "one negative per edge required");
        // Collision rate of the negative draw against this batch's
        // positive destinations: a set-membership count, so the value
        // is independent of draw or thread order.
        if tgl_obs::insight::active() && !negs.is_empty() {
            let dsts: std::collections::HashSet<NodeId> = self.dsts().iter().copied().collect();
            let collisions = negs.iter().filter(|n| dsts.contains(n)).count();
            tgl_obs::insight::observe_neg_sampling(negs.len() as u64, collisions as u64);
        }
        self.negs = negs;
    }

    /// The attached negative destinations (empty if none).
    pub fn negatives(&self) -> &[NodeId] {
        &self.negs
    }

    /// Attaches a prefetch plan built by [`crate::plan::build_plan`].
    /// Plan-aware models replay it instead of re-running dedup,
    /// sampling, and feature staging on the compute thread.
    pub fn set_plan(&mut self, plan: Arc<crate::plan::BatchPlan>) {
        self.plan = Some(plan);
    }

    /// The attached prefetch plan, if any.
    pub fn plan(&self) -> Option<&Arc<crate::plan::BatchPlan>> {
        self.plan.as_ref()
    }

    /// Attaches the insight bag collected while this batch was built
    /// (pipelined trainer: detach with
    /// [`tgl_obs::insight::take_batch`] on the sampler stage).
    pub fn set_insight(&mut self, bag: Option<Box<tgl_obs::insight::InsightBag>>) {
        self.insight = bag;
    }

    /// Detaches the carried insight bag (compute-thread side: hand it
    /// to [`tgl_obs::insight::install_batch`]).
    pub fn take_insight(&mut self) -> Option<Box<tgl_obs::insight::InsightBag>> {
        self.insight.take()
    }

    /// Builds the head [`TBlock`] for embedding computation: the
    /// destination pairs are `[srcs, dsts, negatives]`, each at its
    /// edge's timestamp. Model outputs for these rows split into
    /// source/destination/negative embeddings in that order.
    pub fn block(&self, ctx: &TContext) -> TBlock {
        let n = self.len();
        let mut nodes = Vec::with_capacity(2 * n + self.negs.len());
        nodes.extend_from_slice(self.srcs());
        nodes.extend_from_slice(self.dsts());
        nodes.extend_from_slice(&self.negs);
        let times = self.times();
        let mut ts = Vec::with_capacity(nodes.len());
        for _ in 0..(nodes.len() / n.max(1)) {
            ts.extend_from_slice(times);
        }
        ts.truncate(nodes.len());
        TBlock::new(ctx, 0, nodes, ts)
    }

    /// Builds a block over the batch's *adjacency*: destinations are
    /// the unique nodes touched by the batch (first-appearance order)
    /// and the attached neighborhood holds, for each batch edge, the
    /// counterparty node at the edge time — both directions.
    ///
    /// This is the structure TGN-style models use to save raw messages
    /// (`save_raw_msgs` in the paper's Listing 4), usually followed by
    /// [`crate::op::coalesce`] to keep only the latest message per
    /// node.
    pub fn block_adj(&self, ctx: &TContext) -> TBlock {
        let mut uniq: Vec<NodeId> = Vec::new();
        let mut pos = std::collections::HashMap::new();
        let mut entries: Vec<Vec<(NodeId, Time, tgl_graph::EdgeId)>> = Vec::new();
        for (i, ((&s, &d), &t)) in self
            .srcs()
            .iter()
            .zip(self.dsts())
            .zip(self.times())
            .enumerate()
        {
            let eid = (self.range.start + i) as tgl_graph::EdgeId;
            for (a, b) in [(s, d), (d, s)] {
                let p = *pos.entry(a).or_insert_with(|| {
                    uniq.push(a);
                    entries.push(Vec::new());
                    uniq.len() - 1
                });
                entries[p].push((b, t, eid));
            }
        }
        // Batch-time destinations: each unique node queried at the max
        // batch time (all of its in-batch interactions are "earlier or
        // equal").
        let t_query = self.times().last().copied().unwrap_or(0.0);
        let times = vec![t_query; uniq.len()];
        let blk = TBlock::new(ctx, 0, uniq, times);
        let mut nbrs = NeighborSample::default();
        for (p, list) in entries.iter().enumerate() {
            for &(b, t, eid) in list {
                nbrs.src_nodes.push(b);
                nbrs.src_times.push(t);
                nbrs.eids.push(eid);
                nbrs.dst_index.push(p);
            }
        }
        blk.set_neighborhood(nbrs);
        blk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_tensor::Tensor;

    fn setup() -> (Arc<TemporalGraph>, TContext) {
        let g = Arc::new(TemporalGraph::from_edges(
            5,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)],
        ));
        g.set_node_feats(Tensor::zeros([5, 2]));
        let ctx = TContext::new(Arc::clone(&g));
        (g, ctx)
    }

    #[test]
    fn batch_views_are_lazy_slices() {
        let (g, _ctx) = setup();
        let b = TBatch::new(g, 1..3);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.srcs(), &[1, 2]);
        assert_eq!(b.dsts(), &[2, 3]);
        assert_eq!(b.times(), &[2.0, 3.0]);
        assert_eq!(b.eids(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_range_panics() {
        let (g, _ctx) = setup();
        TBatch::new(g, 2..99);
    }

    #[test]
    fn block_stacks_src_dst_neg() {
        let (g, ctx) = setup();
        let mut b = TBatch::new(g, 0..2);
        b.set_negatives(vec![4, 4]);
        let blk = b.block(&ctx);
        assert_eq!(blk.num_dst(), 6);
        assert_eq!(blk.dst_nodes(), vec![0, 1, 1, 2, 4, 4]);
        assert_eq!(blk.dst_times(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn block_without_negatives() {
        let (g, ctx) = setup();
        let b = TBatch::new(g, 0..2);
        let blk = b.block(&ctx);
        assert_eq!(blk.num_dst(), 4);
    }

    #[test]
    #[should_panic(expected = "one negative per edge")]
    fn wrong_negative_count_panics() {
        let (g, _ctx) = setup();
        TBatch::new(g, 0..2).set_negatives(vec![4]);
    }

    #[test]
    fn block_adj_covers_both_directions() {
        let (g, ctx) = setup();
        let b = TBatch::new(g, 0..2); // edges 0-1@1, 1-2@2
        let blk = b.block_adj(&ctx);
        // unique nodes in first-appearance order: 0, 1, 2
        assert_eq!(blk.dst_nodes(), vec![0, 1, 2]);
        assert_eq!(blk.num_edges(), 4); // both directions per edge
        // node 1 participates in both edges.
        let dst_index = blk.dst_index();
        let count_node1 = dst_index.iter().filter(|&&d| d == 1).count();
        assert_eq!(count_node1, 2);
        // eids refer to global chronological ids.
        assert!(blk.eids().iter().all(|&e| e < 2));
    }

    #[test]
    fn empty_batch_block() {
        let (g, ctx) = setup();
        let b = TBatch::new(g, 2..2);
        assert!(b.is_empty());
        let blk = b.block(&ctx);
        assert_eq!(blk.num_dst(), 0);
    }
}
