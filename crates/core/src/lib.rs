//! # TGLite (Rust reproduction)
//!
//! A lightweight programming framework for continuous-time Temporal
//! Graph Neural Networks (TGNNs), reproducing *"TGLite: A Lightweight
//! Programming Framework for Continuous-Time Temporal Graph Neural
//! Networks"* (Wang & Mendis, ASPLOS 2024).
//!
//! TGLite supplies a few core data abstractions plus a set of
//! composable operators; tensor math and autograd come from the
//! `tgl-tensor` substrate (standing in for PyTorch).
//!
//! ## Data abstractions (paper Table 2)
//!
//! * [`TContext`] — runtime settings and scratch space (target device,
//!   pinned-memory pool, embedding caches, precomputed time tables).
//! * `TGraph` ([`tgl_graph::TemporalGraph`], re-exported) — the CTDG
//!   container: time-sorted COO, lazy T-CSR, features, memory, mailbox.
//! * [`TBatch`] — a thin view of a contiguous chronological slice of
//!   edges; materializes nothing until asked.
//! * [`TBlock`] — the centerpiece: 1-hop message-flow dependencies
//!   between destination `(node, time)` pairs and temporally sampled
//!   neighbor sources, arranged in a doubly-linked chain for multi-hop
//!   computation, with optional neighborhood and a post-processing
//!   hooks mechanism.
//! * [`TSampler`] — temporal neighborhood sampling as a block operator.
//! * `Memory` / `Mailbox` (re-exported) — node state for memory-based
//!   models.
//!
//! ## Operators (paper Table 1)
//!
//! In [`op`]: [`op::dedup`], [`op::cache`], [`op::preload`],
//! [`op::coalesce`], [`op::edge_softmax`], [`op::edge_reduce`],
//! [`op::src_scatter`], [`op::aggregate`], [`op::propagate`],
//! [`op::precomputed_zeros`], [`op::precomputed_times`].
//!
//! ## Example: 2-layer temporal aggregation skeleton
//!
//! ```
//! use std::sync::Arc;
//! use tglite::{op, TBatch, TBlock, TContext, TSampler};
//! use tglite::tensor::Tensor;
//! use tgl_graph::TemporalGraph;
//! use tgl_sampler::SamplingStrategy;
//!
//! let g = Arc::new(TemporalGraph::from_edges(
//!     4,
//!     vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 2, 4.0)],
//! ));
//! g.set_node_feats(Tensor::ones([4, 8]));
//! let ctx = TContext::new(Arc::clone(&g));
//! let sampler = TSampler::new(2, SamplingStrategy::Recent);
//!
//! let batch = TBatch::new(Arc::clone(&g), 2..4); // last two edges
//! let head = batch.block(&ctx);
//! let mut tail = head.clone();
//! for i in 0..2 {
//!     if i > 0 {
//!         tail = tail.next_block();
//!     }
//!     op::dedup(&tail);
//!     sampler.sample(&tail);
//! }
//! tail.set_dstdata("h", tail.dstfeat());
//! tail.set_srcdata("h", tail.srcfeat());
//! // Mean-aggregate neighbor features layer by layer.
//! let out = op::aggregate(&head, "h", |blk| {
//!     let nbr_mean = op::edge_reduce(blk, &blk.srcdata("h"), op::ReduceOp::Mean);
//!     blk.dstdata("h").add(&nbr_mean)
//! });
//! assert_eq!(out.dim(0), head.num_dst());
//! ```

mod batch;
mod block;
mod ctx;
pub mod nn;
pub mod op;
pub mod plan;
pub mod prof;
mod sampler;

pub use batch::TBatch;
pub use block::{BlockHook, TBlock};
pub use ctx::TContext;
pub use sampler::TSampler;

/// Tensor substrate (re-export of `tgl-tensor`).
pub mod tensor {
    pub use tgl_tensor::*;
}

/// Observability substrate (re-export of `tgl-obs`): counters, the
/// cross-thread span tracer, and phase aggregation. [`prof`] is a thin
/// facade over `obs::phase`; use this module directly for counters and
/// Chrome-trace export.
pub mod obs {
    pub use tgl_obs::*;
}

pub use tgl_graph::{EdgeId, Mailbox, Memory, NodeId, TCsr, Time};

/// The paper's `TGraph`: central container for a CTDG dataset.
pub use tgl_graph::TemporalGraph as TGraph;

pub use tgl_device::Device;
