//! The TGLite runtime context.

use std::collections::HashMap;
use std::sync::Arc;

use tgl_runtime::sync::Mutex;
use tgl_device::{Device, PinnedPool};
use tgl_graph::{NodeId, TemporalGraph, Time};

/// "Settings and scratch space used by the TGLite runtime, such as for
/// caching values" (paper Table 2).
///
/// Owns the target compute device, the pinned-memory pool behind
/// `op::preload`, the per-layer embedding cache behind `op::cache`, and
/// the precomputed time-vector tables behind the precomputed-time
/// operators.
pub struct TContext {
    graph: Arc<TemporalGraph>,
    device: Device,
    pool: PinnedPool,
    embed_cache: Arc<EmbedCache>,
    time_table: Mutex<HashMap<u64, Vec<f32>>>,
    time_zeros: Mutex<Option<Vec<f32>>>,
}

impl std::fmt::Debug for TContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TContext")
            .field("device", &self.device)
            .field("nodes", &self.graph.num_nodes())
            .field("edges", &self.graph.num_edges())
            .finish()
    }
}

impl TContext {
    /// Creates a context computing on the host tier.
    pub fn new(graph: Arc<TemporalGraph>) -> TContext {
        TContext::with_device(graph, Device::Host)
    }

    /// Creates a context computing on `device`.
    pub fn with_device(graph: Arc<TemporalGraph>, device: Device) -> TContext {
        TContext {
            graph,
            device,
            pool: PinnedPool::new(),
            embed_cache: Arc::new(EmbedCache::new(20_000)),
            time_table: Mutex::new(HashMap::new()),
            time_zeros: Mutex::new(None),
        }
    }

    /// The CTDG this context operates over.
    pub fn graph(&self) -> &Arc<TemporalGraph> {
        &self.graph
    }

    /// The compute device models should place tensors on.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The pinned staging pool used by `op::preload`.
    pub fn pinned_pool(&self) -> &PinnedPool {
        &self.pool
    }

    /// The embedding cache used by `op::cache`.
    pub fn embed_cache(&self) -> &EmbedCache {
        &self.embed_cache
    }

    /// Shared handle to the embedding cache (for hooks that outlive
    /// the borrow of the context).
    pub(crate) fn embed_cache_arc(&self) -> Arc<EmbedCache> {
        Arc::clone(&self.embed_cache)
    }

    /// Clears cached embeddings and time tables (e.g. between epochs or
    /// after parameters change, which invalidates memoized results).
    pub fn clear_caches(&self) {
        self.embed_cache.clear();
        self.time_table.lock().clear();
        *self.time_zeros.lock() = None;
    }

    pub(crate) fn time_table(&self) -> &Mutex<HashMap<u64, Vec<f32>>> {
        &self.time_table
    }

    pub(crate) fn time_zeros(&self) -> &Mutex<Option<Vec<f32>>> {
        &self.time_zeros
    }
}

/// Key for a memoized embedding: a `(node, time)` pair at a layer.
fn cache_key(layer: usize, node: NodeId, time: Time) -> (u64, u64) {
    (((layer as u64) << 32) | node as u64, time.to_bits())
}

/// Bounded memoization table for computed node-time embeddings
/// (the paper's `cache()` optimization, after TGOpt).
///
/// FIFO-bounded: when full, the oldest insertions are evicted. Keys are
/// exact `(layer, node, time)` triples, so reuse only happens for
/// genuinely repeated computations — semantics are preserved.
pub struct EmbedCache {
    map: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<(u64, u64), Vec<f32>>,
    order: std::collections::VecDeque<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl EmbedCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> EmbedCache {
        EmbedCache {
            map: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Looks up an embedding row.
    pub fn get(&self, layer: usize, node: NodeId, time: Time) -> Option<Vec<f32>> {
        let mut inner = self.map.lock();
        match inner.map.get(&cache_key(layer, node, time)) {
            Some(v) => {
                let v = v.clone();
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts an embedding row, evicting oldest entries beyond
    /// capacity.
    pub fn put(&self, layer: usize, node: NodeId, time: Time, row: Vec<f32>) {
        let key = cache_key(layer, node, time);
        let mut inner = self.map.lock();
        if inner.map.insert(key, row).is_none() {
            inner.order.push_back(key);
        }
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
    }

    /// Drops all entries (and resets statistics).
    pub fn clear(&self) {
        let mut inner = self.map.lock();
        inner.map.clear();
        inner.order.clear();
        inner.hits = 0;
        inner.misses = 0;
    }

    /// `(hits, misses)` since the last clear.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.map.lock();
        (inner.hits, inner.misses)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.lock().map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for EmbedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, m) = self.stats();
        write!(f, "EmbedCache(len={}, hits={h}, misses={m})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TContext {
        TContext::new(Arc::new(TemporalGraph::from_edges(2, vec![(0, 1, 1.0)])))
    }

    #[test]
    fn context_defaults() {
        let c = ctx();
        assert_eq!(c.device(), Device::Host);
        assert_eq!(c.graph().num_edges(), 1);
        assert!(format!("{c:?}").contains("TContext"));
    }

    #[test]
    fn embed_cache_roundtrip_and_stats() {
        let cache = EmbedCache::new(10);
        assert!(cache.get(0, 1, 5.0).is_none());
        cache.put(0, 1, 5.0, vec![1.0, 2.0]);
        assert_eq!(cache.get(0, 1, 5.0), Some(vec![1.0, 2.0]));
        // Different layer, node, or time are distinct keys.
        assert!(cache.get(1, 1, 5.0).is_none());
        assert!(cache.get(0, 2, 5.0).is_none());
        assert!(cache.get(0, 1, 6.0).is_none());
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 4);
    }

    #[test]
    fn embed_cache_evicts_fifo() {
        let cache = EmbedCache::new(2);
        cache.put(0, 0, 0.0, vec![0.0]);
        cache.put(0, 1, 0.0, vec![1.0]);
        cache.put(0, 2, 0.0, vec![2.0]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(0, 0, 0.0).is_none(), "oldest entry evicted");
        assert!(cache.get(0, 2, 0.0).is_some());
    }

    #[test]
    fn embed_cache_overwrite_does_not_grow_order() {
        let cache = EmbedCache::new(2);
        cache.put(0, 0, 0.0, vec![0.0]);
        cache.put(0, 0, 0.0, vec![9.0]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(0, 0, 0.0), Some(vec![9.0]));
    }

    #[test]
    fn clear_caches_resets() {
        let c = ctx();
        c.embed_cache().put(0, 0, 1.0, vec![1.0]);
        c.time_table().lock().insert(0, vec![1.0]);
        c.clear_caches();
        assert!(c.embed_cache().is_empty());
        assert!(c.time_table().lock().is_empty());
    }
}
