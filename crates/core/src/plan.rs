//! Prefetch plans: a `Send` description of a batch's sampling work.
//!
//! The pipelined trainer computes batch N+1's expensive, parameter-
//! independent work — negative draws, per-layer dedup, temporal
//! neighbor sampling, and host-to-device feature staging — on a
//! sampler stage while batch N runs forward/backward on the compute
//! stage. [`TBlock`]s are `Rc`-based and cannot cross threads, so the
//! sampler stage ships a [`BatchPlan`] instead: plain vectors plus
//! staged [`Tensor`]s (which are `Send + Sync`). The compute stage
//! rebuilds its block chain and replays the plan with
//! [`BatchPlan::apply_layer`].
//!
//! # Determinism and counter contract
//!
//! [`build_plan`] replicates exactly the chain construction a
//! training-mode forward pass performs (`block` → `dedup` → `sample`
//! per layer, then `preload`): dedup is a pure function of the
//! destination list, and temporal sampling seeds one RNG stream per
//! destination from the sampler seed, so the plan built on another
//! thread is bitwise identical to what the sequential path would have
//! computed. Every observability counter for this work
//! (`dedup.*`, `sampler.*`, `preload.*`, `transfer.*`) fires exactly
//! once — at build time, on the sampler stage — and
//! [`BatchPlan::apply_layer`] is counter-silent, so pipelined counter
//! totals match the sequential trainer's.

use tgl_graph::{NodeId, Time};
use tgl_sampler::{NeighborSample, TemporalSampler};
use tgl_tensor::Tensor;

use crate::{op, TBatch, TBlock, TContext};

/// The training-mode sampling/staging recipe of a model — everything
/// [`build_plan`] needs to replay the model's chain construction off
/// the compute thread.
#[derive(Debug, Clone)]
pub struct SamplingSpec {
    /// Blocks in the chain (message-passing layers).
    pub n_layers: usize,
    /// Apply `op::dedup` to each block before sampling.
    pub dedup: bool,
    /// Stage features through the pinned pool (`op::preload`). When
    /// false, features stay lazy and load on the compute stage exactly
    /// as the sequential path would.
    pub preload_pinned: bool,
    /// The model's sampler engine (its seed makes sampling a pure
    /// function of the destination list).
    pub sampler: TemporalSampler,
}

/// A layer's precomputed dedup replacement.
#[derive(Debug)]
struct DedupPlan {
    nodes: Vec<NodeId>,
    times: Vec<Time>,
    inverse: Vec<usize>,
}

/// One block's worth of prefetched work.
#[derive(Debug)]
struct LayerPlan {
    /// `Some` only when dedup actually shrank the destination list.
    dedup: Option<DedupPlan>,
    nbrs: NeighborSample,
    /// Staged `(dst, src, edge)` feature tensors (preload only).
    feats: (Option<Tensor>, Option<Tensor>, Option<Tensor>),
}

/// The full prefetched work for one batch, layer by layer.
#[derive(Debug)]
pub struct BatchPlan {
    layers: Vec<LayerPlan>,
}

impl BatchPlan {
    /// Number of planned layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Replays layer `i`'s prefetched work onto a freshly built block:
    /// dedup replacement + inversion hook, sampled neighborhood, and
    /// staged feature tensors. Fires no counters — they already fired
    /// at build time.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the block's destination list
    /// does not match what the plan was built from (a determinism
    /// violation).
    pub fn apply_layer(&self, i: usize, blk: &TBlock) {
        let layer = &self.layers[i];
        if let Some(d) = &layer.dedup {
            op::dedup_apply(blk, d.nodes.clone(), d.times.clone(), d.inverse.clone());
        }
        blk.set_neighborhood(layer.nbrs.clone());
        let (dst, src, edge) = layer.feats.clone();
        blk.install_feat_cache(dst, src, edge);
    }
}

/// Builds the prefetch plan for `batch` by replaying the model's
/// training-mode chain construction on the calling thread (the
/// pipelined trainer calls this from its sampler stage). The local
/// block chain is thrown away; only `Send` data survives in the plan.
pub fn build_plan(ctx: &TContext, batch: &TBatch, spec: &SamplingSpec) -> BatchPlan {
    let prep = crate::prof::scope("prep_batch");
    let head = batch.block(ctx);
    drop(prep);
    let mut tail = head.clone();
    let mut layers = Vec::with_capacity(spec.n_layers);
    for i in 0..spec.n_layers {
        if i > 0 {
            tail = tail.next_block();
        }
        let dedup = if spec.dedup {
            op::dedup_planned(&tail)
                .map(|(nodes, times, inverse)| DedupPlan { nodes, times, inverse })
        } else {
            None
        };
        let nbrs = {
            let _s = crate::prof::scope("sample");
            let csr = tail.graph().tcsr();
            tail.with_dst(|nodes, times| spec.sampler.sample(&csr, nodes, times))
        };
        tail.set_neighborhood(nbrs.clone());
        layers.push(LayerPlan {
            dedup,
            nbrs,
            feats: (None, None, None),
        });
    }
    if spec.preload_pinned {
        let _p = crate::prof::scope("preload");
        op::preload(ctx, &head, true);
        // Harvest the staged tensors preload installed into the local
        // chain; apply_layer re-installs them on the compute stage.
        let mut cur = Some(head);
        let mut i = 0;
        while let Some(blk) = cur {
            if i < layers.len() {
                layers[i].feats = blk.feat_caches();
            }
            cur = blk.next();
            i += 1;
        }
    }
    BatchPlan { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TContext;
    use std::sync::Arc;
    use tgl_graph::TemporalGraph;
    use tgl_sampler::SamplingStrategy;
    use tgl_tensor::Tensor;

    fn setup() -> (Arc<TemporalGraph>, TContext) {
        let g = Arc::new(TemporalGraph::from_edges(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (0, 2, 4.0),
                (1, 3, 5.0),
                (3, 4, 6.0),
            ],
        ));
        g.set_node_feats(Tensor::from_vec((0..12).map(|v| v as f32).collect(), [6, 2]));
        g.set_edge_feats(Tensor::from_vec((0..6).map(|v| v as f32).collect(), [6, 1]));
        let ctx = TContext::new(Arc::clone(&g));
        (g, ctx)
    }

    fn spec(dedup: bool, preload: bool) -> SamplingSpec {
        SamplingSpec {
            n_layers: 2,
            dedup,
            preload_pinned: preload,
            sampler: TemporalSampler::new(3, SamplingStrategy::Recent).with_seed(7),
        }
    }

    /// Sequential-style chain construction, as `Tgat::embeddings` does
    /// it in training mode.
    fn build_sequential(ctx: &TContext, batch: &TBatch, spec: &SamplingSpec) -> TBlock {
        let head = batch.block(ctx);
        let mut tail = head.clone();
        for i in 0..spec.n_layers {
            if i > 0 {
                tail = tail.next_block();
            }
            if spec.dedup {
                op::dedup(&tail);
            }
            let csr = tail.graph().tcsr();
            let nbrs = tail.with_dst(|nodes, times| spec.sampler.sample(&csr, nodes, times));
            tail.set_neighborhood(nbrs);
        }
        if spec.preload_pinned {
            op::preload(ctx, &head, true);
        }
        head
    }

    /// Plan-style: build on one "thread", apply to a fresh chain.
    fn build_via_plan(ctx: &TContext, batch: &TBatch, spec: &SamplingSpec) -> TBlock {
        let plan = build_plan(ctx, batch, spec);
        let head = batch.block(ctx);
        let mut tail = head.clone();
        for i in 0..spec.n_layers {
            if i > 0 {
                tail = tail.next_block();
            }
            plan.apply_layer(i, &tail);
        }
        head
    }

    fn assert_chains_identical(a: &TBlock, b: &TBlock) {
        let (mut ca, mut cb) = (Some(a.clone()), Some(b.clone()));
        while let (Some(x), Some(y)) = (&ca, &cb) {
            assert_eq!(x.dst_nodes(), y.dst_nodes());
            assert_eq!(x.dst_times(), y.dst_times());
            assert_eq!(x.src_nodes(), y.src_nodes());
            assert_eq!(x.src_times(), y.src_times());
            assert_eq!(x.eids(), y.eids());
            assert_eq!(x.dst_index(), y.dst_index());
            assert_eq!(x.num_hooks(), y.num_hooks());
            let (nx, ny) = (x.next(), y.next());
            ca = nx;
            cb = ny;
        }
        assert!(ca.is_none() && cb.is_none(), "chain lengths differ");
    }

    #[test]
    fn plan_rebuild_matches_sequential_chain() {
        for (dedup, preload) in [(false, false), (true, false), (true, true)] {
            let (g, ctx) = setup();
            let mut batch = TBatch::new(Arc::clone(&g), 2..6);
            batch.set_negatives(vec![4, 5, 4, 5]);
            let s = spec(dedup, preload);
            let seq = build_sequential(&ctx, &batch, &s);
            let via = build_via_plan(&ctx, &batch, &s);
            assert_chains_identical(&seq, &via);
        }
    }

    #[test]
    fn staged_features_match_lazy_loads() {
        let (g, ctx) = setup();
        let mut batch = TBatch::new(Arc::clone(&g), 2..6);
        batch.set_negatives(vec![4, 5, 4, 5]);
        let s = spec(true, true);
        let seq = build_sequential(&ctx, &batch, &s);
        let via = build_via_plan(&ctx, &batch, &s);
        let (seq_tail, via_tail) = (seq.tail(), via.tail());
        assert_eq!(seq_tail.dstfeat().to_vec(), via_tail.dstfeat().to_vec());
        assert_eq!(seq_tail.srcfeat().to_vec(), via_tail.srcfeat().to_vec());
        assert_eq!(seq.efeat().to_vec(), via.efeat().to_vec());
    }

    #[test]
    fn plan_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<BatchPlan>();
        assert_send::<SamplingSpec>();
    }

    #[test]
    fn apply_is_counter_silent() {
        let (g, ctx) = setup();
        let mut batch = TBatch::new(Arc::clone(&g), 0..4);
        batch.set_negatives(vec![4, 5, 4, 5]);
        let s = spec(true, false);
        let plan = build_plan(&ctx, &batch, &s);
        let before = tgl_obs::metrics::snapshot();
        let head = batch.block(&ctx);
        let mut tail = head.clone();
        for i in 0..s.n_layers {
            if i > 0 {
                tail = tail.next_block();
            }
            plan.apply_layer(i, &tail);
        }
        let after = tgl_obs::metrics::snapshot();
        for ((name, a), (_, b)) in before.iter().zip(&after) {
            if name.starts_with("dedup.") || name.starts_with("sampler.") {
                assert_eq!(a, b, "apply_layer moved counter {name}");
            }
        }
    }
}
