//! The `TBlock` abstraction — TGLite's centerpiece (paper §3.2).
//!
//! A TBlock captures the 1-hop message-flow dependencies between target
//! destination `(node, time)` pairs and their temporally sampled
//! neighbors. Three properties distinguish it from DGL-style MFGs:
//!
//! 1. **Doubly-linked chain**: blocks link to predecessor/successor
//!    blocks, explicitly representing multi-hop aggregation so that
//!    multi-block operators ([`crate::op::aggregate`],
//!    [`crate::op::propagate`]) can walk the chain and handle
//!    inter-layer bookkeeping.
//! 2. **Optional neighborhood**: a block starts with only destination
//!    pairs; optimizations like dedup/cache manipulate the destinations
//!    *before* sampling fills in the sources, shrinking downstream
//!    subgraphs.
//! 3. **Hooks**: operators register post-processing callbacks (e.g.
//!    dedup inversion, cache merge) that the runtime invokes
//!    automatically after the block's computation, preserving output
//!    semantics without user bookkeeping.

use std::cell::{Ref, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};
use std::sync::Arc;

use tgl_device::Device;
use tgl_graph::{NodeId, TemporalGraph, Time};
use tgl_sampler::NeighborSample;
use tgl_tensor::Tensor;

use crate::TContext;

/// A named post-processing hook: receives the block's computed output
/// rows and returns the transformed rows.
pub struct BlockHook {
    name: String,
    func: Box<dyn FnMut(Tensor) -> Tensor>,
}

impl BlockHook {
    /// Creates a hook.
    pub fn new(name: impl Into<String>, func: impl FnMut(Tensor) -> Tensor + 'static) -> BlockHook {
        BlockHook {
            name: name.into(),
            func: Box::new(func),
        }
    }

    /// The hook's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for BlockHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockHook({})", self.name)
    }
}

pub(crate) struct BlockInner {
    pub(crate) graph: Arc<TemporalGraph>,
    pub(crate) device: Device,
    pub(crate) layer: usize,
    pub(crate) dst_nodes: Vec<NodeId>,
    pub(crate) dst_times: Vec<Time>,
    pub(crate) nbrs: Option<NeighborSample>,
    dstdata: HashMap<String, Tensor>,
    srcdata: HashMap<String, Tensor>,
    edata: HashMap<String, Tensor>,
    hooks: Vec<BlockHook>,
    next: Option<TBlock>,
    prev: Weak<RefCell<BlockInner>>,
    dst_feat_cache: Option<Tensor>,
    src_feat_cache: Option<Tensor>,
    edge_feat_cache: Option<Tensor>,
}

/// A temporal block. Cheap to clone (shared handle).
///
/// Blocks are single-threaded by design (model forward passes run on
/// one thread); the parallel sampler works on plain arrays before
/// attaching results to a block.
#[derive(Clone)]
pub struct TBlock {
    pub(crate) inner: Rc<RefCell<BlockInner>>,
}

impl TBlock {
    /// Creates a standalone block for the given destination
    /// `(node, time)` pairs at `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` and `times` differ in length.
    pub fn new(ctx: &TContext, layer: usize, nodes: Vec<NodeId>, times: Vec<Time>) -> TBlock {
        assert_eq!(nodes.len(), times.len(), "dst nodes/times length mismatch");
        TBlock {
            inner: Rc::new(RefCell::new(BlockInner {
                graph: Arc::clone(ctx.graph()),
                device: ctx.device(),
                layer,
                dst_nodes: nodes,
                dst_times: times,
                nbrs: None,
                dstdata: HashMap::new(),
                srcdata: HashMap::new(),
                edata: HashMap::new(),
                hooks: Vec::new(),
                next: None,
                prev: Weak::new(),
                dst_feat_cache: None,
                src_feat_cache: None,
                edge_feat_cache: None,
            })),
        }
    }

    // ---------------------------------------------------------------
    // Destination side
    // ---------------------------------------------------------------

    /// Number of destination pairs.
    pub fn num_dst(&self) -> usize {
        self.inner.borrow().dst_nodes.len()
    }

    /// The layer index this block was created for (head = 0).
    pub fn layer(&self) -> usize {
        self.inner.borrow().layer
    }

    /// Destination node ids (cloned).
    pub fn dst_nodes(&self) -> Vec<NodeId> {
        self.inner.borrow().dst_nodes.clone()
    }

    /// Destination timestamps (cloned).
    pub fn dst_times(&self) -> Vec<Time> {
        self.inner.borrow().dst_times.clone()
    }

    /// Runs `f` over the destination arrays without cloning.
    pub fn with_dst<R>(&self, f: impl FnOnce(&[NodeId], &[Time]) -> R) -> R {
        let inner = self.inner.borrow();
        f(&inner.dst_nodes, &inner.dst_times)
    }

    /// Replaces the destination pairs (used by `dedup`/`cache`, which
    /// must run before sampling).
    ///
    /// # Panics
    ///
    /// Panics if the neighborhood was already sampled, or on length
    /// mismatch.
    pub fn replace_dst(&self, nodes: Vec<NodeId>, times: Vec<Time>) {
        assert_eq!(nodes.len(), times.len(), "dst nodes/times length mismatch");
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.nbrs.is_none(),
            "cannot replace destinations after sampling; apply dst-filtering \
             operators (dedup/cache) before TSampler::sample"
        );
        inner.dst_nodes = nodes;
        inner.dst_times = times;
        inner.dst_feat_cache = None;
    }

    // ---------------------------------------------------------------
    // Neighborhood (source) side
    // ---------------------------------------------------------------

    /// Whether the neighborhood has been sampled/attached.
    pub fn has_nbrs(&self) -> bool {
        self.inner.borrow().nbrs.is_some()
    }

    /// Attaches a sampled neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if any `dst_index` is out of range for this block's
    /// destinations.
    pub fn set_neighborhood(&self, nbrs: NeighborSample) {
        let mut inner = self.inner.borrow_mut();
        let n = inner.dst_nodes.len();
        assert!(
            nbrs.dst_index.iter().all(|&d| d < n),
            "neighborhood dst_index out of range"
        );
        inner.nbrs = Some(nbrs);
        inner.src_feat_cache = None;
        inner.edge_feat_cache = None;
    }

    /// Number of sampled edges (0 before sampling).
    pub fn num_edges(&self) -> usize {
        self.inner.borrow().nbrs.as_ref().map_or(0, |n| n.len())
    }

    /// Per-edge destination position — the segment ids for segmented
    /// operators.
    pub fn dst_index(&self) -> Vec<usize> {
        self.inner
            .borrow()
            .nbrs
            .as_ref()
            .map_or_else(Vec::new, |n| n.dst_index.clone())
    }

    /// Sampled neighbor node per edge.
    pub fn src_nodes(&self) -> Vec<NodeId> {
        self.inner
            .borrow()
            .nbrs
            .as_ref()
            .map_or_else(Vec::new, |n| n.src_nodes.clone())
    }

    /// Timestamp of each sampled edge.
    pub fn src_times(&self) -> Vec<Time> {
        self.inner
            .borrow()
            .nbrs
            .as_ref()
            .map_or_else(Vec::new, |n| n.src_times.clone())
    }

    /// Edge id of each sampled edge.
    pub fn eids(&self) -> Vec<tgl_graph::EdgeId> {
        self.inner
            .borrow()
            .nbrs
            .as_ref()
            .map_or_else(Vec::new, |n| n.eids.clone())
    }

    /// Runs `f` over the attached neighborhood without cloning.
    ///
    /// # Panics
    ///
    /// Panics if no neighborhood is attached.
    pub fn with_nbrs<R>(&self, f: impl FnOnce(&NeighborSample) -> R) -> R {
        let inner = self.inner.borrow();
        f(inner
            .nbrs
            .as_ref()
            .expect("block has no sampled neighborhood"))
    }

    /// Per-edge time delta `t_dst − t_edge` as `f32` (the input to the
    /// time encoder for neighbor edges).
    pub fn delta_times(&self) -> Vec<f32> {
        let inner = self.inner.borrow();
        match &inner.nbrs {
            Some(n) => n
                .dst_index
                .iter()
                .zip(&n.src_times)
                .map(|(&d, &st)| (inner.dst_times[d] - st) as f32)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Unique sampled source nodes (first-appearance order) plus the
    /// per-edge index into that unique list.
    pub fn uniq_src(&self) -> (Vec<NodeId>, Vec<usize>) {
        let inner = self.inner.borrow();
        let Some(n) = &inner.nbrs else {
            return (Vec::new(), Vec::new());
        };
        let mut uniq = Vec::new();
        let mut pos: HashMap<NodeId, usize> = HashMap::new();
        let mut index = Vec::with_capacity(n.src_nodes.len());
        for &s in &n.src_nodes {
            let p = *pos.entry(s).or_insert_with(|| {
                uniq.push(s);
                uniq.len() - 1
            });
            index.push(p);
        }
        (uniq, index)
    }

    // ---------------------------------------------------------------
    // Chain links
    // ---------------------------------------------------------------

    /// Creates (or returns the existing) successor block whose
    /// destinations are this block's destinations followed by its
    /// sampled neighbor `(node, edge-time)` pairs.
    ///
    /// This layout is what lets [`crate::op::aggregate`] split the
    /// successor's output into this block's `dstdata` (first
    /// `num_dst()` rows) and `srcdata` (remaining `num_edges()` rows).
    ///
    /// # Panics
    ///
    /// Panics if this block has no sampled neighborhood yet.
    pub fn next_block(&self) -> TBlock {
        if let Some(next) = self.inner.borrow().next.clone() {
            return next;
        }
        let (graph, device, layer, nodes, times) = {
            let inner = self.inner.borrow();
            let n = inner
                .nbrs
                .as_ref()
                .expect("sample this block before creating its successor");
            let mut nodes = inner.dst_nodes.clone();
            nodes.extend_from_slice(&n.src_nodes);
            let mut times = inner.dst_times.clone();
            times.extend_from_slice(&n.src_times);
            (
                Arc::clone(&inner.graph),
                inner.device,
                inner.layer + 1,
                nodes,
                times,
            )
        };
        let next = TBlock {
            inner: Rc::new(RefCell::new(BlockInner {
                graph,
                device,
                layer,
                dst_nodes: nodes,
                dst_times: times,
                nbrs: None,
                dstdata: HashMap::new(),
                srcdata: HashMap::new(),
                edata: HashMap::new(),
                hooks: Vec::new(),
                next: None,
                prev: Rc::downgrade(&self.inner),
                dst_feat_cache: None,
                src_feat_cache: None,
                edge_feat_cache: None,
            })),
        };
        self.inner.borrow_mut().next = Some(next.clone());
        next
    }

    /// The successor block, if one was created.
    pub fn next(&self) -> Option<TBlock> {
        self.inner.borrow().next.clone()
    }

    /// The predecessor block, if this block was created via
    /// [`TBlock::next_block`] and the predecessor is still alive.
    pub fn prev(&self) -> Option<TBlock> {
        self.inner.borrow().prev.upgrade().map(|inner| TBlock { inner })
    }

    /// Walks `next` links to the deepest block in the chain.
    pub fn tail(&self) -> TBlock {
        let mut cur = self.clone();
        while let Some(next) = cur.next() {
            cur = next;
        }
        cur
    }

    /// Number of blocks from this one to the tail (inclusive).
    pub fn chain_len(&self) -> usize {
        let mut n = 1;
        let mut cur = self.clone();
        while let Some(next) = cur.next() {
            n += 1;
            cur = next;
        }
        n
    }

    // ---------------------------------------------------------------
    // Feature access (cached; paper: "stored in the block's cached
    // area so we avoid fetching them a second time")
    // ---------------------------------------------------------------

    /// Node features of the destination pairs, on the compute device.
    pub fn dstfeat(&self) -> Tensor {
        if let Some(t) = self.inner.borrow().dst_feat_cache.clone() {
            return t;
        }
        let (gathered, device) = {
            let inner = self.inner.borrow();
            (inner.graph.node_feat_rows(&inner.dst_nodes), inner.device)
        };
        let moved = gathered.to(device);
        self.inner.borrow_mut().dst_feat_cache = Some(moved.clone());
        moved
    }

    /// Node features of the sampled neighbors, on the compute device.
    pub fn srcfeat(&self) -> Tensor {
        if let Some(t) = self.inner.borrow().src_feat_cache.clone() {
            return t;
        }
        let (gathered, device) = {
            let inner = self.inner.borrow();
            let nodes = inner.nbrs.as_ref().map_or(&[][..], |n| &n.src_nodes);
            (inner.graph.node_feat_rows(nodes), inner.device)
        };
        let moved = gathered.to(device);
        self.inner.borrow_mut().src_feat_cache = Some(moved.clone());
        moved
    }

    /// Edge features of the sampled edges, on the compute device.
    pub fn efeat(&self) -> Tensor {
        if let Some(t) = self.inner.borrow().edge_feat_cache.clone() {
            return t;
        }
        let (gathered, device) = {
            let inner = self.inner.borrow();
            let eids = inner.nbrs.as_ref().map_or(&[][..], |n| &n.eids);
            (inner.graph.edge_feat_rows(eids), inner.device)
        };
        let moved = gathered.to(device);
        self.inner.borrow_mut().edge_feat_cache = Some(moved.clone());
        moved
    }

    /// Installs pre-transferred feature tensors (used by
    /// [`crate::op::preload`]).
    pub(crate) fn install_feat_cache(
        &self,
        dst: Option<Tensor>,
        src: Option<Tensor>,
        edge: Option<Tensor>,
    ) {
        let mut inner = self.inner.borrow_mut();
        if dst.is_some() {
            inner.dst_feat_cache = dst;
        }
        if src.is_some() {
            inner.src_feat_cache = src;
        }
        if edge.is_some() {
            inner.edge_feat_cache = edge;
        }
    }

    /// Snapshot of the installed `(dst, src, edge)` feature caches.
    /// Plan staging ([`crate::plan::build_plan`]) harvests these after
    /// running `op::preload` on a prefetch-local chain.
    pub(crate) fn feat_caches(&self) -> (Option<Tensor>, Option<Tensor>, Option<Tensor>) {
        let inner = self.inner.borrow();
        (
            inner.dst_feat_cache.clone(),
            inner.src_feat_cache.clone(),
            inner.edge_feat_cache.clone(),
        )
    }

    /// Drops cached feature tensors; they reload gracefully on next
    /// access.
    pub fn flush_cache(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.dst_feat_cache = None;
        inner.src_feat_cache = None;
        inner.edge_feat_cache = None;
    }

    /// Memory rows for the destination nodes, on the compute device.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no attached memory.
    pub fn mem_data(&self) -> Tensor {
        let inner = self.inner.borrow();
        let mem = inner.graph.memory();
        mem.rows(&inner.dst_nodes).to(inner.device)
    }

    /// Latest mailbox rows + delivery times for the destination nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no attached mailbox.
    pub fn mail(&self) -> (Tensor, Vec<Time>) {
        let inner = self.inner.borrow();
        let mb = inner.graph.mailbox();
        let (mail, times) = mb.latest(&inner.dst_nodes);
        (mail.to(inner.device), times)
    }

    /// The graph this block was created from.
    pub fn graph(&self) -> Arc<TemporalGraph> {
        Arc::clone(&self.inner.borrow().graph)
    }

    /// The compute device of this block.
    pub fn device(&self) -> Device {
        self.inner.borrow().device
    }

    // ---------------------------------------------------------------
    // Named tensor data
    // ---------------------------------------------------------------

    /// Attaches a named tensor to the destination side.
    pub fn set_dstdata(&self, key: &str, t: Tensor) {
        self.inner.borrow_mut().dstdata.insert(key.to_string(), t);
    }

    /// Retrieves named destination data.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent.
    pub fn dstdata(&self, key: &str) -> Tensor {
        self.inner
            .borrow()
            .dstdata
            .get(key)
            .unwrap_or_else(|| panic!("no dstdata[{key:?}] on this block"))
            .clone()
    }

    /// Whether destination data exists for `key`.
    pub fn has_dstdata(&self, key: &str) -> bool {
        self.inner.borrow().dstdata.contains_key(key)
    }

    /// Attaches a named tensor to the source (neighbor-edge) side.
    pub fn set_srcdata(&self, key: &str, t: Tensor) {
        self.inner.borrow_mut().srcdata.insert(key.to_string(), t);
    }

    /// Retrieves named source data.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent.
    pub fn srcdata(&self, key: &str) -> Tensor {
        self.inner
            .borrow()
            .srcdata
            .get(key)
            .unwrap_or_else(|| panic!("no srcdata[{key:?}] on this block"))
            .clone()
    }

    /// Whether source data exists for `key`.
    pub fn has_srcdata(&self, key: &str) -> bool {
        self.inner.borrow().srcdata.contains_key(key)
    }

    /// Attaches a named per-edge tensor.
    pub fn set_edata(&self, key: &str, t: Tensor) {
        self.inner.borrow_mut().edata.insert(key.to_string(), t);
    }

    /// Retrieves named per-edge data.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent.
    pub fn edata(&self, key: &str) -> Tensor {
        self.inner
            .borrow()
            .edata
            .get(key)
            .unwrap_or_else(|| panic!("no edata[{key:?}] on this block"))
            .clone()
    }

    // ---------------------------------------------------------------
    // Hooks
    // ---------------------------------------------------------------

    /// Registers a post-processing hook on this block.
    ///
    /// Hooks run (via [`TBlock::run_hooks`], which the `aggregate`
    /// operator calls automatically) in **reverse registration order**:
    /// the operator applied last filtered the destinations last, so its
    /// inversion must run first to restore the intermediate layout.
    pub fn register_hook(&self, hook: BlockHook) {
        self.inner.borrow_mut().hooks.push(hook);
    }

    /// Number of pending hooks.
    pub fn num_hooks(&self) -> usize {
        self.inner.borrow().hooks.len()
    }

    /// Consumes and runs all registered hooks on `output` (reverse
    /// registration order), returning the transformed tensor.
    pub fn run_hooks(&self, output: Tensor) -> Tensor {
        let mut hooks: Vec<BlockHook> = {
            let mut inner = self.inner.borrow_mut();
            std::mem::take(&mut inner.hooks)
        };
        let mut out = output;
        for hook in hooks.iter_mut().rev() {
            out = (hook.func)(out);
        }
        out
    }

    /// Immutable access to the destination node array (no clone).
    pub fn dst_nodes_ref(&self) -> Ref<'_, [NodeId]> {
        Ref::map(self.inner.borrow(), |i| i.dst_nodes.as_slice())
    }
}

impl std::fmt::Debug for TBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "TBlock(layer={}, dst={}, edges={}, hooks={}, linked={})",
            inner.layer,
            inner.dst_nodes.len(),
            inner.nbrs.as_ref().map_or(0, |n| n.len()),
            inner.hooks.len(),
            inner.next.is_some() || inner.prev.upgrade().is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TContext;

    fn setup() -> (Arc<TemporalGraph>, TContext) {
        let g = Arc::new(TemporalGraph::from_edges(
            4,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)],
        ));
        g.set_node_feats(Tensor::from_vec(
            (0..8).map(|v| v as f32).collect(),
            [4, 2],
        ));
        g.set_edge_feats(Tensor::from_vec(vec![10.0, 20.0, 30.0], [3, 1]));
        let ctx = TContext::new(Arc::clone(&g));
        (g, ctx)
    }

    fn sample(blk: &TBlock) {
        let nbrs = tgl_sampler::TemporalSampler::new(2, tgl_sampler::SamplingStrategy::Recent)
            .with_threads(1)
            .sample(&blk.graph().tcsr(), &blk.dst_nodes(), &blk.dst_times());
        blk.set_neighborhood(nbrs);
    }

    #[test]
    fn new_block_has_no_neighborhood() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![1, 2], vec![5.0, 5.0]);
        assert_eq!(blk.num_dst(), 2);
        assert!(!blk.has_nbrs());
        assert_eq!(blk.num_edges(), 0);
        assert_eq!(blk.layer(), 0);
        assert!(blk.prev().is_none());
        assert!(blk.next().is_none());
    }

    #[test]
    fn replace_dst_before_sampling_ok_after_not() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![1, 1, 2], vec![5.0, 5.0, 5.0]);
        blk.replace_dst(vec![1, 2], vec![5.0, 5.0]);
        assert_eq!(blk.num_dst(), 2);
        sample(&blk);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            blk.replace_dst(vec![1], vec![5.0]);
        }));
        assert!(r.is_err(), "replace after sampling must panic");
    }

    #[test]
    fn delta_times_are_dst_minus_edge() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![2], vec![10.0]);
        sample(&blk);
        // node 2 has edges at t=2 (to 1) and t=3 (to 3)
        assert_eq!(blk.delta_times(), vec![8.0, 7.0]);
    }

    #[test]
    fn next_block_stacks_dst_then_src() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![2], vec![10.0]);
        sample(&blk);
        let next = blk.next_block();
        assert_eq!(next.layer(), 1);
        assert_eq!(next.num_dst(), 1 + blk.num_edges());
        assert_eq!(next.dst_nodes()[0], 2);
        assert!(next.prev().is_some());
        assert!(blk.next().is_some());
        // Second call returns the same block.
        let again = blk.next_block();
        assert!(Rc::ptr_eq(&again.inner, &next.inner));
    }

    #[test]
    fn tail_and_chain_len() {
        let (_g, ctx) = setup();
        let head = TBlock::new(&ctx, 0, vec![2], vec![10.0]);
        sample(&head);
        let mid = head.next_block();
        sample(&mid);
        let tail = mid.next_block();
        assert_eq!(head.chain_len(), 3);
        assert!(Rc::ptr_eq(&head.tail().inner, &tail.inner));
    }

    #[test]
    fn feature_access_and_caching() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![3, 0], vec![10.0, 10.0]);
        let f = blk.dstfeat();
        assert_eq!(f.to_vec(), vec![6.0, 7.0, 0.0, 1.0]);
        // Cached: same storage handle on second access.
        let f2 = blk.dstfeat();
        assert_eq!(f2.id(), f.id());
        blk.flush_cache();
        let f3 = blk.dstfeat();
        assert_ne!(f3.id(), f.id());
        assert_eq!(f3.to_vec(), f.to_vec());
    }

    #[test]
    fn src_and_edge_features_follow_sampling() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![2], vec![10.0]);
        sample(&blk);
        assert_eq!(blk.src_nodes(), vec![1, 3]);
        assert_eq!(blk.srcfeat().to_vec(), vec![2.0, 3.0, 6.0, 7.0]);
        assert_eq!(blk.efeat().to_vec(), vec![20.0, 30.0]);
    }

    #[test]
    fn named_data_roundtrip_and_panics() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![0], vec![1.0]);
        blk.set_dstdata("h", Tensor::ones([1, 2]));
        assert!(blk.has_dstdata("h"));
        assert_eq!(blk.dstdata("h").to_vec(), vec![1.0, 1.0]);
        assert!(!blk.has_srcdata("h"));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| blk.srcdata("h")));
        assert!(r.is_err());
    }

    #[test]
    fn hooks_run_in_reverse_order_and_drain() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![0], vec![1.0]);
        // first hook doubles, second adds 1; reverse order => (x+1)*2
        blk.register_hook(BlockHook::new("double", |t: Tensor| t.mul_scalar(2.0)));
        blk.register_hook(BlockHook::new("inc", |t: Tensor| t.add_scalar(1.0)));
        assert_eq!(blk.num_hooks(), 2);
        let out = blk.run_hooks(Tensor::from_vec(vec![3.0], [1]));
        assert_eq!(out.to_vec(), vec![8.0]);
        assert_eq!(blk.num_hooks(), 0, "hooks are consumed");
        // Running again is a no-op.
        let out2 = blk.run_hooks(Tensor::from_vec(vec![3.0], [1]));
        assert_eq!(out2.to_vec(), vec![3.0]);
    }

    #[test]
    fn uniq_src_mapping() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![1, 2], vec![10.0, 10.0]);
        sample(&blk);
        let (uniq, index) = blk.uniq_src();
        // Every edge maps back to its src node through the unique list.
        let src = blk.src_nodes();
        for (e, &u) in index.iter().enumerate() {
            assert_eq!(uniq[u], src[e]);
        }
        let mut sorted = uniq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), uniq.len(), "uniq_src has duplicates");
    }

    #[test]
    fn mem_and_mail_access() {
        let (g, ctx) = setup();
        g.attach_memory(2, Device::Host);
        g.attach_mailbox(1, 3, Device::Host);
        g.memory()
            .store(&[1], &Tensor::from_vec(vec![5.0, 6.0], [1, 2]), &[2.0]);
        g.mailbox()
            .store(&[1], &Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]), &[2.5]);
        let blk = TBlock::new(&ctx, 0, vec![1, 0], vec![9.0, 9.0]);
        assert_eq!(blk.mem_data().to_vec(), vec![5.0, 6.0, 0.0, 0.0]);
        let (mail, times) = blk.mail();
        assert_eq!(mail.to_vec(), vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        assert_eq!(times, vec![2.5, 0.0]);
    }

    #[test]
    fn debug_format() {
        let (_g, ctx) = setup();
        let blk = TBlock::new(&ctx, 0, vec![0], vec![1.0]);
        assert!(format!("{blk:?}").contains("TBlock(layer=0, dst=1"));
    }
}
