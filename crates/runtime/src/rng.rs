//! Seeded pseudo-random number generation.
//!
//! In-tree replacement for the `rand` crate surface the workspace uses:
//! a [`SplitMix64`] stream for seeding and cheap per-item streams, and
//! xoshiro256** (as [`StdRng`]) for general use. Both are tiny, fast,
//! and fully deterministic per seed across platforms; neither is
//! cryptographic — they drive synthetic data, parameter init, dropout
//! masks, and uniform neighbor sampling.
//!
//! The API mirrors `rand` closely enough that call sites read the same:
//! `StdRng::seed_from_u64(seed)`, `rng.gen::<f32>()`,
//! `rng.gen_range(lo..hi)`, `rng.gen_bool(p)`.

/// SplitMix64 (Steele, Lea, Flood 2014): one 64-bit state, one output
/// per step. Used to expand seeds and as a cheap per-item stream where
/// creating a generator per element must be O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018): 256-bit state, excellent
/// statistical quality, the workspace's general-purpose generator.
///
/// Named `StdRng` to match the call-site idiom of the `rand` crate it
/// replaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn next_raw(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction from a 64-bit seed (the only seeding scheme the
/// workspace uses). The seed is expanded through SplitMix64, the
/// recommended initialization for xoshiro state.
pub trait SeedableRng: Sized {
    /// Builds a deterministically seeded generator.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = SplitMix64::new(seed);
        StdRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }
}

/// Uniform generation of a whole type's "standard" distribution:
/// full range for integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open (or inclusive, for integers) range a value can be drawn
/// from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is fair.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = <f32 as Standard>::sample(rng);
        // Clamp guards the (measure-zero) rounding case u*(hi-lo)+lo == hi.
        (self.start + u * (self.end - self.start)).min(self.end - f32::EPSILON * self.end.abs())
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = <f64 as Standard>::sample(rng);
        (self.start + u * (self.end - self.start)).min(self.end - f64::EPSILON * self.end.abs())
    }
}

/// The generator interface used across the workspace.
///
/// `next_u64` is the one required method; everything else derives from
/// it, matching the `rand::Rng` call-site surface.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a standard-distributed value (`[0, 1)` for floats, full
    /// range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the published
        // SplitMix64 algorithm.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Deterministic across calls.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x), "{x}");
            let y: f64 = r.gen_range(0.0f64..3.5);
            assert!((0.0..3.5).contains(&y), "{y}");
            let u: f32 = r.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(5usize..15);
            assert!((5..15).contains(&v));
            seen[v - 5] = true;
            let w = r.gen_range(0u32..=3);
            assert!(w <= 3);
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 8];
        for _ in 0..8_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        assert!(buckets.iter().all(|&b| (800..1200).contains(&b)), "{buckets:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5usize..5);
    }
}
