//! The workspace's parallel compute runtime.
//!
//! Everything in this crate is `std`-only — no external dependencies —
//! so the workspace builds with no network access. Three pieces:
//!
//! * [`pool`]: a persistent worker-thread pool with a chunked
//!   work-distribution API ([`parallel_for`], [`parallel_for_chunks`])
//!   that kernels use to borrow slices scope-style. Thread count comes
//!   from `TGL_THREADS` (or `available_parallelism`), adjustable at
//!   runtime with [`set_threads`]. Work below a per-call element
//!   threshold runs inline on the caller, so small tensors never pay
//!   synchronization costs.
//! * [`rng`]: SplitMix64 / xoshiro256** pseudo-random generators with a
//!   `rand`-like surface ([`rng::StdRng`], [`rng::Rng`],
//!   [`rng::SeedableRng`]) used everywhere the workspace needs seeded
//!   randomness.
//! * [`sync`]: thin wrappers over `std::sync` locks with a
//!   panic-poisoning-free API (`lock()` / `read()` / `write()` return
//!   guards directly).
//! * [`channel`]: bounded MPSC channels with blocking send/recv,
//!   backpressure, and a close/drain protocol — the stage connectors
//!   for the pipelined trainer.
//!
//! # Determinism contract
//!
//! Parallel kernels built on this pool partition *output* elements into
//! chunks whose computation does not depend on which thread runs them,
//! so results are bitwise identical for any thread count — including 1.
//! Reductions that accumulate across a whole buffer use
//! [`parallel_for_chunks`] with a chunk size that is a function of the
//! input only (never of the thread count) and combine per-chunk partials
//! in chunk order, so their rounding is also thread-count invariant.

pub mod channel;
pub mod pool;
pub mod rng;
pub mod sync;

pub use channel::{bounded, Receiver, Sender};
pub use pool::{
    current_threads, parallel_for, parallel_for_chunks, set_threads, UnsafeSlice,
};
pub use rng::{Rng, SeedableRng, SplitMix64, StdRng};
pub use sync::{Mutex, RwLock};
