//! Thin wrappers over `std::sync` locks.
//!
//! In-tree replacement for the `parking_lot` surface the workspace
//! uses: `lock()` / `read()` / `write()` return guards directly instead
//! of `Result`s. A poisoned lock (a thread panicked while holding it)
//! is entered anyway — every protected value in this workspace is
//! plain data that stays structurally valid across a panic, and the
//! panic itself already propagates through the pool or test harness.

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex. Usable in `static` initializers.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read()` / `write()` never return `Result`s.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock. Usable in `static` initializers.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_const_init() {
        static COUNTER: Mutex<i32> = Mutex::new(0);
        *COUNTER.lock() += 5;
        assert_eq!(*COUNTER.lock(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let lock = RwLock::new(vec![1, 2, 3]);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        lock.write().push(4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn poisoned_mutex_is_still_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
        assert_eq!(*m.try_lock().expect("free lock"), 7);
    }

    #[test]
    fn poisoned_rwlock_is_still_usable() {
        let l = Arc::new(RwLock::new(1));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison it");
        })
        .join();
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
