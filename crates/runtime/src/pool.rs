//! Persistent worker-thread pool with chunked work distribution.
//!
//! The pool is a process-global singleton. A parallel region
//! ([`parallel_for`] / [`parallel_for_chunks`]) splits `0..total` into
//! contiguous chunks, publishes a type-erased pointer to the caller's
//! closure to the workers, and then participates in draining the chunk
//! queue itself before blocking until every chunk has finished. Because
//! the calling frame outlives the region, the closure may borrow local
//! slices — a scope-style API without per-call thread spawns.
//!
//! Chunks are claimed from a shared atomic counter, so distribution is
//! dynamic, but each chunk's *computation* depends only on its index
//! range — never on which thread runs it — which is what makes kernels
//! built on this pool thread-count invariant.
//!
//! Worker count defaults to `TGL_THREADS` (falling back to
//! `available_parallelism`) and can be changed at runtime with
//! [`set_threads`]; extra workers are spawned on demand and idle ones
//! park on a condvar. Nested parallel regions (a kernel invoked from
//! inside a worker) run inline on the worker, so composition cannot
//! deadlock.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Thread count requested by the environment: `TGL_THREADS` when set to
/// a positive integer, otherwise the machine's available parallelism.
fn configured_threads() -> usize {
    std::env::var("TGL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The current parallelism setting (see [`set_threads`]).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// The effective thread count parallel regions fan out to.
///
/// Initialized from `TGL_THREADS` / `available_parallelism` on first
/// use; 1 means fully sequential.
pub fn current_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = configured_threads();
            // Racing initializers compute the same value.
            THREADS.store(n, Ordering::Relaxed);
            tgl_obs::gauge!("pool.threads").set(n as f64);
            n
        }
        n => n,
    }
}

/// Overrides the thread count for subsequent parallel regions
/// (clamped to at least 1). Missing workers are spawned on demand;
/// surplus workers stay parked. Used by the determinism suite and the
/// 1-vs-N benchmark sweeps; results do not depend on this setting.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    THREADS.store(n, Ordering::Relaxed);
    // Published as a gauge so live scrapes and the time-series store
    // can correlate latency shifts with parallelism changes.
    tgl_obs::gauge!("pool.threads").set(n as f64);
}

// ---------------------------------------------------------------------
// Job representation
// ---------------------------------------------------------------------

/// One parallel region, shared between the caller and its helpers.
///
/// `data`/`call` form a type-erased `&dyn Fn(Range<usize>)`; the caller
/// guarantees `data` stays valid until `pending` reaches zero (it blocks
/// in [`run_region`] until then).
struct JobCore {
    data: *const (),
    call: unsafe fn(*const (), Range<usize>),
    total: usize,
    chunk: usize,
    n_chunks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Chunks not yet completed; the region is done at zero.
    pending: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// First panic payload raised by any chunk, rethrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Dispatching thread's innermost open span id (0 when tracing is
    /// off): workers adopt it so their `pool.job` spans carry a
    /// cross-thread parent hint for critical-path analysis.
    parent_span: u64,
}

unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

unsafe fn call_erased<F: Fn(Range<usize>) + Sync>(data: *const (), r: Range<usize>) {
    (*(data as *const F))(r)
}

thread_local! {
    /// Per-thread busy-time counter, resolved once per thread so a
    /// drain pays one thread-local access instead of a registry lookup.
    static BUSY_NS: &'static tgl_obs::metrics::Counter =
        tgl_obs::metrics::counter_owned(format!("pool.busy_ns.t{}", tgl_obs::thread_id()));
}

/// Claims and executes chunks until the job's counter is exhausted.
fn drain_job(job: &JobCore) {
    let observing = tgl_obs::metrics::enabled()
        || tgl_obs::trace::enabled()
        || tgl_obs::flight::enabled();
    let started = observing.then(std::time::Instant::now);
    let _adopt = tgl_obs::trace::adopt_parent(job.parent_span);
    let mut executed: u64 = 0;
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_chunks {
            break;
        }
        executed += 1;
        let start = i * job.chunk;
        let end = (start + job.chunk).min(job.total);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (job.call)(job.data, start..end)
        }));
        if let Err(payload) = result {
            let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        if job.pending.fetch_sub(1, Ordering::Release) == 1 {
            // Last chunk: wake the caller. Notify under the lock so the
            // wakeup cannot be lost between its check and its wait.
            let _guard = job.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            job.done_cv.notify_all();
        }
    }
    // Record only threads that actually executed work: a helper that
    // lost every claim race produced no busy time and no span.
    if let (Some(started), true) = (started, executed > 0) {
        let busy = started.elapsed();
        tgl_obs::counter!("pool.chunks").add(executed);
        BUSY_NS.with(|c| c.add(busy.as_nanos() as u64));
        if tgl_obs::trace::enabled() {
            tgl_obs::trace::record("pool.job", started, busy);
        }
        if tgl_obs::flight::enabled() {
            tgl_obs::flight::record_span("pool.job", started, busy);
        }
    }
}

// ---------------------------------------------------------------------
// The pool singleton
// ---------------------------------------------------------------------

struct Pool {
    queue: Mutex<VecDeque<Arc<JobCore>>>,
    available: Condvar,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

thread_local! {
    /// Set while this thread is executing pool work; nested parallel
    /// regions check it and run inline instead of re-entering the pool.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker_loop() {
    let pool = pool();
    IN_POOL.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = pool
                    .available
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        drain_job(&job);
    }
}

/// Ensures at least `n` workers exist (idempotent, cheap when enough
/// are already running).
fn ensure_workers(n: usize) {
    let pool = pool();
    let mut spawned = pool.spawned.lock().unwrap_or_else(|e| e.into_inner());
    while *spawned < n {
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("tgl-worker-{id}"))
            .spawn(worker_loop)
            .expect("failed to spawn pool worker");
        *spawned += 1;
    }
}

/// Runs the erased closure over `0..total` in `chunk`-sized pieces with
/// up to `par` threads (including the caller), blocking until done.
fn run_region<F: Fn(Range<usize>) + Sync>(total: usize, chunk: usize, par: usize, f: &F) {
    let n_chunks = total.div_ceil(chunk);
    let helpers = (par - 1).min(n_chunks.saturating_sub(1));
    if helpers == 0 {
        // Keep the exact chunked iteration order so results match the
        // parallel path bit-for-bit.
        for i in 0..n_chunks {
            let start = i * chunk;
            f(start..(start + chunk).min(total));
        }
        return;
    }
    ensure_workers(helpers);
    let job = Arc::new(JobCore {
        data: f as *const F as *const (),
        call: call_erased::<F>,
        total,
        chunk,
        n_chunks,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(n_chunks),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
        parent_span: if tgl_obs::trace::enabled() {
            tgl_obs::trace::current_parent()
        } else {
            0
        },
    });
    {
        let pool = pool();
        let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..helpers {
            q.push_back(Arc::clone(&job));
        }
        drop(q);
        pool.available.notify_all();
    }
    // The caller participates instead of idling.
    let was_in_pool = IN_POOL.with(|flag| flag.replace(true));
    drain_job(&job);
    IN_POOL.with(|flag| flag.set(was_in_pool));
    // Wait for helpers still finishing their claimed chunks. The time
    // the caller spends blocked here is the pool's tail latency — the
    // cost of a straggler helper — distinct from `pool.busy_ns.*`
    // (work executed) and metered as its own histogram family.
    {
        let wait_timer = tgl_obs::histogram!("pool.wait_ns").timer();
        let mut guard = job.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        while job.pending.load(Ordering::Acquire) != 0 {
            guard = job
                .done_cv
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(wait_timer);
    }
    let payload = job
        .panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Runs `f` over contiguous sub-ranges covering `0..total`, in parallel
/// when the work is large enough.
///
/// `seq_threshold` is the sequential fast-path cutoff in work items:
/// when `total <= seq_threshold` (or one thread is configured, or the
/// caller is already inside a pool worker) the closure runs inline as a
/// single `f(0..total)` call, paying zero synchronization cost. Above
/// it, the range is split into contiguous chunks sized for the current
/// thread count.
///
/// `f` must produce results that depend only on the range it is given
/// (each output region written by exactly one range) — under that
/// contract, output is identical for every thread count.
pub fn parallel_for<F: Fn(Range<usize>) + Sync>(total: usize, seq_threshold: usize, f: F) {
    if total == 0 {
        return;
    }
    // Touch the wait-latency family so it is registered (and visible on
    // /metrics as an empty histogram) even on narrow hosts where every
    // region takes the sequential fast path and never blocks on
    // helpers. Cached per call site: one relaxed load in steady state.
    let _ = tgl_obs::histogram!("pool.wait_ns");
    let par = current_threads();
    if par <= 1 || total <= seq_threshold.max(1) || IN_POOL.with(|flag| flag.get()) {
        tgl_obs::counter!("pool.seq_fast_path").incr();
        f(0..total);
        return;
    }
    tgl_obs::counter!("pool.regions").incr();
    // Oversplit 4x for load balance; chunks stay big enough that the
    // per-chunk claim (one fetch_add) is noise.
    let chunk = total.div_ceil(par * 4).max(1);
    run_region(total, chunk, par, &f);
}

/// Runs `f(chunk_index, range)` over `0..total` in *fixed* `chunk`-sized
/// pieces, in parallel when possible — always applying the same
/// chunking, even when it runs sequentially.
///
/// This is the primitive for parallel reductions: accumulate a partial
/// per chunk index, then combine partials in chunk order. Because the
/// chunk boundaries are a function of `(total, chunk)` only, the
/// floating-point rounding of the combined result is identical for
/// every thread count.
pub fn parallel_for_chunks<F: Fn(usize, Range<usize>) + Sync>(
    total: usize,
    chunk: usize,
    f: F,
) {
    if total == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let par = current_threads();
    let wrapped = |r: Range<usize>| f(r.start / chunk, r);
    if par <= 1 || total <= chunk || IN_POOL.with(|flag| flag.get()) {
        tgl_obs::counter!("pool.seq_fast_path").incr();
        let n_chunks = total.div_ceil(chunk);
        for i in 0..n_chunks {
            let start = i * chunk;
            wrapped(start..(start + chunk).min(total));
        }
        return;
    }
    tgl_obs::counter!("pool.regions").incr();
    run_region(total, chunk, par, &wrapped);
}

/// A shareable pointer to a mutable slice for writing *disjoint*
/// regions from parallel chunks.
///
/// Safe Rust cannot hand `&mut` sub-slices of one buffer to a `Fn`
/// closure running on several threads; this wrapper carries the raw
/// parts and re-materializes sub-slices on demand. All methods are
/// `unsafe`: the caller must guarantee that concurrently materialized
/// regions never overlap (the natural property of output-partitioned
/// kernels).
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps `slice` for the duration of its borrow.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Total length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materializes `&mut self[start..start + len]`.
    ///
    /// # Safety
    ///
    /// The range must be in bounds and must not overlap any other
    /// region materialized while this one is alive.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// Materializes `&mut self[i]`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and not aliased by any other live region.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that touch the global thread setting.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let mut hits = vec![0u8; 10_000];
        let slice = UnsafeSlice::new(&mut hits);
        parallel_for(10_000, 64, |r| {
            for i in r {
                unsafe { *slice.get_mut(i) += 1 };
            }
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn sequential_fast_path_single_call() {
        let calls = AtomicUsize::new(0);
        parallel_for(100, 1000, |r| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(r, 0..100);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fixed_chunks_are_thread_count_invariant() {
        let _guard = serial();
        let run = |threads: usize| {
            let before = current_threads();
            set_threads(threads);
            let mut partials = vec![0.0f64; 100_000usize.div_ceil(1024)];
            let ps = UnsafeSlice::new(&mut partials);
            parallel_for_chunks(100_000, 1024, |ci, r| {
                let p = unsafe { ps.get_mut(ci) };
                for i in r {
                    *p += (i as f64).sqrt();
                }
            });
            set_threads(before);
            partials.iter().sum::<f64>()
        };
        let a = run(1);
        let b = run(4);
        let c = run(8);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(b.to_bits(), c.to_bits());
    }

    #[test]
    fn nested_regions_run_inline() {
        let _guard = serial();
        let outer_sum = AtomicU64::new(0);
        set_threads(4);
        parallel_for(64, 1, |r| {
            for _ in r {
                // Nested region: must complete without deadlock.
                let inner = AtomicU64::new(0);
                parallel_for(100, 1, |ir| {
                    inner.fetch_add(ir.len() as u64, Ordering::Relaxed);
                });
                outer_sum.fetch_add(inner.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        });
        assert_eq!(outer_sum.load(Ordering::Relaxed), 64 * 100);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let _guard = serial();
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            parallel_for(1000, 1, |r| {
                if r.contains(&500) {
                    panic!("boom in chunk");
                }
            });
        });
        assert!(result.is_err());
        // Pool still usable afterwards.
        let count = AtomicUsize::new(0);
        parallel_for(1000, 1, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let _guard = serial();
        set_threads(0);
        assert_eq!(current_threads(), 1);
        set_threads(3);
        assert_eq!(current_threads(), 3);
    }
}
