//! Bounded channels for pipelined dataflow stages.
//!
//! A std-only bounded MPSC channel (`Mutex` + two `Condvar`s) built for
//! the trainer's sampler → compute pipeline:
//!
//! * **Backpressure**: [`Sender::send`] blocks while the queue holds
//!   `capacity` items, so a fast producer can run at most `capacity`
//!   batches ahead of the consumer.
//! * **Close/drain protocol**: dropping every [`Sender`] closes the
//!   channel; [`Receiver::recv`] keeps draining queued items and only
//!   then reports [`RecvError`]. Dropping the [`Receiver`] closes the
//!   other direction: blocked and future sends return the rejected
//!   value in [`SendError`], so a producer stage unwinds cleanly when
//!   its consumer dies (e.g. a panic on the compute stage).
//! * **FIFO ordering**: items arrive in send order; with multiple
//!   senders, each sender's items stay in that sender's order.
//!
//! The channel itself is instrumentation-free — callers record queue
//! occupancy/wait metrics with whatever names fit their stage.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

struct Inner<T> {
    queue: VecDeque<T>,
    /// Live `Sender` handles; 0 means closed for writing.
    senders: usize,
    /// False once the `Receiver` is dropped.
    rx_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a [`bounded`] channel. Clone for MPSC use.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a [`bounded`] channel (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The receiver was dropped; the rejected value is returned.
pub struct SendError<T>(pub T);

/// Error from [`Sender::try_send`].
pub enum TrySendError<T> {
    /// The queue is at capacity; the rejected value is returned.
    Full(T),
    /// The receiver was dropped; the rejected value is returned.
    Closed(T),
}

/// All senders are gone and the queue is fully drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error from [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No item is queued right now, but senders remain.
    Empty,
    /// All senders are gone and the queue is fully drained.
    Closed,
}

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Closed(_) => f.write_str("TrySendError::Closed(..)"),
        }
    }
}

/// Creates a bounded FIFO channel holding at most `capacity` in-flight
/// items.
///
/// # Panics
///
/// Panics if `capacity` is 0 — a zero-capacity rendezvous is never what
/// the pipeline wants (it would serialize the stages again).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            rx_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the queue has room, then enqueues `value`.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver was dropped (including
    /// while this call was blocked on a full queue).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if !inner.rx_alive {
                return Err(SendError(value));
            }
            if inner.queue.len() < self.shared.capacity {
                break;
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the queue is at capacity,
    /// [`TrySendError::Closed`] when the receiver is gone; the value
    /// rides back in both.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if !inner.rx_alive {
            return Err(TrySendError::Closed(value));
        }
        if inner.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Items currently queued (racy — for occupancy gauges only).
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake a receiver blocked on an empty queue so it can
            // observe the close and finish draining.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives, draining queued items even after
    /// every sender is gone.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] only once all senders are dropped *and*
    /// the queue is empty — the drain half of the close protocol.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued but senders
    /// remain, [`TryRecvError::Closed`] once closed and drained.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Closed);
        }
        Err(TryRecvError::Empty)
    }

    /// Items currently queued (racy — for occupancy gauges only).
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.rx_alive = false;
        // Queued items a dead consumer will never take are dropped now,
        // not when the last sender lets go of the Arc.
        inner.queue.clear();
        drop(inner);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = bounded::<u32>(0);
    }

    #[test]
    fn try_send_backpressure_at_capacity() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(tx.capacity(), 2);
        match tx.try_send(3) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining one slot re-opens the queue.
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.is_empty());
    }

    #[test]
    fn blocking_send_waits_for_consumer() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let highest_seen = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&highest_seen);
        let producer = std::thread::spawn(move || {
            for v in 1..=5u32 {
                tx.send(v).unwrap(); // blocks at capacity 1
                seen.store(v as usize, Ordering::SeqCst);
            }
        });
        // The producer can complete at most one send (into the slot
        // freed below) before the consumer starts pulling.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            highest_seen.load(Ordering::SeqCst) <= 1,
            "producer ran ahead of a full queue"
        );
        for expect in 0..=5u32 {
            assert_eq!(rx.recv(), Ok(expect));
        }
        producer.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn close_then_drain() {
        let (tx, rx) = bounded(4);
        tx.send('a').unwrap();
        tx.send('b').unwrap();
        drop(tx);
        // Closed for writing, but queued items still arrive in order.
        assert_eq!(rx.recv(), Ok('a'));
        assert_eq!(rx.try_recv(), Ok('b'));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn try_recv_empty_vs_closed() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        drop(rx);
        match tx.send(2) {
            Err(SendError(v)) => assert_eq!(v, 2),
            Ok(()) => panic!("send succeeded into a dropped receiver"),
        }
        match tx.try_send(3) {
            Err(TrySendError::Closed(v)) => assert_eq!(v, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn receiver_drop_unblocks_a_waiting_sender() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(50));
        drop(rx); // producer is blocked on the full queue right now
        let res = producer.join().unwrap();
        assert!(res.is_err(), "blocked send must fail on receiver drop");
    }

    #[test]
    fn cross_thread_fifo_ordering() {
        let (tx, rx) = bounded(3);
        let producer = std::thread::spawn(move || {
            for v in 0..500u32 {
                tx.send(v).unwrap();
            }
        });
        for expect in 0..500u32 {
            assert_eq!(rx.recv(), Ok(expect), "items must arrive in send order");
        }
        producer.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpsc_preserves_per_sender_order() {
        let (tx, rx) = bounded(2);
        let tx2 = tx.clone();
        let spawn_producer = |tx: Sender<(u8, u32)>, id: u8| {
            std::thread::spawn(move || {
                for v in 0..200u32 {
                    tx.send((id, v)).unwrap();
                }
            })
        };
        let p1 = spawn_producer(tx, 1);
        let p2 = spawn_producer(tx2, 2);
        let mut next = [0u32; 3];
        let mut total = 0;
        while let Ok((id, v)) = rx.recv() {
            assert_eq!(v, next[id as usize], "sender {id} items out of order");
            next[id as usize] += 1;
            total += 1;
        }
        assert_eq!(total, 400);
        p1.join().unwrap();
        p2.join().unwrap();
    }
}
