//! TGL-style implementations of the four models.
//!
//! Same math and kernels as the `tgl-models` versions, but structured
//! the way TGL structures training: standalone [`Mfg`]s materialized
//! eagerly per layer (and retained for the batch), pageable
//! transfers, manual bookkeeping instead of block operators, and no
//! redundancy optimizations.

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::SeedableRng;
use tgl_graph::NodeId;
use tgl_models::{EdgePredictor, ModelConfig, TemporalModel};
use tgl_sampler::{SamplingStrategy, TemporalSampler};
use tgl_tensor::nn::{GruCell, Linear, Mlp, Module, RnnCell};
use tgl_tensor::ops::{cat, segment_mean, segment_softmax, segment_sum};
use tgl_tensor::{no_grad, Tensor};
use tglite::nn::TimeEncode;
use tglite::{TBatch, TContext};

use crate::Mfg;

/// Attention parameters shared by the baseline TGAT/TGN (same
/// structure as `tgl_models::TemporalAttnLayer`, applied to MFGs).
struct AttnParams {
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    ffn: Mlp,
    te: TimeEncode,
    heads: usize,
    head_dim: usize,
}

impl AttnParams {
    fn new(
        dim_node: usize,
        dim_edge: usize,
        dim_time: usize,
        dim_out: usize,
        heads: usize,
        device: tgl_device::Device,
        rng: &mut StdRng,
    ) -> AttnParams {
        let head_dim = dim_out / heads;
        AttnParams {
            w_q: Linear::new(dim_node + dim_time, heads * head_dim, rng).to_device(device),
            w_k: Linear::new(dim_node + dim_edge + dim_time, heads * head_dim, rng)
                .to_device(device),
            w_v: Linear::new(dim_node + dim_edge + dim_time, heads * head_dim, rng)
                .to_device(device),
            ffn: Mlp::new(heads * head_dim + dim_node, dim_out, dim_out, rng).to_device(device),
            te: TimeEncode::new(dim_time, rng).to_device(device),
            heads,
            head_dim,
        }
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.w_q.parameters();
        p.extend(self.w_k.parameters());
        p.extend(self.w_v.parameters());
        p.extend(self.ffn.parameters());
        p.extend(self.te.parameters());
        p
    }

    /// Same attention math as the TGLite layer, with manual segment
    /// bookkeeping over the MFG.
    fn forward(&self, mfg: &Mfg, h_dst: &Tensor, h_src: &Tensor) -> Tensor {
        let n_dst = mfg.num_dst();
        let n_edges = mfg.num_edges();
        let hd = self.heads * self.head_dim;
        let _t0 = tglite::prof::scope("time_zero");
        let tfeats = self.te.forward(&vec![0.0; n_dst]);
        drop(_t0);
        let q = self.w_q.forward(&cat(&[h_dst.clone(), tfeats], 1));
        if n_edges == 0 {
            let r = Tensor::zeros_on([n_dst, hd], h_dst.device());
            return self.ffn.forward(&cat(&[r, h_dst.clone()], 1));
        }
        let _tn = tglite::prof::scope("time_nbrs");
        let nbr_t = self.te.forward(mfg.deltas());
        drop(_tn);
        let _ta = tglite::prof::scope("attention");
        let z = cat(&[h_src.clone(), mfg.edge_feat().clone(), nbr_t], 1);
        let k = self.w_k.forward(&z);
        let v = self.w_v.forward(&z);
        let q_edge = q.index_select(mfg.dst_index());
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let logits = q_edge
            .mul(&k)
            .reshape([n_edges, self.heads, self.head_dim])
            .sum_dim(2)
            .mul_scalar(scale);
        let attn = segment_softmax(&logits, mfg.dst_index(), n_dst);
        let weighted = v
            .reshape([n_edges, self.heads, self.head_dim])
            .mul(&attn.reshape([n_edges, self.heads, 1]))
            .reshape([n_edges, hd]);
        let r = segment_sum(&weighted, mfg.dst_index(), n_dst);
        self.ffn.forward(&cat(&[r, h_dst.clone()], 1))
    }
}

/// Builds the per-layer MFG stack for `[srcs | dsts | negs]` and runs
/// the attention layers bottom-up, TGL-style. Every MFG stays alive in
/// `mfgs` until the whole batch completes.
fn mfg_stack(
    ctx: &TContext,
    sampler: &TemporalSampler,
    n_layers: usize,
    nodes: Vec<NodeId>,
    times: Vec<f64>,
) -> Vec<Mfg> {
    let g = ctx.graph();
    let device = ctx.device();
    let mut mfgs: Vec<Mfg> = Vec::with_capacity(n_layers);
    let (mut cur_nodes, mut cur_times) = (nodes, times);
    for _ in 0..n_layers {
        let mfg = Mfg::build(g, device, sampler, cur_nodes.clone(), cur_times.clone());
        let mut next_nodes = mfg.dst_nodes().to_vec();
        next_nodes.extend_from_slice(mfg.src_nodes());
        let mut next_times = mfg.dst_times().to_vec();
        // Source timestamps are the sampled edge times (exact).
        next_times.extend_from_slice(mfg.src_times());
        cur_nodes = next_nodes;
        cur_times = next_times;
        mfgs.push(mfg);
    }
    mfgs
}

fn run_attention_stack(layers: &[AttnParams], mfgs: &[Mfg], deep_h: Tensor) -> Tensor {
    // deep_h holds rows for the deepest MFG's [dst | src] nodes.
    let mut h = deep_h;
    for (i, mfg) in mfgs.iter().enumerate().rev() {
        let nd = mfg.num_dst();
        let h_dst = h.narrow_rows(0, nd);
        let h_src = h.narrow_rows(nd, h.dim(0) - nd);
        h = layers[i].forward(mfg, &h_dst, &h_src);
    }
    h
}

// ===================================================================
// TGAT
// ===================================================================

/// Baseline (TGL-style) TGAT.
pub struct BaselineTgat {
    layers: Vec<AttnParams>,
    sampler: TemporalSampler,
    predictor: EdgePredictor,
    cfg: ModelConfig,
}

impl BaselineTgat {
    /// Builds the baseline TGAT for the context's graph.
    pub fn new(ctx: &TContext, cfg: ModelConfig, seed: u64) -> BaselineTgat {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ctx.graph();
        let (d_node, d_edge) = (g.node_feat_dim(), g.edge_feat_dim());
        let device = ctx.device();
        let layers = (0..cfg.n_layers)
            .map(|i| {
                let dim_in = if i == cfg.n_layers - 1 { d_node } else { cfg.emb_dim };
                AttnParams::new(dim_in, d_edge, cfg.time_dim, cfg.emb_dim, cfg.heads, device, &mut rng)
            })
            .collect();
        BaselineTgat {
            layers,
            sampler: TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent).with_seed(seed),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            cfg,
        }
    }
}

impl TemporalModel for BaselineTgat {
    fn name(&self) -> &'static str {
        "TGAT"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.layers.iter().flat_map(|l| l.params()).collect();
        p.extend(self.predictor.parameters());
        p
    }

    fn set_training(&mut self, _training: bool) {}

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        let n = batch.len();
        let mut nodes = Vec::with_capacity(3 * n);
        nodes.extend_from_slice(batch.srcs());
        nodes.extend_from_slice(batch.dsts());
        nodes.extend_from_slice(batch.negatives());
        let mut times = Vec::with_capacity(nodes.len());
        for _ in 0..(nodes.len() / n.max(1)) {
            times.extend_from_slice(batch.times());
        }
        let mfgs = mfg_stack(ctx, &self.sampler, self.cfg.n_layers, nodes, times);
        let deepest = mfgs.last().expect("at least one layer");
        let deep_h = cat(&[deepest.dst_feat().clone(), deepest.src_feat().clone()], 0);
        let embs = run_attention_stack(&self.layers, &mfgs, deep_h);
        let src = embs.narrow_rows(0, n);
        let dst = embs.narrow_rows(n, n);
        let neg = embs.narrow_rows(2 * n, n);
        (
            self.predictor.forward(&src, &dst),
            self.predictor.forward(&src, &neg),
        )
    }
}

// ===================================================================
// TGN
// ===================================================================

/// Baseline (TGL-style) TGN: GRU memory + attention, with the manual
/// unique/latest bookkeeping of the paper's Listing 3.
pub struct BaselineTgn {
    layers: Vec<AttnParams>,
    memory_updater: GruCell,
    mem_te: TimeEncode,
    feat_linear: Linear,
    sampler: TemporalSampler,
    predictor: EdgePredictor,
    cfg: ModelConfig,
    mail_dim: usize,
}

impl BaselineTgn {
    /// Builds the baseline TGN, attaching memory + 1-slot mailbox.
    pub fn new(ctx: &TContext, cfg: ModelConfig, seed: u64) -> BaselineTgn {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ctx.graph();
        let (d_node, d_edge) = (g.node_feat_dim(), g.edge_feat_dim());
        let device = ctx.device();
        let mem_dim = cfg.emb_dim;
        let mail_dim = 2 * mem_dim + d_edge;
        g.attach_memory(mem_dim, device);
        g.attach_mailbox(1, mail_dim, device);
        let layers = (0..cfg.n_layers)
            .map(|_| AttnParams::new(cfg.emb_dim, d_edge, cfg.time_dim, cfg.emb_dim, cfg.heads, device, &mut rng))
            .collect();
        BaselineTgn {
            layers,
            memory_updater: GruCell::new(mail_dim + cfg.time_dim, mem_dim, &mut rng).to_device(device),
            mem_te: TimeEncode::new(cfg.time_dim, &mut rng).to_device(device),
            feat_linear: Linear::new(d_node, mem_dim, &mut rng).to_device(device),
            sampler: TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent).with_seed(seed),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            cfg,
            mail_dim,
        }
    }

    fn update_memory(&self, ctx: &TContext, nodes: &[NodeId]) -> Tensor {
        let g = ctx.graph();
        let device = ctx.device();
        let mem = g.memory();
        let mem_rows = mem.rows(nodes).to(device);
        let mem_ts = mem.times(nodes);
        let (mail, mail_ts) = g.mailbox().latest(nodes);
        let mail = mail.to(device);
        let deltas: Vec<f32> = mail_ts
            .iter()
            .zip(&mem_ts)
            .map(|(&a, &b)| (a - b) as f32)
            .collect();
        let tfeat = self.mem_te.forward(&deltas);
        self.memory_updater.forward(&cat(&[mail, tfeat], 1), &mem_rows)
    }

    /// The "complex code sequence ... to find the unique nodes and to
    /// select their latest messages" (paper Listing 3, region T),
    /// written out manually.
    fn unique_latest(batch: &TBatch) -> (Vec<NodeId>, Vec<NodeId>, Vec<f64>, Vec<u32>) {
        let mut latest: std::collections::HashMap<NodeId, (NodeId, f64, u32)> =
            std::collections::HashMap::new();
        for (i, ((&s, &d), &t)) in batch
            .srcs()
            .iter()
            .zip(batch.dsts())
            .zip(batch.times())
            .enumerate()
        {
            let eid = (batch.range().start + i) as u32;
            for (a, b) in [(s, d), (d, s)] {
                let e = latest.entry(a).or_insert((b, t, eid));
                if t >= e.1 {
                    *e = (b, t, eid);
                }
            }
        }
        let mut uniq: Vec<NodeId> = latest.keys().copied().collect();
        uniq.sort_unstable();
        let mut partners = Vec::with_capacity(uniq.len());
        let mut times = Vec::with_capacity(uniq.len());
        let mut eids = Vec::with_capacity(uniq.len());
        for &u in &uniq {
            let (p, t, e) = latest[&u];
            partners.push(p);
            times.push(t);
            eids.push(e);
        }
        (uniq, partners, times, eids)
    }

    fn save_state(&self, ctx: &TContext, batch: &TBatch) {
        let _guard = no_grad();
        let g = ctx.graph();
        let device = ctx.device();
        let (uniq, partners, times, eids) = Self::unique_latest(batch);
        let mem_new = self.update_memory(ctx, &uniq);
        g.memory().store(&uniq, &mem_new, &times);
        let own = g.memory().rows(&uniq).to(device);
        let other = g.memory().rows(&partners).to(device);
        let efeat = g.edge_feat_rows(&eids).to(device);
        let mail = cat(&[own, other, efeat], 1);
        debug_assert_eq!(mail.dim(1), self.mail_dim);
        g.mailbox().store(&uniq, &mail, &times);
    }
}

impl TemporalModel for BaselineTgn {
    fn name(&self) -> &'static str {
        "TGN"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.layers.iter().flat_map(|l| l.params()).collect();
        p.extend(self.memory_updater.parameters());
        p.extend(self.mem_te.parameters());
        p.extend(self.feat_linear.parameters());
        p.extend(self.predictor.parameters());
        p
    }

    fn set_training(&mut self, _training: bool) {}

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        let n = batch.len();
        let mut nodes = Vec::with_capacity(3 * n);
        nodes.extend_from_slice(batch.srcs());
        nodes.extend_from_slice(batch.dsts());
        nodes.extend_from_slice(batch.negatives());
        let mut times = Vec::with_capacity(nodes.len());
        for _ in 0..(nodes.len() / n.max(1)) {
            times.extend_from_slice(batch.times());
        }
        let mfgs = mfg_stack(ctx, &self.sampler, self.cfg.n_layers, nodes, times);
        let deepest = mfgs.last().expect("layers >= 1");
        let mut deep_nodes = deepest.dst_nodes().to_vec();
        deep_nodes.extend_from_slice(deepest.src_nodes());
        let mem = self.update_memory(ctx, &deep_nodes);
        let nfeat = self.feat_linear.forward(
            &ctx.graph().node_feat_rows(&deep_nodes).to(ctx.device()),
        );
        let deep_h = nfeat.add(&mem);
        let embs = run_attention_stack(&self.layers, &mfgs, deep_h);
        self.save_state(ctx, batch);
        let src = embs.narrow_rows(0, n);
        let dst = embs.narrow_rows(n, n);
        let neg = embs.narrow_rows(2 * n, n);
        (
            self.predictor.forward(&src, &dst),
            self.predictor.forward(&src, &neg),
        )
    }
}

// ===================================================================
// JODIE
// ===================================================================

/// Baseline (TGL-style) JODIE: RNN memory + time projection.
pub struct BaselineJodie {
    rnn: RnnCell,
    te: TimeEncode,
    feat_linear: Linear,
    projector: Tensor,
    predictor: EdgePredictor,
    mail_dim: usize,
}

impl BaselineJodie {
    /// Builds the baseline JODIE, attaching memory + 1-slot mailbox.
    pub fn new(ctx: &TContext, cfg: ModelConfig, seed: u64) -> BaselineJodie {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ctx.graph();
        let (d_node, d_edge) = (g.node_feat_dim(), g.edge_feat_dim());
        let device = ctx.device();
        let mem_dim = cfg.emb_dim;
        let mail_dim = mem_dim + d_edge;
        g.attach_memory(mem_dim, device);
        g.attach_mailbox(1, mail_dim, device);
        BaselineJodie {
            rnn: RnnCell::new(mail_dim + cfg.time_dim, mem_dim, &mut rng).to_device(device),
            te: TimeEncode::new(cfg.time_dim, &mut rng).to_device(device),
            feat_linear: Linear::new(d_node, mem_dim, &mut rng).to_device(device),
            projector: Tensor::zeros([mem_dim]).to(device).requires_grad(true),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            mail_dim,
        }
    }

    fn update_memory(&self, ctx: &TContext, nodes: &[NodeId]) -> Tensor {
        let g = ctx.graph();
        let device = ctx.device();
        let mem_rows = g.memory().rows(nodes).to(device);
        let mem_ts = g.memory().times(nodes);
        let (mail, mail_ts) = g.mailbox().latest(nodes);
        let mail = mail.to(device);
        let deltas: Vec<f32> = mail_ts
            .iter()
            .zip(&mem_ts)
            .map(|(&a, &b)| (a - b) as f32)
            .collect();
        let tfeat = self.te.forward(&deltas);
        self.rnn.forward(&cat(&[mail, tfeat], 1), &mem_rows)
    }
}

impl TemporalModel for BaselineJodie {
    fn name(&self) -> &'static str {
        "JODIE"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.rnn.parameters();
        p.extend(self.te.parameters());
        p.extend(self.feat_linear.parameters());
        p.push(self.projector.clone());
        p.extend(self.predictor.parameters());
        p
    }

    fn set_training(&mut self, _training: bool) {}

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        let g = ctx.graph();
        let device = ctx.device();
        let n = batch.len();
        let mut nodes = Vec::with_capacity(3 * n);
        nodes.extend_from_slice(batch.srcs());
        nodes.extend_from_slice(batch.dsts());
        nodes.extend_from_slice(batch.negatives());
        let mut times: Vec<f64> = Vec::with_capacity(nodes.len());
        for _ in 0..3 {
            times.extend_from_slice(batch.times());
        }
        let mem_new = self.update_memory(ctx, &nodes);
        // Projection: (1 + Δt·w) ⊙ mem + W_f x, with Δt normalized by
        // the stream's time scale (as the TGLite JODIE does).
        let norm = (g.max_time() as f32).max(1.0);
        let mem_ts = g.memory().times(&nodes);
        let deltas: Vec<f32> = times
            .iter()
            .zip(&mem_ts)
            .map(|(&q, &u)| (q - u) as f32 / norm)
            .collect();
        let dt = Tensor::from_vec(deltas, [nodes.len(), 1]).to(device);
        let scale = dt.mul(&self.projector).add_scalar(1.0);
        let nfeat = self.feat_linear.forward(&g.node_feat_rows(&nodes).to(device));
        let embs = mem_new.mul(&scale).add(&nfeat);

        // Persist + mailbox (manual unique/latest).
        {
            let _guard = no_grad();
            let (uniq, partners, t_latest, eids) = BaselineTgn::unique_latest(batch);
            let updated = self.update_memory(ctx, &uniq);
            g.memory().store(&uniq, &updated, &t_latest);
            let other = g.memory().rows(&partners).to(device);
            let efeat = g.edge_feat_rows(&eids).to(device);
            let mail = cat(&[other, efeat], 1);
            debug_assert_eq!(mail.dim(1), self.mail_dim);
            g.mailbox().store(&uniq, &mail, &t_latest);
        }

        let src = embs.narrow_rows(0, n);
        let dst = embs.narrow_rows(n, n);
        let neg = embs.narrow_rows(2 * n, n);
        (
            self.predictor.forward(&src, &dst),
            self.predictor.forward(&src, &neg),
        )
    }
}

// ===================================================================
// APAN
// ===================================================================

/// Baseline (TGL-style) APAN: mailbox attention + manual mail
/// propagation (TGL handles this with "special handling code in the
/// mailbox/memory-related modules", paper Appendix A).
pub struct BaselineApan {
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    ffn: Mlp,
    te: TimeEncode,
    memory_updater: GruCell,
    sampler: TemporalSampler,
    predictor: EdgePredictor,
    mail_dim: usize,
}

impl BaselineApan {
    /// Builds the baseline APAN, attaching memory + multi-slot mailbox.
    pub fn new(ctx: &TContext, cfg: ModelConfig, seed: u64) -> BaselineApan {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ctx.graph();
        let (d_node, d_edge) = (g.node_feat_dim(), g.edge_feat_dim());
        let device = ctx.device();
        let mem_dim = cfg.emb_dim;
        let mail_dim = 2 * mem_dim + d_edge;
        g.attach_memory(mem_dim, device);
        g.attach_mailbox(cfg.mailbox_slots, mail_dim, device);
        let hd = cfg.emb_dim;
        BaselineApan {
            w_q: Linear::new(d_node + cfg.time_dim, hd, &mut rng).to_device(device),
            w_k: Linear::new(mail_dim + cfg.time_dim, hd, &mut rng).to_device(device),
            w_v: Linear::new(mail_dim + cfg.time_dim, hd, &mut rng).to_device(device),
            ffn: Mlp::new(hd + d_node, cfg.emb_dim, cfg.emb_dim, &mut rng).to_device(device),
            te: TimeEncode::new(cfg.time_dim, &mut rng).to_device(device),
            memory_updater: GruCell::new(hd, mem_dim, &mut rng).to_device(device),
            sampler: TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent).with_seed(seed),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            mail_dim,
        }
    }
}

impl TemporalModel for BaselineApan {
    fn name(&self) -> &'static str {
        "APAN"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w_q.parameters();
        p.extend(self.w_k.parameters());
        p.extend(self.w_v.parameters());
        p.extend(self.ffn.parameters());
        p.extend(self.te.parameters());
        p.extend(self.memory_updater.parameters());
        p.extend(self.predictor.parameters());
        p
    }

    fn set_training(&mut self, _training: bool) {}

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        let g = ctx.graph();
        let device = ctx.device();
        let n = batch.len();
        let mut nodes = Vec::with_capacity(3 * n);
        nodes.extend_from_slice(batch.srcs());
        nodes.extend_from_slice(batch.dsts());
        nodes.extend_from_slice(batch.negatives());
        let mut times: Vec<f64> = Vec::with_capacity(nodes.len());
        for _ in 0..3 {
            times.extend_from_slice(batch.times());
        }

        // Mailbox attention (manual segment bookkeeping).
        let (mails, mail_ts, owners) = g.mailbox().all_slots(&nodes);
        let mails = mails.to(device);
        let deltas: Vec<f32> = owners
            .iter()
            .zip(&mail_ts)
            .map(|(&o, &mt)| (times[o] - mt) as f32)
            .collect();
        let mail_t = self.te.forward(&deltas);
        let zeros_t = self.te.forward(&vec![0.0; nodes.len()]);
        let nfeat = g.node_feat_rows(&nodes).to(device);
        let q = self.w_q.forward(&cat(&[nfeat.clone(), zeros_t], 1));
        let kv_in = cat(&[mails, mail_t], 1);
        let k = self.w_k.forward(&kv_in);
        let v = self.w_v.forward(&kv_in);
        let hd = q.dim(1);
        let q_slot = q.index_select(&owners);
        let logits = q_slot
            .mul(&k)
            .sum_dim(1)
            .mul_scalar(1.0 / (hd as f32).sqrt())
            .reshape([owners.len(), 1]);
        let attn = segment_softmax(&logits, &owners, nodes.len());
        let summary = segment_sum(&v.mul(&attn), &owners, nodes.len());
        let embs = self.ffn.forward(&cat(&[summary.clone(), nfeat], 1));

        // Memory update + mail propagation (manual).
        {
            let _guard = no_grad();
            let (uniq, _, t_latest, _) = BaselineTgn::unique_latest(batch);
            let rows: Vec<usize> = uniq
                .iter()
                .map(|&u| nodes.iter().position(|&x| x == u).expect("endpoint present"))
                .collect();
            let mem_rows = g.memory().rows(&uniq).to(device);
            let updated = self
                .memory_updater
                .forward(&summary.index_select(&rows), &mem_rows);
            g.memory().store(&uniq, &updated, &t_latest);

            // Mails to endpoints and to sampled neighbors.
            let mem_src = g.memory().rows(batch.srcs()).to(device);
            let mem_dst = g.memory().rows(batch.dsts()).to(device);
            let efeat = g.edge_feat_rows(&batch.eids()).to(device);
            let mail_s = cat(&[mem_src.clone(), mem_dst.clone(), efeat.clone()], 1);
            let mail_d = cat(&[mem_dst, mem_src, efeat], 1);
            let all_mails = cat(&[mail_s, mail_d], 0);
            debug_assert_eq!(all_mails.dim(1), self.mail_dim);
            let mut ep_nodes = batch.srcs().to_vec();
            ep_nodes.extend_from_slice(batch.dsts());
            let mut ep_times = batch.times().to_vec();
            ep_times.extend_from_slice(batch.times());
            g.mailbox().store(&ep_nodes, &all_mails, &ep_times);

            let nb = self.sampler.sample(&g.tcsr(), &ep_nodes, &ep_times);
            if !nb.is_empty() {
                let per_edge = all_mails.index_select(&nb.dst_index);
                // Manual unique-src mean scatter.
                let mut pos: std::collections::HashMap<NodeId, usize> =
                    std::collections::HashMap::new();
                let mut uniq_src: Vec<NodeId> = Vec::new();
                let seg: Vec<usize> = nb
                    .src_nodes
                    .iter()
                    .map(|&s| {
                        *pos.entry(s).or_insert_with(|| {
                            uniq_src.push(s);
                            uniq_src.len() - 1
                        })
                    })
                    .collect();
                let scattered = segment_mean(&per_edge, &seg, uniq_src.len());
                let t_mail = Tensor::from_vec(
                    nb.dst_index
                        .iter()
                        .map(|&d| ep_times[d] as f32)
                        .collect(),
                    [nb.len(), 1],
                )
                .to(device);
                let t_scat = segment_mean(&t_mail, &seg, uniq_src.len());
                let t_vals: Vec<f64> = t_scat.to_vec().iter().map(|&v| v as f64).collect();
                g.mailbox().store(&uniq_src, &scattered, &t_vals);
            }
        }

        let src = embs.narrow_rows(0, n);
        let dst = embs.narrow_rows(n, n);
        let neg = embs.narrow_rows(2 * n, n);
        (
            self.predictor.forward(&src, &dst),
            self.predictor.forward(&src, &neg),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use tgl_runtime::rng::Rng;
    use tglite::TGraph;

    fn small_graph(seed: u64) -> Arc<TGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_nodes = 20;
        let n_edges = 120;
        let mut edges = Vec::with_capacity(n_edges);
        for i in 0..n_edges {
            let s = rng.gen_range(0..10u32);
            let d = rng.gen_range(10..20u32);
            edges.push((s, d, i as f64 + 1.0));
        }
        let g = Arc::new(TGraph::from_edges(n_nodes, edges));
        g.set_node_feats(Tensor::rand_uniform([n_nodes, 6], -1.0, 1.0, &mut rng));
        g.set_edge_feats(Tensor::rand_uniform([n_edges, 4], -1.0, 1.0, &mut rng));
        g
    }

    fn batch(g: &Arc<TGraph>, range: std::ops::Range<usize>) -> TBatch {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = TBatch::new(Arc::clone(g), range);
        let negs = (0..b.len()).map(|_| rng.gen_range(10..20u32)).collect();
        b.set_negatives(negs);
        b
    }

    fn check_forward<M: TemporalModel>(mut model: M, g: &Arc<TGraph>) {
        let ctx = TContext::new(Arc::clone(g));
        let b = batch(g, 30..50);
        let (pos, neg) = model.forward(&ctx, &b);
        assert_eq!(pos.dims(), &[20]);
        assert_eq!(neg.dims(), &[20]);
        assert!(pos.to_vec().iter().all(|v| v.is_finite()));
        assert!(neg.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn baseline_tgat_forward() {
        let g = small_graph(1);
        let ctx = TContext::new(Arc::clone(&g));
        check_forward(
            BaselineTgat::new(&ctx, ModelConfig::tiny(), 0),
            &g,
        );
    }

    #[test]
    fn baseline_tgn_forward() {
        let g = small_graph(2);
        let ctx = TContext::new(Arc::clone(&g));
        check_forward(BaselineTgn::new(&ctx, ModelConfig::tiny(), 0), &g);
    }

    #[test]
    fn baseline_jodie_forward() {
        let g = small_graph(3);
        let ctx = TContext::new(Arc::clone(&g));
        check_forward(BaselineJodie::new(&ctx, ModelConfig::tiny(), 0), &g);
    }

    #[test]
    fn baseline_apan_forward() {
        let g = small_graph(4);
        let ctx = TContext::new(Arc::clone(&g));
        check_forward(BaselineApan::new(&ctx, ModelConfig::tiny(), 0), &g);
    }

    #[test]
    fn baseline_tgat_trains() {
        use tgl_tensor::optim::Adam;
        let g = small_graph(5);
        let ctx = TContext::new(Arc::clone(&g));
        let mut model = BaselineTgat::new(&ctx, ModelConfig::tiny(), 2);
        let mut opt = Adam::new(model.parameters(), 1e-2);
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for step in 0..10 {
            let b = batch(&g, 20..60);
            opt.zero_grad();
            let (pos, neg) = model.forward(&ctx, &b);
            let logits = cat(&[pos, neg], 0);
            let m = logits.dim(0);
            let mut targets = vec![1.0; m / 2];
            targets.extend(vec![0.0; m / 2]);
            let loss =
                tgl_tensor::bce_with_logits(&logits, &Tensor::from_vec(targets, [m]));
            if step == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first, "baseline TGAT should train: {first} -> {last}");
    }

    #[test]
    fn baseline_matches_tglite_tgat_semantics() {
        // The baseline and TGLite TGAT use the same kernels and the
        // same seeded parameters, so their first forward pass on the
        // same batch must agree exactly.
        let g = small_graph(6);
        let ctx1 = TContext::new(Arc::clone(&g));
        let mut base = BaselineTgat::new(&ctx1, ModelConfig::tiny(), 11);
        let ctx2 = TContext::new(Arc::clone(&g));
        let mut lite = tgl_models::Tgat::new(
            &ctx2,
            ModelConfig::tiny(),
            tgl_models::OptFlags::none(),
            11,
        );
        let b = batch(&g, 40..70);
        let (p1, n1) = base.forward(&ctx1, &b);
        let (p2, n2) = lite.forward(&ctx2, &b);
        for (a, b) in p1.to_vec().iter().zip(p2.to_vec()) {
            assert!((a - b).abs() < 1e-4, "frameworks disagree: {a} vs {b}");
        }
        for (a, b) in n1.to_vec().iter().zip(n2.to_vec()) {
            assert!((a - b).abs() < 1e-4, "frameworks disagree: {a} vs {b}");
        }
    }
}
