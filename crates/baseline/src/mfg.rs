//! Standalone message-flow graphs (DGL/TGL style).

use std::collections::HashMap;

use tgl_device::Device;
use tgl_graph::{EdgeId, NodeId, TemporalGraph, Time};
use tgl_sampler::TemporalSampler;
use tgl_tensor::Tensor;

/// A message-flow graph: 1-hop dependencies with *both* destination
/// and source sides fixed at construction, all tensors materialized on
/// the compute device.
///
/// This is the representation the paper's TBlock is contrasted with
/// (§3.2): "MFGs require both destination and source node information
/// upfront"; "the MFGs in DGL/TGL are standalone objects without these
/// links"; "MFGs require all data associated with the MFG to be stored
/// on the same device".
#[derive(Debug)]
pub struct Mfg {
    dst_nodes: Vec<NodeId>,
    dst_times: Vec<Time>,
    src_nodes: Vec<NodeId>,
    src_times: Vec<Time>,
    eids: Vec<EdgeId>,
    dst_index: Vec<usize>,
    /// Per-edge `t_dst − t_edge`, computed during sampling (TGL fuses
    /// this into its sampler).
    deltas: Vec<f32>,
    /// Materialized device tensors, retained for the MFG's lifetime.
    dst_feat: Tensor,
    src_feat: Tensor,
    edge_feat: Tensor,
    /// String-keyed data, as in DGL (`mfg.srcdata['h']`).
    dstdata: HashMap<String, Tensor>,
    srcdata: HashMap<String, Tensor>,
}

impl Mfg {
    /// Samples the temporal neighborhood of `(dst_nodes, dst_times)`
    /// and materializes every associated tensor on `device` through
    /// the pageable transfer path.
    pub fn build(
        g: &TemporalGraph,
        device: Device,
        sampler: &TemporalSampler,
        dst_nodes: Vec<NodeId>,
        dst_times: Vec<Time>,
    ) -> Mfg {
        let _s = tglite::prof::scope("sample");
        let nbrs = sampler.sample(&g.tcsr(), &dst_nodes, &dst_times);
        drop(_s);
        let deltas: Vec<f32> = nbrs
            .dst_index
            .iter()
            .zip(&nbrs.src_times)
            .map(|(&d, &st)| (dst_times[d] - st) as f32)
            .collect();
        // Eager materialization: dst features, src features, and edge
        // features all shipped to the device now and retained.
        let _f = tglite::prof::scope("feature_load");
        let dst_feat = g.node_feat_rows(&dst_nodes).to(device);
        let src_feat = g.node_feat_rows(&nbrs.src_nodes).to(device);
        let edge_feat = g.edge_feat_rows(&nbrs.eids).to(device);
        Mfg {
            dst_nodes,
            dst_times,
            src_nodes: nbrs.src_nodes,
            src_times: nbrs.src_times,
            eids: nbrs.eids,
            dst_index: nbrs.dst_index,
            deltas,
            dst_feat,
            src_feat,
            edge_feat,
            dstdata: HashMap::new(),
            srcdata: HashMap::new(),
        }
    }

    /// Number of destination pairs.
    pub fn num_dst(&self) -> usize {
        self.dst_nodes.len()
    }

    /// Number of sampled edges.
    pub fn num_edges(&self) -> usize {
        self.src_nodes.len()
    }

    /// Destination node ids.
    pub fn dst_nodes(&self) -> &[NodeId] {
        &self.dst_nodes
    }

    /// Destination timestamps.
    pub fn dst_times(&self) -> &[Time] {
        &self.dst_times
    }

    /// Sampled source node ids.
    pub fn src_nodes(&self) -> &[NodeId] {
        &self.src_nodes
    }

    /// Sampled edge timestamps (exact, for chaining deeper layers).
    pub fn src_times(&self) -> &[Time] {
        &self.src_times
    }

    /// Sampled edge ids.
    pub fn eids(&self) -> &[EdgeId] {
        &self.eids
    }

    /// Per-edge destination position (segment ids).
    pub fn dst_index(&self) -> &[usize] {
        &self.dst_index
    }

    /// Per-edge time deltas (fused with sampling, as TGL does).
    pub fn deltas(&self) -> &[f32] {
        &self.deltas
    }

    /// Materialized destination features.
    pub fn dst_feat(&self) -> &Tensor {
        &self.dst_feat
    }

    /// Materialized source features.
    pub fn src_feat(&self) -> &Tensor {
        &self.src_feat
    }

    /// Materialized edge features.
    pub fn edge_feat(&self) -> &Tensor {
        &self.edge_feat
    }

    /// Sets `dstdata[key]` (DGL-style string-keyed tensor data).
    pub fn set_dstdata(&mut self, key: &str, t: Tensor) {
        self.dstdata.insert(key.to_string(), t);
    }

    /// Gets `dstdata[key]`.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent.
    pub fn dstdata(&self, key: &str) -> Tensor {
        self.dstdata
            .get(key)
            .unwrap_or_else(|| panic!("no dstdata[{key:?}]"))
            .clone()
    }

    /// Sets `srcdata[key]`.
    pub fn set_srcdata(&mut self, key: &str, t: Tensor) {
        self.srcdata.insert(key.to_string(), t);
    }

    /// Gets `srcdata[key]`.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent.
    pub fn srcdata(&self, key: &str) -> Tensor {
        self.srcdata
            .get(key)
            .unwrap_or_else(|| panic!("no srcdata[{key:?}]"))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_sampler::SamplingStrategy;

    fn graph() -> TemporalGraph {
        let g = TemporalGraph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        g.set_node_feats(Tensor::from_vec((0..8).map(|v| v as f32).collect(), [4, 2]));
        g.set_edge_feats(Tensor::from_vec(vec![1.0, 2.0, 3.0], [3, 1]));
        g
    }

    #[test]
    fn build_materializes_everything() {
        let g = graph();
        let sampler = TemporalSampler::new(5, SamplingStrategy::Recent).with_threads(1);
        let mfg = Mfg::build(&g, Device::Host, &sampler, vec![2], vec![10.0]);
        assert_eq!(mfg.num_dst(), 1);
        assert_eq!(mfg.num_edges(), 2);
        assert_eq!(mfg.dst_feat().dims(), &[1, 2]);
        assert_eq!(mfg.src_feat().dims(), &[2, 2]);
        assert_eq!(mfg.edge_feat().dims(), &[2, 1]);
        assert_eq!(mfg.deltas(), &[8.0, 7.0]);
        assert_eq!(mfg.dst_index(), &[0, 0]);
        assert_eq!(mfg.eids().len(), 2);
        assert_eq!(mfg.dst_times(), &[10.0]);
    }

    #[test]
    fn device_transfers_happen_at_build() {
        let g = graph();
        let sampler = TemporalSampler::new(5, SamplingStrategy::Recent).with_threads(1);
        let before = tgl_device::stats().h2d_bytes;
        let mfg = Mfg::build(&g, Device::Accel, &sampler, vec![2, 1], vec![10.0, 10.0]);
        let after = tgl_device::stats().h2d_bytes;
        assert!(after > before, "expected eager pageable transfers");
        assert_eq!(mfg.dst_feat().device(), Device::Accel);
        assert_eq!(mfg.src_feat().device(), Device::Accel);
    }

    #[test]
    fn string_keyed_data_roundtrip() {
        let g = graph();
        let sampler = TemporalSampler::new(2, SamplingStrategy::Recent).with_threads(1);
        let mut mfg = Mfg::build(&g, Device::Host, &sampler, vec![1], vec![5.0]);
        mfg.set_dstdata("h", Tensor::ones([1, 3]));
        mfg.set_srcdata("h", Tensor::zeros([1, 3]));
        assert_eq!(mfg.dstdata("h").to_vec(), vec![1.0; 3]);
        assert_eq!(mfg.srcdata("h").to_vec(), vec![0.0; 3]);
    }
}
