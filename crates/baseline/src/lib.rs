//! TGL-style baseline framework.
//!
//! The paper compares TGLite against **TGL** (Zhou et al., VLDB'22),
//! an MFG-based temporal-GNN training framework. This crate mirrors
//! TGL's structure so the comparison isolates exactly what the paper
//! isolates:
//!
//! * [`Mfg`] — a standalone message-flow graph. Unlike a `TBlock`, an
//!   MFG (a) requires both destination *and* source information
//!   upfront, (b) has no predecessor/successor links, (c) has no hooks
//!   mechanism, and (d) requires all of its associated tensor data to
//!   be resident on the compute device, materialized eagerly at
//!   construction and retained for the batch's lifetime (this is the
//!   memory behaviour behind the paper's Table 7 OOM entries).
//! * Baseline implementations of the same four models, sharing the
//!   same tensor kernels as the TGLite versions but with no
//!   dedup/cache/time-precompute operators and pageable (unpinned)
//!   host→device transfers.
//!
//! Like TGL, the baseline computes neighbor time deltas during
//! sampling (fused into MFG construction) — the small structural
//! advantage the paper's Fig. 7 breakdown attributes to TGL.

mod mfg;
mod models;

pub use mfg::Mfg;
pub use models::{BaselineApan, BaselineJodie, BaselineTgat, BaselineTgn};
