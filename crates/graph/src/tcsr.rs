//! Temporal compressed-sparse-row adjacency.

use crate::{EdgeId, NodeId, Time};

/// Per-node adjacency with neighbors sorted by edge timestamp.
///
/// "When a model needs to perform neighborhood sampling ... it is best
/// to use a CSR format for faster lookups" (§3.4). Within each node's
/// slice, entries are ascending in time, so the set of edges strictly
/// earlier than a query time is a prefix found by binary search.
#[derive(Debug, Clone, PartialEq)]
pub struct TCsr {
    indptr: Vec<usize>,
    nbrs: Vec<NodeId>,
    eids: Vec<EdgeId>,
    times: Vec<Time>,
}

impl TCsr {
    /// Builds a T-CSR from a (src, dst, time) edge list.
    ///
    /// When `undirected` is true each edge is inserted in both
    /// directions (the usual treatment for CTDG neighbor sampling, as
    /// in TGL); edge ids are shared between the two directions.
    pub fn build(
        num_nodes: usize,
        src: &[NodeId],
        dst: &[NodeId],
        time: &[Time],
        undirected: bool,
    ) -> TCsr {
        assert_eq!(src.len(), dst.len());
        assert_eq!(src.len(), time.len());
        let mut degree = vec![0usize; num_nodes];
        for (&s, &d) in src.iter().zip(dst) {
            degree[s as usize] += 1;
            if undirected {
                degree[d as usize] += 1;
            }
        }
        let mut indptr = vec![0usize; num_nodes + 1];
        for i in 0..num_nodes {
            indptr[i + 1] = indptr[i] + degree[i];
        }
        let total = indptr[num_nodes];
        let mut nbrs = vec![0 as NodeId; total];
        let mut eids = vec![0 as EdgeId; total];
        let mut times = vec![0.0 as Time; total];
        let mut cursor = indptr.clone();
        // Edges are inserted in input order; because TemporalGraph keeps
        // its COO sorted by time, each node's slice ends up time-sorted.
        for (e, ((&s, &d), &t)) in src.iter().zip(dst).zip(time).enumerate() {
            let c = cursor[s as usize];
            nbrs[c] = d;
            eids[c] = e as EdgeId;
            times[c] = t;
            cursor[s as usize] += 1;
            if undirected {
                let c = cursor[d as usize];
                nbrs[c] = s;
                eids[c] = e as EdgeId;
                times[c] = t;
                cursor[d as usize] += 1;
            }
        }
        // Defensive: ensure per-node time-sortedness even if the input
        // was not chronologically sorted.
        for v in 0..num_nodes {
            let (lo, hi) = (indptr[v], indptr[v + 1]);
            let slice_sorted = times[lo..hi].windows(2).all(|w| w[0] <= w[1]);
            if !slice_sorted {
                let mut order: Vec<usize> = (lo..hi).collect();
                order.sort_by(|&a, &b| times[a].partial_cmp(&times[b]).expect("finite times"));
                let (n2, e2, t2): (Vec<_>, Vec<_>, Vec<_>) = order
                    .iter()
                    .map(|&i| (nbrs[i], eids[i], times[i]))
                    .fold((vec![], vec![], vec![]), |(mut a, mut b, mut c), (x, y, z)| {
                        a.push(x);
                        b.push(y);
                        c.push(z);
                        (a, b, c)
                    });
                nbrs[lo..hi].copy_from_slice(&n2);
                eids[lo..hi].copy_from_slice(&e2);
                times[lo..hi].copy_from_slice(&t2);
            }
        }
        TCsr {
            indptr,
            nbrs,
            eids,
            times,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Total adjacency entries (2x edges when undirected).
    pub fn num_entries(&self) -> usize {
        self.nbrs.len()
    }

    /// Iterates `(neighbor, edge_id, time)` for all of `node`'s
    /// adjacency, ascending in time.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Time)> + '_ {
        let (lo, hi) = self.range(node);
        (lo..hi).map(move |i| (self.nbrs[i], self.eids[i], self.times[i]))
    }

    /// Returns `(nbrs, eids, times)` slices of `node`'s adjacency
    /// restricted to edges with `time < t` (the temporal constraint of
    /// `N(i, t)` in the paper's Eq. 2).
    pub fn neighbors_before(&self, node: NodeId, t: Time) -> (&[NodeId], &[EdgeId], &[Time]) {
        let (lo, hi) = self.range(node);
        let slice = &self.times[lo..hi];
        let cut = lo + slice.partition_point(|&x| x < t);
        (
            &self.nbrs[lo..cut],
            &self.eids[lo..cut],
            &self.times[lo..cut],
        )
    }

    /// Node degree (total adjacency entries).
    pub fn degree(&self, node: NodeId) -> usize {
        let (lo, hi) = self.range(node);
        hi - lo
    }

    fn range(&self, node: NodeId) -> (usize, usize) {
        let v = node as usize;
        assert!(v + 1 < self.indptr.len(), "node {node} out of range");
        (self.indptr[v], self.indptr[v + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr(undirected: bool) -> TCsr {
        // edges (sorted by time): 0-1@1, 0-2@2, 1-2@3, 0-1@4
        TCsr::build(
            3,
            &[0, 0, 1, 0],
            &[1, 2, 2, 1],
            &[1.0, 2.0, 3.0, 4.0],
            undirected,
        )
    }

    #[test]
    fn directed_degrees() {
        let csr = sample_csr(false);
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.degree(2), 0);
        assert_eq!(csr.num_entries(), 4);
    }

    #[test]
    fn undirected_doubles_entries() {
        let csr = sample_csr(true);
        assert_eq!(csr.num_entries(), 8);
        assert_eq!(csr.degree(2), 2);
    }

    #[test]
    fn neighbors_sorted_by_time() {
        let csr = sample_csr(true);
        for v in 0..3 {
            let times: Vec<Time> = csr.neighbors(v).map(|(_, _, t)| t).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "node {v}: {times:?}");
        }
    }

    #[test]
    fn neighbors_before_respects_strict_cut() {
        let csr = sample_csr(true);
        let (nbrs, eids, times) = csr.neighbors_before(0, 2.0);
        assert_eq!(nbrs, &[1]);
        assert_eq!(eids, &[0]);
        assert_eq!(times, &[1.0]);
        // Strictly before: an edge exactly at t is excluded.
        let (nbrs, _, _) = csr.neighbors_before(0, 1.0);
        assert!(nbrs.is_empty());
        // Everything before a late time.
        let (nbrs, _, _) = csr.neighbors_before(0, 100.0);
        assert_eq!(nbrs.len(), 3);
    }

    #[test]
    fn unsorted_input_is_sorted_per_node() {
        let csr = TCsr::build(2, &[0, 0], &[1, 1], &[5.0, 1.0], false);
        let times: Vec<Time> = csr.neighbors(0).map(|(_, _, t)| t).collect();
        assert_eq!(times, vec![1.0, 5.0]);
        // Edge ids follow the permutation.
        let eids: Vec<EdgeId> = csr.neighbors(0).map(|(_, e, _)| e).collect();
        assert_eq!(eids, vec![1, 0]);
    }

    #[test]
    fn shared_edge_ids_between_directions() {
        let csr = sample_csr(true);
        let from0: Vec<EdgeId> = csr
            .neighbors(0)
            .filter(|&(n, _, _)| n == 2)
            .map(|(_, e, _)| e)
            .collect();
        let from2: Vec<EdgeId> = csr
            .neighbors(2)
            .filter(|&(n, _, _)| n == 0)
            .map(|(_, e, _)| e)
            .collect();
        assert_eq!(from0, from2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        sample_csr(false).degree(99);
    }
}
