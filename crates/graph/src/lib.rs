//! Temporal graph storage for the TGLite reproduction.
//!
//! A continuous-time dynamic graph (CTDG) is a stream of timestamped
//! edges. Following the paper (§3.4), [`TemporalGraph`] stores edges in
//! time-sorted COO form — "sorting based on timestamp so that the
//! common case of iterating through the edges chronologically will be
//! fast" — and lazily builds a temporal CSR ([`TCsr`]) for fast
//! neighbor lookups during sampling. The graph is also the container
//! for node/edge feature tensors and the [`Memory`]/[`Mailbox`] state
//! used by memory-based TGNN models (TGN, JODIE, APAN); the paper makes
//! these "part of the TGraph interface so that users can access these
//! data in a central place".
//!
//! # Examples
//!
//! ```
//! use tgl_graph::TemporalGraph;
//!
//! // A 3-node graph with 3 chronological interactions.
//! let g = TemporalGraph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 3);
//! let csr = g.tcsr();
//! assert_eq!(csr.neighbors(0).count(), 2); // undirected view
//! ```

mod graph;
mod mailbox;
mod memory;
pub mod snapshots;
mod tcsr;

pub use graph::TemporalGraph;
pub use mailbox::Mailbox;
pub use memory::Memory;
pub use tcsr::TCsr;

/// Node identifier.
pub type NodeId = u32;
/// Edge identifier (index into the time-sorted edge arrays).
pub type EdgeId = u32;
/// Edge timestamp. `f64` to cover the paper's datasets (max(t) up to
/// 1.2e9 in WikiTalk, beyond `f32` integer precision).
pub type Time = f64;
