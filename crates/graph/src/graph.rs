//! The central temporal-graph container.

use std::sync::{Arc, OnceLock};

use tgl_runtime::sync::RwLock;
use tgl_device::Device;
use tgl_tensor::Tensor;

use crate::{EdgeId, Mailbox, Memory, NodeId, TCsr, Time};

/// A continuous-time dynamic graph: time-sorted COO edges, lazily-built
/// T-CSR, feature tensors, and (for memory-based models) node
/// [`Memory`] and [`Mailbox`].
///
/// This is the Rust analogue of TGLite's `TGraph` (paper Table 2): "the
/// central hub for all data related to a CTDG dataset ... TGLite
/// automatically handles the construction and management of these graph
/// formats without intervention from the user."
#[derive(Debug)]
pub struct TemporalGraph {
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    time: Vec<Time>,
    num_nodes: usize,
    tcsr: OnceLock<Arc<TCsr>>,
    node_feats: RwLock<Option<Tensor>>,
    edge_feats: RwLock<Option<Tensor>>,
    memory: RwLock<Option<Arc<Memory>>>,
    mailbox: RwLock<Option<Arc<Mailbox>>>,
}

impl TemporalGraph {
    /// Builds a graph from `(src, dst, time)` triples, sorting edges
    /// chronologically (stable, so simultaneous edges keep input
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, mut edges: Vec<(NodeId, NodeId, Time)>) -> TemporalGraph {
        edges.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite timestamps"));
        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        let mut time = Vec::with_capacity(edges.len());
        for (s, d, t) in edges {
            assert!(
                (s as usize) < num_nodes && (d as usize) < num_nodes,
                "edge ({s}, {d}) out of range for {num_nodes} nodes"
            );
            src.push(s);
            dst.push(d);
            time.push(t);
        }
        TemporalGraph {
            src,
            dst,
            time,
            num_nodes,
            tcsr: OnceLock::new(),
            node_feats: RwLock::new(None),
            edge_feats: RwLock::new(None),
            memory: RwLock::new(None),
            mailbox: RwLock::new(None),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of temporal edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Source endpoints, time-sorted.
    pub fn src(&self) -> &[NodeId] {
        &self.src
    }

    /// Destination endpoints, time-sorted.
    pub fn dst(&self) -> &[NodeId] {
        &self.dst
    }

    /// Edge timestamps, ascending.
    pub fn times(&self) -> &[Time] {
        &self.time
    }

    /// The `i`-th chronological edge as `(src, dst, time)`.
    pub fn edge(&self, i: usize) -> (NodeId, NodeId, Time) {
        (self.src[i], self.dst[i], self.time[i])
    }

    /// The largest timestamp (`max(t)` column of the paper's Table 3),
    /// or 0 for an empty graph.
    pub fn max_time(&self) -> Time {
        self.time.last().copied().unwrap_or(0.0)
    }

    /// The T-CSR adjacency (built once on first use, undirected, per
    /// the paper's sampling treatment).
    pub fn tcsr(&self) -> Arc<TCsr> {
        self.tcsr
            .get_or_init(|| {
                Arc::new(TCsr::build(
                    self.num_nodes,
                    &self.src,
                    &self.dst,
                    &self.time,
                    true,
                ))
            })
            .clone()
    }

    // ---------------------------------------------------------------
    // Features
    // ---------------------------------------------------------------

    /// Installs node features (`[num_nodes, d_v]`).
    ///
    /// # Panics
    ///
    /// Panics if the row count mismatches `num_nodes`.
    pub fn set_node_feats(&self, feats: Tensor) {
        assert_eq!(feats.dim(0), self.num_nodes, "node feature rows");
        *self.node_feats.write() = Some(feats);
    }

    /// Installs edge features (`[num_edges, d_e]`, rows in chronological
    /// edge order).
    pub fn set_edge_feats(&self, feats: Tensor) {
        assert_eq!(feats.dim(0), self.num_edges(), "edge feature rows");
        *self.edge_feats.write() = Some(feats);
    }

    /// The full node feature tensor, if installed.
    pub fn node_feats(&self) -> Option<Tensor> {
        self.node_feats.read().clone()
    }

    /// The full edge feature tensor, if installed.
    pub fn edge_feats(&self) -> Option<Tensor> {
        self.edge_feats.read().clone()
    }

    /// Node feature width (0 if none installed).
    pub fn node_feat_dim(&self) -> usize {
        self.node_feats.read().as_ref().map_or(0, |t| t.dim(1))
    }

    /// Edge feature width (0 if none installed).
    pub fn edge_feat_dim(&self) -> usize {
        self.edge_feats.read().as_ref().map_or(0, |t| t.dim(1))
    }

    /// Gathers node feature rows (on the features' device). Missing
    /// features yield a `[n, 0]` tensor.
    pub fn node_feat_rows(&self, nodes: &[NodeId]) -> Tensor {
        match self.node_feats.read().as_ref() {
            Some(f) => f.index_select(&nodes.iter().map(|&n| n as usize).collect::<Vec<_>>()),
            None => Tensor::zeros([nodes.len(), 0]),
        }
    }

    /// Gathers edge feature rows. Missing features yield `[n, 0]`.
    pub fn edge_feat_rows(&self, edges: &[EdgeId]) -> Tensor {
        match self.edge_feats.read().as_ref() {
            Some(f) => f.index_select(&edges.iter().map(|&e| e as usize).collect::<Vec<_>>()),
            None => Tensor::zeros([edges.len(), 0]),
        }
    }

    // ---------------------------------------------------------------
    // Memory & mailbox (paper §3.4: part of the TGraph interface)
    // ---------------------------------------------------------------

    /// Attaches zeroed node memory of width `dim` on `device`,
    /// replacing any existing memory.
    pub fn attach_memory(&self, dim: usize, device: Device) {
        *self.memory.write() = Some(Arc::new(Memory::new(self.num_nodes, dim, device)));
    }

    /// Attaches a zeroed mailbox with `slots` messages of width `dim`.
    pub fn attach_mailbox(&self, slots: usize, dim: usize, device: Device) {
        *self.mailbox.write() = Some(Arc::new(Mailbox::new(self.num_nodes, slots, dim, device)));
    }

    /// The node memory.
    ///
    /// # Panics
    ///
    /// Panics if no memory was attached.
    pub fn memory(&self) -> Arc<Memory> {
        self.memory
            .read()
            .clone()
            .expect("no memory attached; call attach_memory first")
    }

    /// The mailbox.
    ///
    /// # Panics
    ///
    /// Panics if no mailbox was attached.
    pub fn mailbox(&self) -> Arc<Mailbox> {
        self.mailbox
            .read()
            .clone()
            .expect("no mailbox attached; call attach_mailbox first")
    }

    /// Whether node memory is attached.
    pub fn has_memory(&self) -> bool {
        self.memory.read().is_some()
    }

    /// Resets memory and mailbox (epoch boundary).
    pub fn reset_state(&self) {
        if let Some(m) = self.memory.read().as_ref() {
            m.reset();
        }
        if let Some(mb) = self.mailbox.read().as_ref() {
            mb.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TemporalGraph {
        // Deliberately unsorted input.
        TemporalGraph::from_edges(4, vec![(2, 3, 5.0), (0, 1, 1.0), (1, 2, 3.0)])
    }

    #[test]
    fn edges_sorted_by_time() {
        let g = graph();
        assert_eq!(g.times(), &[1.0, 3.0, 5.0]);
        assert_eq!(g.src(), &[0, 1, 2]);
        assert_eq!(g.dst(), &[1, 2, 3]);
        assert_eq!(g.edge(1), (1, 2, 3.0));
        assert_eq!(g.max_time(), 5.0);
    }

    #[test]
    fn stable_sort_keeps_simultaneous_order() {
        let g = TemporalGraph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(g.src(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_endpoint_panics() {
        TemporalGraph::from_edges(2, vec![(0, 5, 1.0)]);
    }

    #[test]
    fn tcsr_is_cached() {
        let g = graph();
        let a = g.tcsr();
        let b = g.tcsr();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn feature_roundtrip() {
        let g = graph();
        g.set_node_feats(Tensor::from_vec((0..8).map(|v| v as f32).collect(), [4, 2]));
        g.set_edge_feats(Tensor::from_vec(vec![9.0, 8.0, 7.0], [3, 1]));
        assert_eq!(g.node_feat_dim(), 2);
        assert_eq!(g.edge_feat_dim(), 1);
        assert_eq!(g.node_feat_rows(&[3, 0]).to_vec(), vec![6.0, 7.0, 0.0, 1.0]);
        assert_eq!(g.edge_feat_rows(&[2]).to_vec(), vec![7.0]);
    }

    #[test]
    fn missing_features_zero_width() {
        let g = graph();
        assert_eq!(g.node_feat_rows(&[0, 1]).dims(), &[2, 0]);
        assert_eq!(g.node_feat_dim(), 0);
    }

    #[test]
    fn memory_mailbox_lifecycle() {
        let g = graph();
        assert!(!g.has_memory());
        g.attach_memory(4, Device::Host);
        g.attach_mailbox(2, 6, Device::Host);
        assert!(g.has_memory());
        g.memory()
            .store(&[1], &Tensor::ones([1, 4]), &[3.0]);
        g.mailbox()
            .store(&[2], &Tensor::ones([1, 6]), &[3.0]);
        g.reset_state();
        assert_eq!(g.memory().rows(&[1]).to_vec(), vec![0.0; 4]);
        let (mail, _) = g.mailbox().latest(&[2]);
        assert_eq!(mail.to_vec(), vec![0.0; 6]);
    }

    #[test]
    #[should_panic(expected = "no memory attached")]
    fn memory_unattached_panics() {
        graph().memory();
    }
}
