//! Discrete-time snapshot views over a CTDG.
//!
//! The paper's future-work section (§7) proposes "extending support
//! for discrete-time models ... in accordance with TGLite's design
//! approach of providing core data abstractions and composable
//! operators ... perhaps as composable operators on a graph snapshot
//! abstraction." This module provides that abstraction: a
//! [`SnapshotView`] partitions the continuous edge stream into
//! time-window snapshots (DTDGs), each exposing the cumulative or
//! windowed edge set — without copying the underlying graph.

use std::ops::Range;

use crate::{NodeId, TemporalGraph, Time};

/// How a snapshot's edge set relates to the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SnapshotMode {
    /// Snapshot `k` contains only edges inside window `k`
    /// (disjoint DTDG deltas).
    #[default]
    Windowed,
    /// Snapshot `k` contains all edges up to the end of window `k`
    /// (growing graphs, as in EvolveGCN-style pipelines).
    Cumulative,
}

/// A partition of a temporal graph's chronological edge list into
/// equal-width time windows.
#[derive(Debug, Clone)]
pub struct SnapshotView<'g> {
    graph: &'g TemporalGraph,
    boundaries: Vec<Time>,
    starts: Vec<usize>,
    mode: SnapshotMode,
}

/// One discrete snapshot: a time window plus its edge-index range.
#[derive(Debug, Clone)]
pub struct Snapshot<'g> {
    graph: &'g TemporalGraph,
    /// The half-open time window `[t_start, t_end)` of this snapshot.
    pub window: (Time, Time),
    /// The edge-index range (chronological ids) this snapshot exposes.
    pub edges: Range<usize>,
}

impl<'g> SnapshotView<'g> {
    /// Splits `graph`'s time span `[0, max_t]` into `num` equal
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if `num == 0`.
    pub fn new(graph: &'g TemporalGraph, num: usize, mode: SnapshotMode) -> SnapshotView<'g> {
        assert!(num > 0, "need at least one snapshot");
        let max_t = graph.max_time();
        let width = if max_t > 0.0 { max_t / num as f64 } else { 1.0 };
        let boundaries: Vec<Time> = (0..=num).map(|i| width * i as f64).collect();
        // starts[i] = first edge index with time >= boundaries[i].
        let times = graph.times();
        let starts = boundaries
            .iter()
            .map(|&b| times.partition_point(|&t| t < b))
            .collect();
        SnapshotView {
            graph,
            boundaries,
            starts,
            mode,
        }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// True when the view has no snapshots (never: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn snapshot(&self, k: usize) -> Snapshot<'g> {
        assert!(k < self.len(), "snapshot {k} out of range");
        let start = match self.mode {
            SnapshotMode::Windowed => self.starts[k],
            SnapshotMode::Cumulative => 0,
        };
        // The final window is closed on the right so max-time edges
        // belong to the last snapshot.
        let end = if k + 1 == self.len() {
            self.graph.num_edges()
        } else {
            self.starts[k + 1]
        };
        Snapshot {
            graph: self.graph,
            window: (self.boundaries[k], self.boundaries[k + 1]),
            edges: start..end,
        }
    }

    /// Iterates the snapshots in time order.
    pub fn iter(&self) -> impl Iterator<Item = Snapshot<'g>> + '_ {
        (0..self.len()).map(|k| self.snapshot(k))
    }
}

impl Snapshot<'_> {
    /// Number of edges in this snapshot.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The `(src, dst, time)` triples of this snapshot.
    pub fn edge_iter(&self) -> impl Iterator<Item = (NodeId, NodeId, Time)> + '_ {
        self.edges.clone().map(|i| self.graph.edge(i))
    }

    /// Static per-node degree within this snapshot (undirected).
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.graph.num_nodes()];
        for (s, d, _) in self.edge_iter() {
            deg[s as usize] += 1;
            deg[d as usize] += 1;
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TemporalGraph {
        // 10 edges at t = 1..=10, max_t = 10.
        TemporalGraph::from_edges(
            4,
            (1..=10).map(|i| (0, 1 + (i % 3), i as Time)).collect(),
        )
    }

    #[test]
    fn windowed_snapshots_partition_edges() {
        let g = graph();
        let view = SnapshotView::new(&g, 5, SnapshotMode::Windowed);
        assert_eq!(view.len(), 5);
        assert!(!view.is_empty());
        let total: usize = view.iter().map(|s| s.num_edges()).sum();
        assert_eq!(total, g.num_edges(), "windows must partition the stream");
        // Edge times fall inside their windows (last window closed).
        for (k, snap) in view.iter().enumerate() {
            for (_, _, t) in snap.edge_iter() {
                assert!(t >= snap.window.0, "snapshot {k}: {t} < {}", snap.window.0);
                if k + 1 < view.len() {
                    assert!(t < snap.window.1);
                } else {
                    assert!(t <= snap.window.1);
                }
            }
        }
    }

    #[test]
    fn cumulative_snapshots_grow() {
        let g = graph();
        let view = SnapshotView::new(&g, 4, SnapshotMode::Cumulative);
        let sizes: Vec<usize> = view.iter().map(|s| s.num_edges()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
        assert_eq!(*sizes.last().unwrap(), g.num_edges());
        assert!(view.iter().all(|s| s.edges.start == 0));
    }

    #[test]
    fn single_snapshot_covers_everything() {
        let g = graph();
        let view = SnapshotView::new(&g, 1, SnapshotMode::Windowed);
        assert_eq!(view.snapshot(0).num_edges(), g.num_edges());
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let g = TemporalGraph::from_edges(3, vec![(0, 1, 1.0), (0, 2, 2.0)]);
        let view = SnapshotView::new(&g, 1, SnapshotMode::Windowed);
        assert_eq!(view.snapshot(0).degrees(), vec![2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_snapshot_panics() {
        let g = graph();
        SnapshotView::new(&g, 2, SnapshotMode::Windowed).snapshot(5);
    }

    #[test]
    fn empty_graph_snapshots() {
        let g = TemporalGraph::from_edges(2, vec![]);
        let view = SnapshotView::new(&g, 3, SnapshotMode::Windowed);
        assert_eq!(view.len(), 3);
        assert!(view.iter().all(|s| s.num_edges() == 0));
    }
}
