//! Node mailbox: per-node circular buffers of raw messages.
//!
//! Memory-based TGNN models avoid information leakage by storing raw
//! messages in a mailbox and consuming them in a *later* batch (paper
//! §2 "Model Training"). TGN/JODIE use one slot per node; APAN keeps a
//! mailbox of size 10 and attends over the stored mails.

use tgl_runtime::sync::RwLock;
use tgl_device::Device;
use tgl_tensor::Tensor;

use crate::{NodeId, Time};

/// "Storage for node mailbox message vectors and delivery timestamps"
/// (paper Table 2). Each node owns `slots` message rows used as a
/// circular buffer.
#[derive(Debug)]
pub struct Mailbox {
    data: Tensor, // [num_nodes * slots, dim]
    time: RwLock<Vec<Time>>,
    cursor: RwLock<Vec<u32>>,
    slots: usize,
    dim: usize,
}

impl Mailbox {
    /// Creates an empty mailbox with `slots` messages of width `dim`
    /// per node.
    pub fn new(num_nodes: usize, slots: usize, dim: usize, device: Device) -> Mailbox {
        assert!(slots >= 1, "mailbox needs at least one slot");
        Mailbox {
            data: Tensor::zeros_on([num_nodes * slots, dim], device),
            time: RwLock::new(vec![0.0; num_nodes * slots]),
            cursor: RwLock::new(vec![0; num_nodes]),
            slots,
            dim,
        }
    }

    /// Message width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Slots per node.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.data.dim(0) / self.slots
    }

    /// Stores one mail row per node (detached write), advancing each
    /// node's circular cursor.
    ///
    /// # Panics
    ///
    /// Panics if `mails` is not `[nodes.len(), dim]`.
    pub fn store(&self, nodes: &[NodeId], mails: &Tensor, times: &[Time]) {
        tgl_obs::counter!("mailbox.mails_stored").add(nodes.len() as u64);
        assert_eq!(mails.dims(), &[nodes.len(), self.dim], "mailbox store shape");
        assert_eq!(nodes.len(), times.len(), "mailbox store times length");
        let src = mails.to_vec();
        let mut cursor = self.cursor.write();
        let mut t = self.time.write();
        self.data.with_data_mut(|data| {
            for (k, &n) in nodes.iter().enumerate() {
                let n = n as usize;
                let slot = cursor[n] as usize % self.slots;
                let row = n * self.slots + slot;
                data[row * self.dim..(row + 1) * self.dim]
                    .copy_from_slice(&src[k * self.dim..(k + 1) * self.dim]);
                t[row] = times[k];
                cursor[n] = cursor[n].wrapping_add(1);
            }
        });
    }

    /// Gathers the most recently stored mail row per node, with its
    /// delivery time (zeros for never-mailed nodes).
    pub fn latest(&self, nodes: &[NodeId]) -> (Tensor, Vec<Time>) {
        let cursor = self.cursor.read();
        let t = self.time.read();
        let mut rows = Vec::with_capacity(nodes.len());
        let mut times = Vec::with_capacity(nodes.len());
        for &n in nodes {
            let n = n as usize;
            let last = (cursor[n] as usize + self.slots - 1) % self.slots;
            let row = n * self.slots + last;
            rows.push(row);
            times.push(t[row]);
        }
        if tgl_obs::insight::active() {
            self.observe_depths(nodes, &t);
        }
        drop(t);
        drop(cursor);
        tgl_obs::counter!("mailbox.rows_read").add(nodes.len() as u64);
        // A zero delivery time means the slot never received a mail.
        let stale = times.iter().filter(|&&ts| ts == 0.0).count();
        tgl_obs::counter!("mailbox.stale_reads").add(stale as u64);
        (self.data.index_select(&rows), times)
    }

    /// Gathers *all* slots for each node as `[nodes.len()*slots, dim]`,
    /// plus per-row delivery times and per-row owner index (0..n) for
    /// segmented aggregation (APAN attends over these).
    pub fn all_slots(&self, nodes: &[NodeId]) -> (Tensor, Vec<Time>, Vec<usize>) {
        let t = self.time.read();
        let mut rows = Vec::with_capacity(nodes.len() * self.slots);
        let mut times = Vec::with_capacity(nodes.len() * self.slots);
        let mut owners = Vec::with_capacity(nodes.len() * self.slots);
        for (k, &n) in nodes.iter().enumerate() {
            let n = n as usize;
            for s in 0..self.slots {
                let row = n * self.slots + s;
                rows.push(row);
                times.push(t[row]);
                owners.push(k);
            }
        }
        if tgl_obs::insight::active() {
            self.observe_depths(nodes, &t);
        }
        drop(t);
        tgl_obs::counter!("mailbox.rows_read").add(rows.len() as u64);
        (self.data.index_select(&rows), times, owners)
    }

    /// Reports per-node occupied-slot counts (a slot with a nonzero
    /// delivery time has received a mail) to the insight layer — "how
    /// full are the mailboxes this batch reads from".
    fn observe_depths(&self, nodes: &[NodeId], times: &[Time]) {
        let depths: Vec<u64> = nodes
            .iter()
            .map(|&n| {
                let n = n as usize;
                (0..self.slots)
                    .filter(|&s| times[n * self.slots + s] != 0.0)
                    .count() as u64
            })
            .collect();
        tgl_obs::insight::observe_mailbox_depths(&depths);
    }

    /// Zeroes all mails, times, and cursors.
    pub fn reset(&self) {
        self.data.with_data_mut(|d| d.fill(0.0));
        self.time.write().fill(0.0);
        self.cursor.write().fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_latest_roundtrip() {
        let mb = Mailbox::new(3, 1, 2, Device::Host);
        mb.store(
            &[1],
            &Tensor::from_vec(vec![5.0, 6.0], [1, 2]),
            &[42.0],
        );
        let (mail, times) = mb.latest(&[1, 0]);
        assert_eq!(mail.to_vec(), vec![5.0, 6.0, 0.0, 0.0]);
        assert_eq!(times, vec![42.0, 0.0]);
    }

    #[test]
    fn circular_buffer_overwrites_oldest() {
        let mb = Mailbox::new(1, 2, 1, Device::Host);
        for i in 0..3 {
            mb.store(
                &[0],
                &Tensor::from_vec(vec![i as f32], [1, 1]),
                &[i as Time],
            );
        }
        // Slots hold mails 1 and 2 now; latest is 2.
        let (mail, times) = mb.latest(&[0]);
        assert_eq!(mail.to_vec(), vec![2.0]);
        assert_eq!(times, vec![2.0]);
        let (all, all_t, owners) = mb.all_slots(&[0]);
        let mut vals = all.to_vec();
        vals.sort_by(f32::total_cmp);
        assert_eq!(vals, vec![1.0, 2.0]);
        assert_eq!(all_t.len(), 2);
        assert_eq!(owners, vec![0, 0]);
    }

    #[test]
    fn all_slots_owner_segments() {
        let mb = Mailbox::new(4, 3, 1, Device::Host);
        let (_, _, owners) = mb.all_slots(&[2, 0]);
        assert_eq!(owners, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn reset_clears_everything() {
        let mb = Mailbox::new(1, 1, 1, Device::Host);
        mb.store(&[0], &Tensor::ones([1, 1]), &[7.0]);
        mb.reset();
        let (mail, times) = mb.latest(&[0]);
        assert_eq!(mail.to_vec(), vec![0.0]);
        assert_eq!(times, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "mailbox store shape")]
    fn store_wrong_width_panics() {
        Mailbox::new(1, 1, 2, Device::Host).store(&[0], &Tensor::ones([1, 3]), &[0.0]);
    }
}
