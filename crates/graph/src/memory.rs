//! Node memory: per-node state vectors with last-update timestamps.

use tgl_runtime::sync::RwLock;
use tgl_device::Device;
use tgl_tensor::Tensor;

use crate::{NodeId, Time};

/// "Storage for node memory vectors and their last updated timestamps"
/// (paper Table 2).
///
/// Memory updates happen *outside* the autograd graph: models compute
/// new memory as graph tensors (so gradients reach the updater's
/// parameters through the batch loss), then [`Memory::store`] the
/// detached values, mirroring TGL's `last_updated_mem` pattern.
#[derive(Debug)]
pub struct Memory {
    data: Tensor,
    time: RwLock<Vec<Time>>,
    dim: usize,
}

impl Memory {
    /// Creates zeroed memory for `num_nodes` nodes of width `dim` on
    /// `device`.
    pub fn new(num_nodes: usize, dim: usize, device: Device) -> Memory {
        Memory {
            data: Tensor::zeros_on([num_nodes, dim], device),
            time: RwLock::new(vec![0.0; num_nodes]),
            dim,
        }
    }

    /// Memory vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.data.dim(0)
    }

    /// The device tier the memory tensor lives on.
    pub fn device(&self) -> Device {
        self.data.device()
    }

    /// Gathers memory rows for `nodes` as a detached `[n, dim]` tensor
    /// (on the memory's device).
    pub fn rows(&self, nodes: &[NodeId]) -> Tensor {
        tgl_obs::counter!("memory.rows_read").add(nodes.len() as u64);
        let idx: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();
        self.data.index_select(&idx)
    }

    /// Last-update timestamps for `nodes`.
    pub fn times(&self, nodes: &[NodeId]) -> Vec<Time> {
        let t = self.time.read();
        let times: Vec<Time> = nodes.iter().map(|&n| t[n as usize]).collect();
        // t == 0.0 means never updated: the read serves the zero
        // initialization rather than real state.
        let stale = times.iter().filter(|&&ts| ts == 0.0).count();
        tgl_obs::counter!("memory.stale_reads").add(stale as u64);
        times
    }

    /// Overwrites memory rows and their update times (detached write).
    ///
    /// # Panics
    ///
    /// Panics if `values` is not `[nodes.len(), dim]`.
    pub fn store(&self, nodes: &[NodeId], values: &Tensor, times: &[Time]) {
        tgl_obs::counter!("memory.rows_written").add(nodes.len() as u64);
        assert_eq!(values.dims(), &[nodes.len(), self.dim], "memory store shape");
        assert_eq!(nodes.len(), times.len(), "memory store times length");
        // Scatter straight from the source storage — no staging copy.
        values.with_data(|src| {
            self.data.with_data_mut(|data| {
                for (k, &n) in nodes.iter().enumerate() {
                    let n = n as usize;
                    data[n * self.dim..(n + 1) * self.dim]
                        .copy_from_slice(&src[k * self.dim..(k + 1) * self.dim]);
                }
            });
        });
        let mut t = self.time.write();
        for (&n, &ts) in nodes.iter().zip(times) {
            t[n as usize] = ts;
        }
    }

    /// Zeroes all memory and timestamps (start of a training epoch, to
    /// avoid information leakage across epochs).
    pub fn reset(&self) {
        self.data.with_data_mut(|d| d.fill(0.0));
        self.time.write().fill(0.0);
    }

    /// Raw handle to the full memory tensor (for whole-table transfer
    /// or inspection).
    pub fn data(&self) -> &Tensor {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m = Memory::new(4, 3, Device::Host);
        assert_eq!(m.rows(&[0, 3]).to_vec(), vec![0.0; 6]);
        assert_eq!(m.times(&[0, 1, 2, 3]), vec![0.0; 4]);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.num_nodes(), 4);
    }

    #[test]
    fn store_and_gather_roundtrip() {
        let m = Memory::new(3, 2, Device::Host);
        let vals = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        m.store(&[2, 0], &vals, &[10.0, 20.0]);
        assert_eq!(m.rows(&[0]).to_vec(), vec![3.0, 4.0]);
        assert_eq!(m.rows(&[2]).to_vec(), vec![1.0, 2.0]);
        assert_eq!(m.rows(&[1]).to_vec(), vec![0.0, 0.0]);
        assert_eq!(m.times(&[2, 0, 1]), vec![10.0, 20.0, 0.0]);
    }

    #[test]
    fn reset_clears() {
        let m = Memory::new(2, 2, Device::Host);
        m.store(&[1], &Tensor::ones([1, 2]), &[5.0]);
        m.reset();
        assert_eq!(m.rows(&[1]).to_vec(), vec![0.0, 0.0]);
        assert_eq!(m.times(&[1]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "memory store shape")]
    fn store_shape_mismatch_panics() {
        let m = Memory::new(2, 2, Device::Host);
        m.store(&[0], &Tensor::ones([1, 3]), &[1.0]);
    }

    #[test]
    fn repeated_store_keeps_latest() {
        let m = Memory::new(1, 1, Device::Host);
        m.store(&[0], &Tensor::from_vec(vec![1.0], [1, 1]), &[1.0]);
        m.store(&[0], &Tensor::from_vec(vec![9.0], [1, 1]), &[2.0]);
        assert_eq!(m.rows(&[0]).to_vec(), vec![9.0]);
        assert_eq!(m.times(&[0]), vec![2.0]);
    }
}
