//! A pool of reusable pinned staging buffers.
//!
//! TGLite's `preload()` operator uses pre-allocated pinned host memory so
//! that host->device copies take the DMA fast path without a staging
//! copy. This pool models that: buffers acquired from it are "pinned"
//! (transfers from them use [`TransferKind::HostToAccelPinned`]) and are
//! recycled instead of reallocated, mirroring the paper's statement that
//! "TGLite manages a pool of pre-allocated pinned memory so no manual
//! user intervention is required".

use tgl_runtime::sync::Mutex;

use crate::transfer::TransferKind;

/// A pool of reusable pinned `f32` staging buffers, bucketed by capacity.
#[derive(Debug, Default)]
pub struct PinnedPool {
    free: Mutex<Vec<Vec<f32>>>,
    acquired: Mutex<u64>,
    reused: Mutex<u64>,
}

impl PinnedPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires a pinned buffer with room for at least `len` floats.
    ///
    /// Reuses a previously released buffer when one is large enough;
    /// otherwise allocates fresh. The returned buffer has length exactly
    /// `len` (contents unspecified).
    pub fn acquire(&self, len: usize) -> Vec<f32> {
        *self.acquired.lock() += 1;
        let mut free = self.free.lock();
        if let Some(pos) = free.iter().position(|b| b.capacity() >= len) {
            let mut buf = free.swap_remove(pos);
            buf.resize(len, 0.0);
            *self.reused.lock() += 1;
            return buf;
        }
        drop(free);
        vec![0.0; len]
    }

    /// Returns a buffer to the pool for reuse.
    pub fn release(&self, buf: Vec<f32>) {
        self.free.lock().push(buf);
    }

    /// The transfer kind for copies sourced from this pool's buffers.
    pub fn transfer_kind(&self) -> TransferKind {
        TransferKind::HostToAccelPinned
    }

    /// `(acquire_calls, reuse_hits)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (*self.acquired.lock(), *self.reused.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_returns_requested_len() {
        let pool = PinnedPool::new();
        let b = pool.acquire(100);
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn release_then_acquire_reuses() {
        let pool = PinnedPool::new();
        let b = pool.acquire(64);
        let ptr = b.as_ptr();
        pool.release(b);
        let b2 = pool.acquire(32);
        assert_eq!(b2.as_ptr(), ptr, "expected buffer reuse");
        let (acq, reused) = pool.stats();
        assert_eq!(acq, 2);
        assert_eq!(reused, 1);
    }

    #[test]
    fn too_small_buffer_not_reused() {
        let pool = PinnedPool::new();
        let b = pool.acquire(8);
        pool.release(b);
        let b2 = pool.acquire(1024);
        assert_eq!(b2.len(), 1024);
        let (_, reused) = pool.stats();
        assert_eq!(reused, 0);
    }

    #[test]
    fn pool_is_pinned_kind() {
        let pool = PinnedPool::new();
        assert_eq!(pool.transfer_kind(), TransferKind::HostToAccelPinned);
    }
}
