//! Simulated two-tier memory system for the TGLite reproduction.
//!
//! The TGLite paper evaluates training/inference in two placements: all
//! tensor data resident in GPU device memory ("all-on-GPU") versus data
//! resident in CPU host memory and transferred per batch ("CPU-to-GPU").
//! This crate substitutes for a real accelerator by modeling:
//!
//! * two memory tiers ([`Device::Host`] and [`Device::Accel`]),
//! * a metered transfer engine with a calibrated cost model (bandwidth +
//!   per-transfer latency, with pinned memory getting a faster path),
//! * per-tier allocation tracking with an optional capacity cap, so that
//!   the paper's out-of-memory behaviour (Table 7) is reproducible.
//!
//! All *compute* still happens on the CPU; only data placement and
//! movement are simulated. Byte counts are real — every tensor crossing
//! the tier boundary is metered by the tensor crate.
//!
//! # Examples
//!
//! ```
//! use tgl_device::{Device, TransferKind, alloc, free, transfer, stats, reset_all};
//!
//! reset_all();
//! alloc(Device::Accel, 1024)?;
//! transfer(4096, TransferKind::HostToAccelPinned);
//! assert!(stats().accel_used_bytes >= 1024);
//! assert!(stats().h2d_bytes >= 4096);
//! free(Device::Accel, 1024);
//! # Ok::<(), tgl_device::DeviceError>(())
//! ```

mod pool;
mod registry;
mod transfer;

pub use pool::PinnedPool;
pub use registry::{alloc, capacity, free, set_capacity, DeviceError};
pub use transfer::{set_transfer_model, transfer, TransferKind, TransferModel};

use std::fmt;

/// A memory tier in the simulated system.
///
/// `Host` stands in for CPU DRAM; `Accel` stands in for GPU device
/// memory. Tensors are tagged with the tier their storage lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Device {
    /// CPU host memory (always uncapped).
    #[default]
    Host,
    /// Simulated accelerator memory (optionally capacity-capped).
    Accel,
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::Host => write!(f, "host"),
            Device::Accel => write!(f, "accel"),
        }
    }
}

/// A point-in-time snapshot of allocation and transfer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Bytes currently allocated on the accelerator tier.
    pub accel_used_bytes: u64,
    /// High-water mark of accelerator allocation since the last reset.
    pub accel_peak_bytes: u64,
    /// Bytes currently allocated on the host tier.
    pub host_used_bytes: u64,
    /// Total bytes moved host -> accelerator.
    pub h2d_bytes: u64,
    /// Total bytes moved accelerator -> host.
    pub d2h_bytes: u64,
    /// Number of individual transfer operations.
    pub transfer_count: u64,
    /// Simulated nanoseconds spent in transfers (also spent as wall time
    /// when the transfer model is enabled).
    pub simulated_transfer_ns: u64,
}

/// Returns a snapshot of the global allocation/transfer statistics.
pub fn stats() -> Stats {
    let (accel_used, accel_peak, host_used) = registry::usage();
    let t = transfer::counters();
    Stats {
        accel_used_bytes: accel_used,
        accel_peak_bytes: accel_peak,
        host_used_bytes: host_used,
        h2d_bytes: t.h2d_bytes,
        d2h_bytes: t.d2h_bytes,
        transfer_count: t.count,
        simulated_transfer_ns: t.simulated_ns,
    }
}

/// Resets transfer counters and the allocation peak watermark only —
/// capacity caps and the transfer model are left in place. Use between
/// measured runs.
pub fn reset_stats() {
    registry::reset_peak();
    transfer::reset_counters();
}

/// Resets transfer counters and the allocation peak (but not current
/// usage, which reflects live tensors), removes any capacity cap, and
/// disables the transfer cost model.
pub fn reset_all() {
    registry::reset_peak();
    registry::set_capacity(Device::Accel, None);
    transfer::reset_counters();
    transfer::set_transfer_model(TransferModel::disabled());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_display() {
        assert_eq!(Device::Host.to_string(), "host");
        assert_eq!(Device::Accel.to_string(), "accel");
    }

    #[test]
    fn device_default_is_host() {
        assert_eq!(Device::default(), Device::Host);
    }

    #[test]
    fn stats_snapshot_reflects_allocs() {
        let before = stats();
        alloc(Device::Accel, 512).unwrap();
        let after = stats();
        assert_eq!(after.accel_used_bytes, before.accel_used_bytes + 512);
        free(Device::Accel, 512);
    }
}
