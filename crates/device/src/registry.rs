//! Per-tier allocation tracking with optional capacity enforcement.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use tgl_runtime::sync::Mutex;

use crate::Device;

/// Error returned when a simulated device allocation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The accelerator tier would exceed its configured capacity.
    ///
    /// This mirrors a CUDA out-of-memory failure: the paper's Table 7
    /// reports TGL running out of GPU memory on the V100 for large
    /// datasets while TGLite completes.
    OutOfDeviceMemory {
        /// Bytes the failing request asked for.
        requested: u64,
        /// Bytes already in use on the tier.
        used: u64,
        /// The configured capacity of the tier.
        capacity: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfDeviceMemory {
                requested,
                used,
                capacity,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes with {used}/{capacity} in use"
            ),
        }
    }
}

impl Error for DeviceError {}

static ACCEL_USED: AtomicU64 = AtomicU64::new(0);
static ACCEL_PEAK: AtomicU64 = AtomicU64::new(0);
static HOST_USED: AtomicU64 = AtomicU64::new(0);
static ACCEL_CAPACITY: Mutex<Option<u64>> = Mutex::new(None);

/// Records an allocation of `bytes` on `device`.
///
/// # Errors
///
/// Returns [`DeviceError::OutOfDeviceMemory`] if `device` is
/// [`Device::Accel`] and a capacity cap is set that the allocation would
/// exceed. Host allocations never fail.
pub fn alloc(device: Device, bytes: u64) -> Result<(), DeviceError> {
    match device {
        Device::Host => {
            HOST_USED.fetch_add(bytes, Ordering::Relaxed);
            Ok(())
        }
        Device::Accel => {
            let cap = *ACCEL_CAPACITY.lock();
            let prev = ACCEL_USED.fetch_add(bytes, Ordering::Relaxed);
            if let Some(capacity) = cap {
                if prev + bytes > capacity {
                    ACCEL_USED.fetch_sub(bytes, Ordering::Relaxed);
                    return Err(DeviceError::OutOfDeviceMemory {
                        requested: bytes,
                        used: prev,
                        capacity,
                    });
                }
            }
            ACCEL_PEAK.fetch_max(prev + bytes, Ordering::Relaxed);
            Ok(())
        }
    }
}

/// Records a deallocation of `bytes` on `device`.
pub fn free(device: Device, bytes: u64) {
    let counter = match device {
        Device::Host => &HOST_USED,
        Device::Accel => &ACCEL_USED,
    };
    // Saturating: a mismatched free is a bug in the caller, but clamping
    // keeps the counters sane instead of wrapping to u64::MAX.
    counter
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(bytes))
        })
        .ok();
}

/// Sets (or clears) the capacity cap of a tier in bytes.
///
/// Only the accelerator tier supports a cap; setting a cap on
/// [`Device::Host`] is ignored.
pub fn set_capacity(device: Device, cap: Option<u64>) {
    if device == Device::Accel {
        *ACCEL_CAPACITY.lock() = cap;
    }
}

/// Returns the current capacity cap of a tier, if any.
pub fn capacity(device: Device) -> Option<u64> {
    match device {
        Device::Host => None,
        Device::Accel => *ACCEL_CAPACITY.lock(),
    }
}

/// Returns `(accel_used, accel_peak, host_used)` in bytes.
pub(crate) fn usage() -> (u64, u64, u64) {
    (
        ACCEL_USED.load(Ordering::Relaxed),
        ACCEL_PEAK.load(Ordering::Relaxed),
        HOST_USED.load(Ordering::Relaxed),
    )
}

/// Resets the accelerator peak-usage watermark to current usage.
pub(crate) fn reset_peak() {
    ACCEL_PEAK.store(ACCEL_USED.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let (used0, _, _) = usage();
        alloc(Device::Accel, 100).unwrap();
        let (used1, _, _) = usage();
        assert_eq!(used1, used0 + 100);
        free(Device::Accel, 100);
        let (used2, _, _) = usage();
        assert_eq!(used2, used0);
    }

    #[test]
    fn host_alloc_never_fails() {
        alloc(Device::Host, u64::MAX / 4).unwrap();
        free(Device::Host, u64::MAX / 4);
    }

    #[test]
    fn capacity_cap_enforced() {
        // Use a huge request so the cap trips regardless of what other
        // concurrently-running tests have allocated.
        set_capacity(Device::Accel, Some(1 << 20));
        let err = alloc(Device::Accel, 1 << 30).unwrap_err();
        match err {
            DeviceError::OutOfDeviceMemory {
                requested,
                capacity,
                ..
            } => {
                assert_eq!(requested, 1 << 30);
                assert_eq!(capacity, 1 << 20);
            }
        }
        set_capacity(Device::Accel, None);
        // Once the cap is lifted the same request succeeds.
        alloc(Device::Accel, 1 << 30).unwrap();
        free(Device::Accel, 1 << 30);
    }

    #[test]
    fn failed_alloc_does_not_leak_usage() {
        set_capacity(Device::Accel, Some(1));
        let (used0, _, _) = usage();
        assert!(alloc(Device::Accel, 1 << 40).is_err());
        let (used1, _, _) = usage();
        assert_eq!(used0, used1);
        set_capacity(Device::Accel, None);
    }

    #[test]
    fn oom_error_display_mentions_bytes() {
        let e = DeviceError::OutOfDeviceMemory {
            requested: 10,
            used: 5,
            capacity: 12,
        };
        let msg = e.to_string();
        assert!(msg.contains("10"));
        assert!(msg.contains("5/12"));
    }

    #[test]
    fn mismatched_free_saturates() {
        let (used0, _, _) = usage();
        free(Device::Accel, u64::MAX);
        let (used1, _, _) = usage();
        assert!(used1 <= used0);
        // Restore balance for other tests (best effort).
        alloc(Device::Accel, used0.saturating_sub(used1)).ok();
    }
}
