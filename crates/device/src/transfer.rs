//! Metered host<->accelerator transfer engine with a calibrated cost model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tgl_runtime::sync::RwLock;

/// Direction and pinning of a simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Host to accelerator through pageable (unpinned) memory. The real
    /// hardware path stages through a pinned bounce buffer, so this is
    /// the slow path.
    HostToAccelPageable,
    /// Host to accelerator from pinned memory (DMA-friendly fast path,
    /// used by TGLite's `preload()` operator).
    HostToAccelPinned,
    /// Accelerator to host.
    AccelToHost,
}

impl TransferKind {
    fn is_h2d(self) -> bool {
        matches!(
            self,
            TransferKind::HostToAccelPageable | TransferKind::HostToAccelPinned
        )
    }
}

/// Cost model for tier-crossing transfers.
///
/// Bandwidths are in bytes per simulated second; `latency_ns` is charged
/// once per transfer (kernel-launch / DMA-setup cost). When `enabled` is
/// false, transfers are metered but cost no wall time — the "all-on-GPU"
/// configuration of the paper, where batch data never crosses the bus.
///
/// Defaults are calibrated to a PCIe 3.0 x16 link as seen by the paper's
/// V100 machine: ~6 GB/s pageable, ~12 GB/s pinned, ~10 us launch
/// latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Whether transfers cost (simulated) wall time.
    pub enabled: bool,
    /// Pageable host->device bandwidth, bytes/second.
    pub pageable_bw: f64,
    /// Pinned host->device bandwidth, bytes/second.
    pub pinned_bw: f64,
    /// Device->host bandwidth, bytes/second.
    pub d2h_bw: f64,
    /// Fixed per-transfer latency in nanoseconds.
    pub latency_ns: u64,
    /// Time scale factor: simulated seconds of transfer per wall second
    /// spent waiting. `1.0` waits in real time; larger values compress
    /// the wait so benchmarks finish quicker while keeping relative
    /// costs intact.
    pub time_compression: f64,
}

impl TransferModel {
    /// A model in which transfers are metered but free (all-on-GPU case).
    pub fn disabled() -> Self {
        TransferModel {
            enabled: false,
            ..TransferModel::pcie_v100()
        }
    }

    /// PCIe 3.0 x16 calibration (V100-class machine).
    pub fn pcie_v100() -> Self {
        TransferModel {
            enabled: true,
            pageable_bw: 6.0e9,
            pinned_bw: 12.0e9,
            d2h_bw: 6.0e9,
            latency_ns: 10_000,
            time_compression: 1.0,
        }
    }

    /// A PCIe model with bandwidths divided by `compute_slowdown`.
    ///
    /// The reproduction's CPU substrate computes roughly
    /// `compute_slowdown`× slower than the paper's GPUs, so scaling the
    /// link down by the same factor preserves the paper's
    /// transfer-time : compute-time ratio — the quantity the
    /// all-on-GPU vs CPU-to-GPU contrast (Figs. 5/6) actually measures.
    pub fn scaled(base: TransferModel, compute_slowdown: f64) -> Self {
        TransferModel {
            enabled: true,
            pageable_bw: base.pageable_bw / compute_slowdown,
            pinned_bw: base.pinned_bw / compute_slowdown,
            d2h_bw: base.d2h_bw / compute_slowdown,
            latency_ns: (base.latency_ns as f64 * compute_slowdown.cbrt()) as u64,
            time_compression: base.time_compression,
        }
    }

    /// PCIe 4.0 x16 calibration (A100-class machine).
    pub fn pcie_a100() -> Self {
        TransferModel {
            enabled: true,
            pageable_bw: 12.0e9,
            pinned_bw: 24.0e9,
            d2h_bw: 12.0e9,
            latency_ns: 8_000,
            time_compression: 1.0,
        }
    }

    /// Simulated nanoseconds a transfer of `bytes` with `kind` costs.
    pub fn cost_ns(&self, bytes: u64, kind: TransferKind) -> u64 {
        if !self.enabled {
            return 0;
        }
        let bw = match kind {
            TransferKind::HostToAccelPageable => self.pageable_bw,
            TransferKind::HostToAccelPinned => self.pinned_bw,
            TransferKind::AccelToHost => self.d2h_bw,
        };
        self.latency_ns + (bytes as f64 / bw * 1e9) as u64
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel::disabled()
    }
}

static MODEL: RwLock<TransferModel> = RwLock::new(TransferModel {
    enabled: false,
    pageable_bw: 6.0e9,
    pinned_bw: 12.0e9,
    d2h_bw: 6.0e9,
    latency_ns: 10_000,
    time_compression: 1.0,
});

static H2D_BYTES: AtomicU64 = AtomicU64::new(0);
static D2H_BYTES: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);
static SIMULATED_NS: AtomicU64 = AtomicU64::new(0);

/// Installs a new global transfer cost model.
pub fn set_transfer_model(model: TransferModel) {
    *MODEL.write() = model;
}

/// Meters (and, if the model is enabled, waits out) a transfer of
/// `bytes` across the tier boundary. Returns the simulated cost in
/// nanoseconds.
pub fn transfer(bytes: u64, kind: TransferKind) -> u64 {
    let model = *MODEL.read();
    COUNT.fetch_add(1, Ordering::Relaxed);
    tgl_obs::counter!("transfer.count").incr();
    tgl_obs::profile::note_transfer(bytes);
    if kind.is_h2d() {
        H2D_BYTES.fetch_add(bytes, Ordering::Relaxed);
        tgl_obs::counter!("transfer.h2d_bytes").add(bytes);
    } else {
        D2H_BYTES.fetch_add(bytes, Ordering::Relaxed);
        tgl_obs::counter!("transfer.d2h_bytes").add(bytes);
    }
    match kind {
        TransferKind::HostToAccelPageable => {
            tgl_obs::counter!("transfer.pageable_count").incr()
        }
        TransferKind::HostToAccelPinned => tgl_obs::counter!("transfer.pinned_count").incr(),
        TransferKind::AccelToHost => tgl_obs::counter!("transfer.d2h_count").incr(),
    }
    let ns = model.cost_ns(bytes, kind);
    SIMULATED_NS.fetch_add(ns, Ordering::Relaxed);
    tgl_obs::counter!("transfer.sim_ns").add(ns);
    // Latency distribution of individual transfers (simulated ns — the
    // modeled device-link cost, 0 when the model is disabled).
    tgl_obs::histogram!("transfer.latency_ns").record(ns);
    if ns > 0 {
        let wait = Duration::from_nanos((ns as f64 / model.time_compression.max(1.0)) as u64);
        spin_wait(wait);
    }
    ns
}

/// Busy-waits for `dur` with sub-millisecond precision (thread::sleep is
/// too coarse for the 10us-scale latencies being modeled).
fn spin_wait(dur: Duration) {
    let start = Instant::now();
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Counters {
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub count: u64,
    pub simulated_ns: u64,
}

pub(crate) fn counters() -> Counters {
    Counters {
        h2d_bytes: H2D_BYTES.load(Ordering::Relaxed),
        d2h_bytes: D2H_BYTES.load(Ordering::Relaxed),
        count: COUNT.load(Ordering::Relaxed),
        simulated_ns: SIMULATED_NS.load(Ordering::Relaxed),
    }
}

pub(crate) fn reset_counters() {
    H2D_BYTES.store(0, Ordering::Relaxed);
    D2H_BYTES.store(0, Ordering::Relaxed);
    COUNT.store(0, Ordering::Relaxed);
    SIMULATED_NS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_costs_nothing() {
        let m = TransferModel::disabled();
        assert_eq!(m.cost_ns(1 << 30, TransferKind::HostToAccelPageable), 0);
    }

    #[test]
    fn pinned_is_faster_than_pageable() {
        let m = TransferModel::pcie_v100();
        let pageable = m.cost_ns(1 << 20, TransferKind::HostToAccelPageable);
        let pinned = m.cost_ns(1 << 20, TransferKind::HostToAccelPinned);
        assert!(pinned < pageable, "pinned {pinned} !< pageable {pageable}");
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let m = TransferModel::pcie_v100();
        let tiny = m.cost_ns(4, TransferKind::HostToAccelPinned);
        assert!(tiny >= m.latency_ns);
        assert!(tiny < m.latency_ns + 1_000);
    }

    #[test]
    fn cost_scales_with_bytes() {
        let m = TransferModel::pcie_v100();
        let one = m.cost_ns(1 << 20, TransferKind::AccelToHost);
        let two = m.cost_ns(2 << 20, TransferKind::AccelToHost);
        assert!(two > one);
    }

    #[test]
    fn transfer_meters_bytes_and_count() {
        let before = counters();
        transfer(123, TransferKind::HostToAccelPinned);
        transfer(77, TransferKind::AccelToHost);
        let after = counters();
        assert!(after.h2d_bytes >= before.h2d_bytes + 123);
        assert!(after.d2h_bytes >= before.d2h_bytes + 77);
        assert!(after.count >= before.count + 2);
    }

    #[test]
    fn a100_link_is_faster_than_v100() {
        let v = TransferModel::pcie_v100();
        let a = TransferModel::pcie_a100();
        let bytes = 8 << 20;
        assert!(
            a.cost_ns(bytes, TransferKind::HostToAccelPinned)
                < v.cost_ns(bytes, TransferKind::HostToAccelPinned)
        );
    }
}
