//! APAN: asynchronous propagation attention network (paper Listing 6).

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::SeedableRng;
use tgl_graph::NodeId;
use tgl_sampler::SamplingStrategy;
use tgl_tensor::nn::{GruCell, Linear, Mlp, Module};
use tgl_tensor::ops::{cat, segment_softmax, segment_sum};
use tgl_tensor::{no_grad, Tensor};
use tglite::nn::TimeEncode;
use tglite::{op, TBatch, TBlock, TContext, TSampler};

use crate::{score_embeddings, EdgePredictor, ModelConfig, OptFlags, TemporalModel};

/// The APAN model. "While other models first sample the neighbors and
/// then generate embeddings, APAN reorders and swaps this around by
/// first performing embedding generation using stored messages, then
/// propagating messages to neighbors" (paper Appendix A).
///
/// * Embeddings: attention over each node's mailbox slots (no
///   neighborhood sampling on the embedding path).
/// * Memory: GRU update from the attended mail summary.
/// * Propagation: mails created from endpoint memories are pushed to
///   sampled 1-hop neighbors via [`op::propagate`] + [`op::src_scatter`].
pub struct Apan {
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    ffn: Mlp,
    time_encoder: TimeEncode,
    memory_updater: GruCell,
    sampler: TSampler,
    predictor: EdgePredictor,
    opts: OptFlags,
    cfg: ModelConfig,
    training: bool,
    mail_dim: usize,
}

impl Apan {
    /// Builds APAN, attaching memory and a `mailbox_slots`-slot mailbox
    /// (paper §5.1: mailbox of size 10) to the context's graph.
    pub fn new(ctx: &TContext, cfg: ModelConfig, opts: OptFlags, seed: u64) -> Apan {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ctx.graph();
        let d_node = g.node_feat_dim();
        let d_edge = g.edge_feat_dim();
        let device = ctx.device();
        let mem_dim = cfg.emb_dim;
        let mail_dim = 2 * mem_dim + d_edge;
        g.attach_memory(mem_dim, device);
        g.attach_mailbox(cfg.mailbox_slots, mail_dim, device);
        let hd = cfg.emb_dim;
        Apan {
            w_q: Linear::new(d_node + cfg.time_dim, hd, &mut rng).to_device(device),
            w_k: Linear::new(mail_dim + cfg.time_dim, hd, &mut rng).to_device(device),
            w_v: Linear::new(mail_dim + cfg.time_dim, hd, &mut rng).to_device(device),
            ffn: Mlp::new(hd + d_node, cfg.emb_dim, cfg.emb_dim, &mut rng).to_device(device),
            time_encoder: TimeEncode::new(cfg.time_dim, &mut rng).to_device(device),
            memory_updater: GruCell::new(hd, mem_dim, &mut rng).to_device(device),
            sampler: TSampler::from_engine(
                tgl_sampler::TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent)
                    .with_seed(seed),
            ),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            opts,
            cfg,
            training: true,
            mail_dim,
        }
    }

    /// Attention over mailbox slots: one embedding row per query node,
    /// plus the attended mail summary used for the memory update.
    fn attention(&self, ctx: &TContext, nodes: &[NodeId], times: &[f64]) -> (Tensor, Tensor) {
        let g = ctx.graph();
        let device = ctx.device();
        let n = nodes.len();
        let (mails, mail_ts, owners) = g.mailbox().all_slots(nodes);
        let mails = mails.to(device);
        let deltas: Vec<f32> = owners
            .iter()
            .zip(&mail_ts)
            .map(|(&o, &mt)| (times[o] - mt) as f32)
            .collect();
        // Mail age relative to the querying node's time = staleness of
        // the stored state this embedding is computed from.
        tgl_obs::insight::observe_mem_staleness(&deltas);
        let use_pre = self.opts.time_precompute && !self.training;
        let mail_t = if use_pre {
            op::precomputed_times(ctx, &self.time_encoder, &deltas)
        } else {
            self.time_encoder.forward(&deltas)
        };
        let zeros_t = if use_pre {
            op::precomputed_zeros(ctx, &self.time_encoder, n)
        } else {
            self.time_encoder.forward(&vec![0.0; n])
        };
        let nfeat = g.node_feat_rows(nodes).to(device);
        let q = self.w_q.forward(&cat(&[nfeat.clone(), zeros_t], 1));
        let kv_in = cat(&[mails, mail_t], 1);
        let k = self.w_k.forward(&kv_in);
        let v = self.w_v.forward(&kv_in);
        let hd = q.dim(1);
        let q_slot = q.index_select(&owners);
        let logits = q_slot
            .mul(&k)
            .sum_dim(1)
            .mul_scalar(1.0 / (hd as f32).sqrt())
            .reshape([owners.len(), 1]);
        let attn = segment_softmax(&logits, &owners, n);
        let summary = segment_sum(&v.mul(&attn), &owners, n); // [n, hd]
        let emb = self.ffn.forward(&cat(&[summary.clone(), nfeat], 1));
        (emb, summary)
    }

    /// Creates this batch's mails and pushes them to sampled 1-hop
    /// neighbors (paper Listing 6 `create_mails`/`send_mails`).
    fn propagate_mails(&self, ctx: &TContext, batch: &TBatch) {
        let _guard = no_grad();
        let g = ctx.graph();
        let device = ctx.device();
        let n = batch.len();
        if n == 0 {
            return;
        }
        // Endpoint nodes at their interaction times.
        let mut nodes: Vec<NodeId> = Vec::with_capacity(2 * n);
        nodes.extend_from_slice(batch.srcs());
        nodes.extend_from_slice(batch.dsts());
        let mut times: Vec<f64> = Vec::with_capacity(2 * n);
        times.extend_from_slice(batch.times());
        times.extend_from_slice(batch.times());

        let mem = g.memory();
        let mem_src = mem.rows(batch.srcs()).to(device);
        let mem_dst = mem.rows(batch.dsts()).to(device);
        let efeat = g.edge_feat_rows(&batch.eids()).to(device);
        let mail_s = cat(&[mem_src.clone(), mem_dst.clone(), efeat.clone()], 1);
        let mail_d = cat(&[mem_dst, mem_src, efeat], 1);
        let mails = cat(&[mail_s, mail_d], 0); // [2n, mail_dim]
        debug_assert_eq!(mails.dim(1), self.mail_dim);

        // Deliver to the endpoints themselves...
        g.mailbox().store(&nodes, &mails, &times);

        // ...and propagate to sampled 1-hop neighbors (push-style).
        let blk = TBlock::new(ctx, 0, nodes, times.clone());
        self.sampler.sample(&blk);
        op::propagate(&blk, |b| {
            if b.num_edges() == 0 {
                return;
            }
            let per_edge_mail = mails.index_select(&b.dst_index());
            let (uniq, scattered) = op::src_scatter(b, &per_edge_mail, op::ReduceOp::Mean);
            let dst_times = b.dst_times();
            let t_mail = Tensor::from_vec(
                b.dst_index().iter().map(|&d| dst_times[d] as f32).collect(),
                [b.num_edges(), 1],
            )
            .to(b.device());
            let (_, t_scattered) = op::src_scatter(b, &t_mail, op::ReduceOp::Mean);
            let t_vals: Vec<f64> = t_scattered.to_vec().iter().map(|&v| v as f64).collect();
            b.graph().mailbox().store(&uniq, &scattered, &t_vals);
        });
    }

    /// Persists GRU-updated memory for the batch endpoints.
    fn persist_memory(&self, ctx: &TContext, batch: &TBatch, summaries: &Tensor) {
        let _guard = no_grad();
        let g = ctx.graph();
        let n = batch.len();
        // Unique endpoints, keeping the *latest* occurrence per node.
        let mut latest: std::collections::HashMap<NodeId, (usize, f64)> =
            std::collections::HashMap::new();
        for (i, (&node, &t)) in batch
            .srcs()
            .iter()
            .chain(batch.dsts())
            .zip(batch.times().iter().chain(batch.times()))
            .enumerate()
        {
            let entry = latest.entry(node).or_insert((i, t));
            if t >= entry.1 {
                *entry = (i, t);
            }
        }
        let (nodes, rows_times): (Vec<NodeId>, Vec<(usize, f64)>) = latest.into_iter().unzip();
        let rows: Vec<usize> = rows_times.iter().map(|&(r, _)| r).collect();
        let times: Vec<f64> = rows_times.iter().map(|&(_, t)| t).collect();
        let _ = n;
        let summary_rows = summaries.index_select(&rows);
        let mem_rows = g.memory().rows(&nodes).to(ctx.device());
        let updated = self.memory_updater.forward(&summary_rows, &mem_rows);
        g.memory().store(&nodes, &updated, &times);
    }
}

impl TemporalModel for Apan {
    fn name(&self) -> &'static str {
        "APAN"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w_q.parameters();
        p.extend(self.w_k.parameters());
        p.extend(self.w_v.parameters());
        p.extend(self.ffn.parameters());
        p.extend(self.time_encoder.parameters());
        p.extend(self.memory_updater.parameters());
        p.extend(self.predictor.parameters());
        p
    }

    fn param_groups(&self) -> Vec<(String, Vec<Tensor>)> {
        let mut groups = vec![
            ("mail.w_q".to_string(), self.w_q.parameters()),
            ("mail.w_k".to_string(), self.w_k.parameters()),
            ("mail.w_v".to_string(), self.w_v.parameters()),
            ("mail.ffn".to_string(), self.ffn.parameters()),
            ("mail.time".to_string(), self.time_encoder.parameters()),
            ("memory.gru".to_string(), self.memory_updater.parameters()),
        ];
        groups.extend(self.predictor.param_groups());
        groups
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        let head = batch.block(ctx);
        let nodes = head.dst_nodes();
        let times = head.dst_times();
        // 1. Embedding generation from stored messages.
        let (embs, summaries) = self.attention(ctx, &nodes, &times);
        // 2. Memory update for the positive endpoints (first 2n rows of
        //    the summary tensor).
        let n = batch.len();
        self.persist_memory(ctx, batch, &summaries.narrow_rows(0, 2 * n));
        // 3. Mail creation + asynchronous propagation to neighbors.
        self.propagate_mails(ctx, batch);
        let _ = self.cfg;
        score_embeddings(&self.predictor, &embs, batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{batch_with_negs, ctx_for, small_graph, train_steps};

    #[test]
    fn forward_shapes() {
        let g = small_graph(30);
        let ctx = ctx_for(&g);
        let mut model = Apan::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 0..12, 0);
        let (pos, neg) = model.forward(&ctx, &batch);
        assert_eq!(pos.dims(), &[12]);
        assert_eq!(neg.dims(), &[12]);
    }

    #[test]
    fn mails_propagate_to_neighbors() {
        let g = small_graph(31);
        let ctx = ctx_for(&g);
        let mut model = Apan::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        // Process an early batch; later nodes' mailboxes get mails via
        // propagation even if they were not endpoints in the batch.
        let batch = batch_with_negs(&g, 40..60, 0);
        model.forward(&ctx, &batch);
        // At least some node beyond the batch endpoints got mail.
        let endpoints: std::collections::HashSet<u32> = batch
            .srcs()
            .iter()
            .chain(batch.dsts())
            .copied()
            .collect();
        let all: Vec<u32> = (0..g.num_nodes() as u32)
            .filter(|n| !endpoints.contains(n))
            .collect();
        let (_, times, _) = g.mailbox().all_slots(&all);
        assert!(
            times.iter().any(|&t| t > 0.0),
            "no mail propagated to non-endpoint neighbors"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let g = small_graph(32);
        let ctx = ctx_for(&g);
        let mut model = Apan::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 4);
        let (first, last) = train_steps(&mut model, &ctx, 15);
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn memory_updates_for_endpoints() {
        let g = small_graph(33);
        let ctx = ctx_for(&g);
        let mut model = Apan::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 0..10, 0);
        model.forward(&ctx, &batch);
        let times = g.memory().times(batch.dsts());
        assert!(times.iter().all(|&t| t > 0.0), "endpoint memory not updated");
    }
}
