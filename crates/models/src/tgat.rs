//! TGAT: temporal graph attention network (paper Listing 2).

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::SeedableRng;
use tgl_sampler::SamplingStrategy;
use tgl_tensor::nn::Module;
use tgl_tensor::Tensor;
use tglite::{op, TBatch, TContext, TSampler};

use crate::{score_embeddings, EdgePredictor, ModelConfig, OptFlags, TemporalAttnLayer, TemporalModel};

/// The TGAT model: `n_layers` of temporal self-attention over recent
/// sampled neighborhoods, with learnable time encoding.
///
/// This mirrors the paper's Listing 2: build the block chain
/// iteratively (`block` → `dedup` → `cache` → `sample` per layer),
/// `preload` features, seed the tail with raw features, then
/// `aggregate` the attention layers over the chain.
pub struct Tgat {
    layers: Vec<TemporalAttnLayer>,
    sampler: TSampler,
    predictor: EdgePredictor,
    opts: OptFlags,
    cfg: ModelConfig,
    training: bool,
}

impl Tgat {
    /// Builds TGAT for the context's graph (feature widths are read
    /// from the graph) with parameters on the context's device.
    pub fn new(ctx: &TContext, cfg: ModelConfig, opts: OptFlags, seed: u64) -> Tgat {
        let mut rng = StdRng::seed_from_u64(seed);
        let d_node = ctx.graph().node_feat_dim();
        let d_edge = ctx.graph().edge_feat_dim();
        let device = ctx.device();
        // Block layer index i: the deepest block (i = n_layers-1)
        // consumes raw node features; shallower blocks consume the
        // previous layer's emb_dim-wide output.
        let layers = (0..cfg.n_layers)
            .map(|i| {
                let dim_in = if i == cfg.n_layers - 1 { d_node } else { cfg.emb_dim };
                TemporalAttnLayer::new(dim_in, d_edge, cfg.time_dim, cfg.emb_dim, cfg.heads, &mut rng)
                    .to_device(device)
            })
            .collect();
        Tgat {
            layers,
            sampler: TSampler::from_engine(
                tgl_sampler::TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent)
                    .with_seed(seed),
            ),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            opts,
            cfg,
            training: true,
        }
    }

    /// Computes time-aware embeddings for the batch's head block.
    pub fn embeddings(&self, ctx: &TContext, batch: &TBatch) -> Tensor {
        let _prep = tglite::prof::scope("prep_batch");
        let head = batch.block(ctx);
        drop(_prep);
        let mut tail = head.clone();
        for i in 0..self.cfg.n_layers {
            if i > 0 {
                tail = tail.next_block();
            }
            if self.opts.dedup {
                op::dedup(&tail);
            }
            if self.opts.cache && !self.training {
                op::cache(ctx, &tail);
            }
            let _s = tglite::prof::scope("sample");
            self.sampler.sample(&tail);
        }
        if self.opts.preload_pinned {
            let _p = tglite::prof::scope("preload");
            op::preload(ctx, &head, true);
        }
        let _f = tglite::prof::scope("feature_load");
        tail.set_dstdata("h", tail.dstfeat());
        tail.set_srcdata("h", tail.srcfeat());
        drop(_f);
        let use_pre = self.opts.time_precompute && !self.training;
        op::aggregate(&head, "h", |blk| {
            self.layers[blk.layer().min(self.cfg.n_layers - 1)].forward(ctx, blk, use_pre)
        })
    }
}

impl TemporalModel for Tgat {
    fn name(&self) -> &'static str {
        "TGAT"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.layers.iter().flat_map(|l| l.parameters()).collect();
        p.extend(self.predictor.parameters());
        p
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        let embs = self.embeddings(ctx, batch);
        score_embeddings(&self.predictor, &embs, batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{batch_with_negs, ctx_for, small_graph, train_steps};

    #[test]
    fn forward_shapes() {
        let g = small_graph(1);
        let ctx = ctx_for(&g);
        let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 50..70, 0);
        let (pos, neg) = model.forward(&ctx, &batch);
        assert_eq!(pos.dims(), &[20]);
        assert_eq!(neg.dims(), &[20]);
    }

    #[test]
    fn optimized_inference_matches_unoptimized() {
        // dedup/cache/time-precompute are semantic-preserving: the
        // same inference pass must produce identical logits.
        let g = small_graph(2);
        let ctx_plain = ctx_for(&g);
        let ctx_opt = ctx_for(&g);
        let mut plain = Tgat::new(&ctx_plain, ModelConfig::tiny(), OptFlags::none(), 7);
        let mut opt = Tgat::new(&ctx_opt, ModelConfig::tiny(), OptFlags::all(), 7);
        plain.set_training(false);
        opt.set_training(false);
        let batch = batch_with_negs(&g, 40..80, 3);
        let _guard = tglite::tensor::no_grad();
        let (p1, n1) = plain.forward(&ctx_plain, &batch);
        let (p2, n2) = opt.forward(&ctx_opt, &batch);
        for (a, b) in p1.to_vec().iter().zip(p2.to_vec()) {
            assert!((a - b).abs() < 1e-4, "pos logits drift: {a} vs {b}");
        }
        for (a, b) in n1.to_vec().iter().zip(n2.to_vec()) {
            assert!((a - b).abs() < 1e-4, "neg logits drift: {a} vs {b}");
        }
        // Second pass exercises cache hits and still matches.
        let (p1b, _) = plain.forward(&ctx_plain, &batch);
        let (p2b, _) = opt.forward(&ctx_opt, &batch);
        let (hits, _) = ctx_opt.embed_cache().stats();
        assert!(hits > 0, "expected cache hits on repeat inference");
        for (a, b) in p1b.to_vec().iter().zip(p2b.to_vec()) {
            assert!((a - b).abs() < 1e-4, "cached logits drift: {a} vs {b}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let g = small_graph(3);
        let ctx = ctx_for(&g);
        let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 1);
        let (first, last) = train_steps(&mut model, &ctx, 12);
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn dedup_training_matches_plain_training_loss() {
        let g = small_graph(4);
        let run = |opts: OptFlags| {
            let ctx = ctx_for(&g);
            let mut model = Tgat::new(&ctx, ModelConfig::tiny(), opts, 9);
            train_steps(&mut model, &ctx, 5)
        };
        let (f1, l1) = run(OptFlags::none());
        let (f2, l2) = run(OptFlags {
            dedup: true,
            ..OptFlags::none()
        });
        assert!((f1 - f2).abs() < 1e-4, "first-step loss differs: {f1} vs {f2}");
        assert!((l1 - l2).abs() < 1e-3, "training trajectory diverged: {l1} vs {l2}");
    }
}
