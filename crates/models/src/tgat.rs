//! TGAT: temporal graph attention network (paper Listing 2).

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::SeedableRng;
use tgl_sampler::SamplingStrategy;
use tgl_tensor::nn::Module;
use tgl_tensor::Tensor;
use tglite::{op, TBatch, TContext, TSampler};

use crate::{score_embeddings, EdgePredictor, ModelConfig, OptFlags, TemporalAttnLayer, TemporalModel};

/// The TGAT model: `n_layers` of temporal self-attention over recent
/// sampled neighborhoods, with learnable time encoding.
///
/// This mirrors the paper's Listing 2: build the block chain
/// iteratively (`block` → `dedup` → `cache` → `sample` per layer),
/// `preload` features, seed the tail with raw features, then
/// `aggregate` the attention layers over the chain.
pub struct Tgat {
    layers: Vec<TemporalAttnLayer>,
    sampler: TSampler,
    predictor: EdgePredictor,
    opts: OptFlags,
    cfg: ModelConfig,
    training: bool,
}

impl Tgat {
    /// Builds TGAT for the context's graph (feature widths are read
    /// from the graph) with parameters on the context's device.
    pub fn new(ctx: &TContext, cfg: ModelConfig, opts: OptFlags, seed: u64) -> Tgat {
        let mut rng = StdRng::seed_from_u64(seed);
        let d_node = ctx.graph().node_feat_dim();
        let d_edge = ctx.graph().edge_feat_dim();
        let device = ctx.device();
        // Block layer index i: the deepest block (i = n_layers-1)
        // consumes raw node features; shallower blocks consume the
        // previous layer's emb_dim-wide output.
        let layers = (0..cfg.n_layers)
            .map(|i| {
                let dim_in = if i == cfg.n_layers - 1 { d_node } else { cfg.emb_dim };
                TemporalAttnLayer::new(dim_in, d_edge, cfg.time_dim, cfg.emb_dim, cfg.heads, &mut rng)
                    .to_device(device)
            })
            .collect();
        Tgat {
            layers,
            sampler: TSampler::from_engine(
                tgl_sampler::TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent)
                    .with_seed(seed),
            ),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            opts,
            cfg,
            training: true,
        }
    }

    /// Computes time-aware embeddings for the batch's head block.
    ///
    /// When the batch carries a prefetch plan (pipelined training),
    /// the chain is rebuilt by replaying the plan — dedup, sampling,
    /// and feature staging already happened on the sampler stage —
    /// instead of recomputing them here. The replay is bitwise
    /// identical to the inline construction (see `tglite::plan`).
    pub fn embeddings(&self, ctx: &TContext, batch: &TBatch) -> Tensor {
        let plan = if self.training { batch.plan() } else { None };
        // The prep_batch phase fired on the sampler stage when a plan
        // was built there; the cheap rebuild here stays unscoped so
        // the phase breakdown counts that work once.
        let prep = plan.is_none().then(|| tglite::prof::scope("prep_batch"));
        let head = batch.block(ctx);
        drop(prep);
        let mut tail = head.clone();
        for i in 0..self.cfg.n_layers {
            if i > 0 {
                tail = tail.next_block();
            }
            if let Some(plan) = plan {
                plan.apply_layer(i, &tail);
                continue;
            }
            if self.opts.dedup {
                op::dedup(&tail);
            }
            if self.opts.cache && !self.training {
                op::cache(ctx, &tail);
            }
            let _s = tglite::prof::scope("sample");
            self.sampler.sample(&tail);
        }
        if self.opts.preload_pinned && plan.is_none() {
            let _p = tglite::prof::scope("preload");
            op::preload(ctx, &head, true);
        }
        let _f = tglite::prof::scope("feature_load");
        tail.set_dstdata("h", tail.dstfeat());
        tail.set_srcdata("h", tail.srcfeat());
        drop(_f);
        let use_pre = self.opts.time_precompute && !self.training;
        op::aggregate(&head, "h", |blk| {
            let li = blk.layer().min(self.cfg.n_layers - 1);
            let _act = tgl_obs::insight::act_scope(layer_scope(li));
            self.layers[li].forward(ctx, blk, use_pre)
        })
    }
}

/// Interned `layer<i>` activation-scope name (stable for the process).
pub(crate) fn layer_scope(i: usize) -> &'static str {
    tgl_obs::intern::intern(&format!("layer{i}"))
}

impl TemporalModel for Tgat {
    fn name(&self) -> &'static str {
        "TGAT"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.layers.iter().flat_map(|l| l.parameters()).collect();
        p.extend(self.predictor.parameters());
        p
    }

    fn param_groups(&self) -> Vec<(String, Vec<Tensor>)> {
        let mut groups = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            groups.extend(l.param_groups(&format!("layer{i}")));
        }
        groups.extend(self.predictor.param_groups());
        groups
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        let embs = self.embeddings(ctx, batch);
        score_embeddings(&self.predictor, &embs, batch.len())
    }

    fn sampling_spec(&self) -> Option<tglite::plan::SamplingSpec> {
        Some(tglite::plan::SamplingSpec {
            n_layers: self.cfg.n_layers,
            dedup: self.opts.dedup,
            preload_pinned: self.opts.preload_pinned,
            sampler: self.sampler.engine().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{batch_with_negs, ctx_for, small_graph, train_steps};

    #[test]
    fn forward_shapes() {
        let g = small_graph(1);
        let ctx = ctx_for(&g);
        let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 50..70, 0);
        let (pos, neg) = model.forward(&ctx, &batch);
        assert_eq!(pos.dims(), &[20]);
        assert_eq!(neg.dims(), &[20]);
    }

    #[test]
    fn optimized_inference_matches_unoptimized() {
        // dedup/cache/time-precompute are semantic-preserving: the
        // same inference pass must produce identical logits.
        let g = small_graph(2);
        let ctx_plain = ctx_for(&g);
        let ctx_opt = ctx_for(&g);
        let mut plain = Tgat::new(&ctx_plain, ModelConfig::tiny(), OptFlags::none(), 7);
        let mut opt = Tgat::new(&ctx_opt, ModelConfig::tiny(), OptFlags::all(), 7);
        plain.set_training(false);
        opt.set_training(false);
        let batch = batch_with_negs(&g, 40..80, 3);
        let _guard = tglite::tensor::no_grad();
        let (p1, n1) = plain.forward(&ctx_plain, &batch);
        let (p2, n2) = opt.forward(&ctx_opt, &batch);
        for (a, b) in p1.to_vec().iter().zip(p2.to_vec()) {
            assert!((a - b).abs() < 1e-4, "pos logits drift: {a} vs {b}");
        }
        for (a, b) in n1.to_vec().iter().zip(n2.to_vec()) {
            assert!((a - b).abs() < 1e-4, "neg logits drift: {a} vs {b}");
        }
        // Second pass exercises cache hits and still matches.
        let (p1b, _) = plain.forward(&ctx_plain, &batch);
        let (p2b, _) = opt.forward(&ctx_opt, &batch);
        let (hits, _) = ctx_opt.embed_cache().stats();
        assert!(hits > 0, "expected cache hits on repeat inference");
        for (a, b) in p1b.to_vec().iter().zip(p2b.to_vec()) {
            assert!((a - b).abs() < 1e-4, "cached logits drift: {a} vs {b}");
        }
    }

    #[test]
    fn plan_driven_forward_is_bitwise_identical() {
        // Replaying a prefetch plan (pipelined training) must produce
        // the exact logits the inline chain construction produces.
        let g = small_graph(5);
        for opts in [OptFlags::none(), OptFlags::all()] {
            let ctx_a = ctx_for(&g);
            let ctx_b = ctx_for(&g);
            let mut inline = Tgat::new(&ctx_a, ModelConfig::tiny(), opts, 11);
            let mut planned = Tgat::new(&ctx_b, ModelConfig::tiny(), opts, 11);
            let batch = batch_with_negs(&g, 30..70, 2);
            let (p1, n1) = inline.forward(&ctx_a, &batch);
            let mut staged = batch.clone();
            let spec = planned.sampling_spec().expect("TGAT is plan-aware");
            let plan = tglite::plan::build_plan(&ctx_b, &staged, &spec);
            staged.set_plan(std::sync::Arc::new(plan));
            let (p2, n2) = planned.forward(&ctx_b, &staged);
            let bits = |t: &tglite::tensor::Tensor| -> Vec<u32> {
                t.to_vec().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(&p1), bits(&p2), "pos logits drift (opts {opts:?})");
            assert_eq!(bits(&n1), bits(&n2), "neg logits drift (opts {opts:?})");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let g = small_graph(3);
        let ctx = ctx_for(&g);
        let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 1);
        let (first, last) = train_steps(&mut model, &ctx, 12);
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn dedup_training_matches_plain_training_loss() {
        let g = small_graph(4);
        let run = |opts: OptFlags| {
            let ctx = ctx_for(&g);
            let mut model = Tgat::new(&ctx, ModelConfig::tiny(), opts, 9);
            train_steps(&mut model, &ctx, 5)
        };
        let (f1, l1) = run(OptFlags::none());
        let (f2, l2) = run(OptFlags {
            dedup: true,
            ..OptFlags::none()
        });
        assert!((f1 - f2).abs() < 1e-4, "first-step loss differs: {f1} vs {f2}");
        assert!((l1 - l2).abs() < 1e-3, "training trajectory diverged: {l1} vs {l2}");
    }
}
