//! TGN: temporal graph network with GRU node memory (paper §4,
//! Listing 4).

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::SeedableRng;
use tgl_graph::NodeId;
use tgl_sampler::SamplingStrategy;
use tgl_tensor::nn::{GruCell, Linear, Module};
use tgl_tensor::ops::cat;
use tgl_tensor::{no_grad, Tensor};
use tglite::nn::TimeEncode;
use tglite::{op, TBatch, TBlock, TContext, TSampler};

use crate::{score_embeddings, EdgePredictor, ModelConfig, OptFlags, TemporalAttnLayer, TemporalModel};

/// The TGN model: GRU memory updated from a raw-message mailbox,
/// merged with node features, then TGAT-style attention layers.
///
/// Training discipline follows the paper (§2 "Model Training"): the
/// mailbox holds messages from *previous* batches; the in-graph memory
/// update consumes them (so the GRU receives gradients through the
/// batch loss), and only afterwards are this batch's raw messages
/// saved — avoiding information leakage.
pub struct Tgn {
    layers: Vec<TemporalAttnLayer>,
    memory_updater: GruCell,
    mem_time_encoder: TimeEncode,
    feat_linear: Linear,
    sampler: TSampler,
    predictor: EdgePredictor,
    opts: OptFlags,
    cfg: ModelConfig,
    training: bool,
    mail_dim: usize,
}

impl Tgn {
    /// Builds TGN, attaching memory and a 1-slot mailbox to the
    /// context's graph.
    pub fn new(ctx: &TContext, cfg: ModelConfig, opts: OptFlags, seed: u64) -> Tgn {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ctx.graph();
        let d_node = g.node_feat_dim();
        let d_edge = g.edge_feat_dim();
        let device = ctx.device();
        let mem_dim = cfg.emb_dim;
        let mail_dim = 2 * mem_dim + d_edge;
        g.attach_memory(mem_dim, device);
        g.attach_mailbox(1, mail_dim, device);
        // All attention layers consume emb_dim-wide inputs: the tail
        // block's inputs are memory ⊕ projected features.
        let layers = (0..cfg.n_layers)
            .map(|_| {
                TemporalAttnLayer::new(cfg.emb_dim, d_edge, cfg.time_dim, cfg.emb_dim, cfg.heads, &mut rng)
                    .to_device(device)
            })
            .collect();
        Tgn {
            layers,
            memory_updater: GruCell::new(mail_dim + cfg.time_dim, mem_dim, &mut rng)
                .to_device(device),
            mem_time_encoder: TimeEncode::new(cfg.time_dim, &mut rng).to_device(device),
            feat_linear: Linear::new(d_node, mem_dim, &mut rng).to_device(device),
            sampler: TSampler::from_engine(
                tgl_sampler::TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Recent)
                    .with_seed(seed),
            ),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            opts,
            cfg,
            training: true,
            mail_dim,
        }
    }

    /// Applies the GRU memory update (paper Eq. 9–11) to `nodes`,
    /// returning in-graph updated memory rows `[n, mem_dim]`.
    fn update_memory(&self, ctx: &TContext, nodes: &[NodeId]) -> Tensor {
        let g = ctx.graph();
        let mem = g.memory();
        let mb = g.mailbox();
        let device = ctx.device();
        let mem_rows = mem.rows(nodes).to(device);
        let mem_ts = mem.times(nodes);
        let (mail, mail_ts) = mb.latest(nodes);
        let mail = mail.to(device);
        let deltas: Vec<f32> = mail_ts
            .iter()
            .zip(&mem_ts)
            .map(|(&a, &b)| (a - b) as f32)
            .collect();
        // The GRU deltas ARE the memory-staleness signal: how old each
        // node's stored state is relative to the mail consuming it.
        tgl_obs::insight::observe_mem_staleness(&deltas);
        let tfeat = if self.opts.time_precompute && !self.training {
            op::precomputed_times(ctx, &self.mem_time_encoder, &deltas)
        } else {
            self.mem_time_encoder.forward(&deltas)
        };
        self.memory_updater
            .forward(&cat(&[mail, tfeat], 1), &mem_rows)
    }

    /// Persists updated memory for the batch's positive endpoints and
    /// stores this batch's raw messages in the mailbox
    /// (paper Listing 4 `save_raw_msgs`, using `block_adj` +
    /// `coalesce(latest)`).
    fn save_state(&self, ctx: &TContext, batch: &TBatch) {
        let _guard = no_grad();
        let g = ctx.graph();
        let blk: TBlock = batch.block_adj(ctx);
        op::coalesce(&blk, op::CoalesceBy::Latest);
        let uniq = blk.dst_nodes();
        let times = blk.src_times(); // latest interaction time per node

        // Persist memory: same GRU update the in-graph path applied.
        let mem_new = self.update_memory(ctx, &uniq);
        g.memory().store(&uniq, &mem_new, &times);

        // Raw messages: [own memory ‖ counterpart memory ‖ edge feats].
        let mem = g.memory();
        let own = mem.rows(&uniq).to(ctx.device());
        let counterpart = mem.rows(&blk.src_nodes()).to(ctx.device());
        let mail = cat(&[own, counterpart, blk.efeat()], 1);
        debug_assert_eq!(mail.dim(1), self.mail_dim);
        g.mailbox().store(&uniq, &mail, &times);
    }
}

impl TemporalModel for Tgn {
    fn name(&self) -> &'static str {
        "TGN"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self.layers.iter().flat_map(|l| l.parameters()).collect();
        p.extend(self.memory_updater.parameters());
        p.extend(self.mem_time_encoder.parameters());
        p.extend(self.feat_linear.parameters());
        p.extend(self.predictor.parameters());
        p
    }

    fn param_groups(&self) -> Vec<(String, Vec<Tensor>)> {
        let mut groups = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            groups.extend(l.param_groups(&format!("layer{i}")));
        }
        groups.push(("memory.gru".to_string(), self.memory_updater.parameters()));
        groups.push(("memory.time".to_string(), self.mem_time_encoder.parameters()));
        groups.push(("feat".to_string(), self.feat_linear.parameters()));
        groups.extend(self.predictor.param_groups());
        groups
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        // Build the block chain (dedup only: the paper skips cache()
        // for TGN since memory updates invalidate cached embeddings).
        let head = batch.block(ctx);
        let mut tail = head.clone();
        for i in 0..self.cfg.n_layers {
            if i > 0 {
                tail = tail.next_block();
            }
            if self.opts.dedup {
                op::dedup(&tail);
            }
            self.sampler.sample(&tail);
        }
        if self.opts.preload_pinned {
            op::preload(ctx, &head, true);
        }

        // Deepest inputs: updated memory ⊕ projected raw features for
        // the tail's destinations and sources (paper Listing 4 lines
        // 4-7).
        let mut nodes = tail.dst_nodes();
        let n_dst = nodes.len();
        nodes.extend(tail.src_nodes());
        let mem = self.update_memory(ctx, &nodes);
        let nfeat = self
            .feat_linear
            .forward(&ctx.graph().node_feat_rows(&nodes).to(ctx.device()));
        let h = nfeat.add(&mem);
        tail.set_dstdata("h", h.narrow_rows(0, n_dst));
        tail.set_srcdata("h", h.narrow_rows(n_dst, nodes.len() - n_dst));

        let use_pre = self.opts.time_precompute && !self.training;
        let embs = op::aggregate(&head, "h", |blk| {
            let li = blk.layer().min(self.cfg.n_layers - 1);
            let _act = tgl_obs::insight::act_scope(crate::tgat::layer_scope(li));
            self.layers[li].forward(ctx, blk, use_pre)
        });

        // Delayed-update discipline: persist memory + save this
        // batch's raw messages after embedding computation.
        self.save_state(ctx, batch);

        score_embeddings(&self.predictor, &embs, batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{batch_with_negs, ctx_for, small_graph, train_steps};

    #[test]
    fn forward_shapes_and_state_updates() {
        let g = small_graph(10);
        let ctx = ctx_for(&g);
        let mut model = Tgn::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 0..20, 0);
        let (pos, neg) = model.forward(&ctx, &batch);
        assert_eq!(pos.dims(), &[20]);
        assert_eq!(neg.dims(), &[20]);
        // Memory must have been updated for batch endpoints.
        let mem = g.memory();
        let touched: Vec<u32> = batch.srcs().to_vec();
        let times = mem.times(&touched);
        assert!(times.iter().any(|&t| t > 0.0), "memory times not updated");
    }

    #[test]
    fn mailbox_messages_accumulate() {
        let g = small_graph(11);
        let ctx = ctx_for(&g);
        let mut model = Tgn::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let b1 = batch_with_negs(&g, 0..20, 1);
        model.forward(&ctx, &b1);
        let src0 = b1.srcs()[0];
        let (mail, times) = g.mailbox().latest(&[src0]);
        assert!(times[0] > 0.0, "mail delivery time not set");
        assert!(mail.to_vec().iter().any(|&v| v != 0.0) || times[0] > 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let g = small_graph(12);
        let ctx = ctx_for(&g);
        let mut model = Tgn::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 2);
        let (first, last) = train_steps(&mut model, &ctx, 12);
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn reset_state_clears_memory() {
        let g = small_graph(13);
        let ctx = ctx_for(&g);
        let mut model = Tgn::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 0..20, 0);
        model.forward(&ctx, &batch);
        model.reset_state(&ctx);
        let all: Vec<u32> = (0..g.num_nodes() as u32).collect();
        assert!(g.memory().times(&all).iter().all(|&t| t == 0.0));
    }

    #[test]
    fn dedup_matches_plain_first_step() {
        let g = small_graph(14);
        let logits = |opts: OptFlags| {
            let ctx = ctx_for(&g);
            // Fresh memory per run (attach_memory in constructor resets).
            let mut model = Tgn::new(&ctx, ModelConfig::tiny(), opts, 5);
            let batch = batch_with_negs(&g, 30..60, 2);
            let (pos, _) = model.forward(&ctx, &batch);
            pos.to_vec()
        };
        let plain = logits(OptFlags::none());
        let dedup = logits(OptFlags {
            dedup: true,
            ..OptFlags::none()
        });
        for (a, b) in plain.iter().zip(&dedup) {
            assert!((a - b).abs() < 1e-4, "dedup changed TGN semantics: {a} vs {b}");
        }
    }
}
