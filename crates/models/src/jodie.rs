//! JODIE: RNN memory with time-projected embeddings (paper Listing 5).

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::SeedableRng;
use tgl_graph::NodeId;
use tgl_tensor::nn::{Linear, Module, RnnCell};
use tgl_tensor::ops::cat;
use tgl_tensor::{no_grad, Tensor};
use tglite::nn::TimeEncode;
use tglite::{op, TBatch, TContext};

use crate::{score_embeddings, EdgePredictor, ModelConfig, OptFlags, TemporalModel};

/// The JODIE model: "does not perform neighbor sampling or
/// aggregation, but rather mainly updates node memory using RNNs"
/// (paper Appendix A). Embeddings are the RNN-updated memory passed
/// through JODIE's time-projection `(1 + Δt·w) ⊙ mem`, merged with
/// projected node features.
pub struct Jodie {
    rnn: RnnCell,
    time_encoder: TimeEncode,
    feat_linear: Linear,
    projector: Tensor, // learnable w for (1 + Δt·w)
    predictor: EdgePredictor,
    #[allow(dead_code)]
    opts: OptFlags,
    training: bool,
    mail_dim: usize,
}

impl Jodie {
    /// Builds JODIE, attaching memory and a 1-slot mailbox to the
    /// context's graph.
    ///
    /// Note: "no further optimization operators are applied for the
    /// JODIE model due to its simplicity" (paper §5.2), so `opts` only
    /// retains the preload flag for interface uniformity.
    pub fn new(ctx: &TContext, cfg: ModelConfig, opts: OptFlags, seed: u64) -> Jodie {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ctx.graph();
        let d_node = g.node_feat_dim();
        let d_edge = g.edge_feat_dim();
        let device = ctx.device();
        let mem_dim = cfg.emb_dim;
        let mail_dim = mem_dim + d_edge;
        g.attach_memory(mem_dim, device);
        g.attach_mailbox(1, mail_dim, device);
        Jodie {
            rnn: RnnCell::new(mail_dim + cfg.time_dim, mem_dim, &mut rng).to_device(device),
            time_encoder: TimeEncode::new(cfg.time_dim, &mut rng).to_device(device),
            feat_linear: Linear::new(d_node, mem_dim, &mut rng).to_device(device),
            projector: Tensor::zeros([mem_dim])
                .to(device)
                .requires_grad(true),
            predictor: EdgePredictor::new(cfg.emb_dim, &mut rng).to_device(device),
            opts,
            training: true,
            mail_dim,
        }
    }

    /// RNN memory update from the latest mailbox message
    /// (paper Listing 5 `update_memory`). Returns in-graph rows plus
    /// the mail delivery times used.
    fn update_memory(&self, ctx: &TContext, nodes: &[NodeId]) -> (Tensor, Vec<f64>) {
        let g = ctx.graph();
        let mem = g.memory();
        let mb = g.mailbox();
        let device = ctx.device();
        let mem_rows = mem.rows(nodes).to(device);
        let mem_ts = mem.times(nodes);
        let (mail, mail_ts) = mb.latest(nodes);
        let mail = mail.to(device);
        let deltas: Vec<f32> = mail_ts
            .iter()
            .zip(&mem_ts)
            .map(|(&a, &b)| (a - b) as f32)
            .collect();
        let tfeat = self.time_encoder.forward(&deltas);
        let updated = self.rnn.forward(&cat(&[mail, tfeat], 1), &mem_rows);
        (updated, mail_ts)
    }

    /// JODIE's embedding projection: `(1 + Δt·w) ⊙ mem ⊕ W_f x`, with
    /// Δt the gap between the query time and the node's last update.
    fn project(&self, ctx: &TContext, mem: &Tensor, nodes: &[NodeId], times: &[f64]) -> Tensor {
        let g = ctx.graph();
        let mem_ts = g.memory().times(nodes);
        // JODIE normalizes the projection delta by the stream's time
        // scale so (1 + Δt·w) stays well-conditioned across datasets.
        let norm = (g.max_time() as f32).max(1.0);
        let deltas: Vec<f32> = times
            .iter()
            .zip(&mem_ts)
            .map(|(&q, &u)| (q - u) as f32 / norm)
            .collect();
        let n = nodes.len();
        let dt = Tensor::from_vec(deltas, [n, 1]).to(ctx.device());
        let scale = dt.mul(&self.projector).add_scalar(1.0); // [n, mem_dim]
        let nfeat = self
            .feat_linear
            .forward(&g.node_feat_rows(nodes).to(ctx.device()));
        // (1 + Δt·w) ⊙ mem + W_f x fused into one kernel.
        nfeat.addcmul(mem, &scale, 1.0)
    }

    /// Scores candidate `(src, dst)` pairs at the given times *without*
    /// advancing memory/mailbox state — the inference API a
    /// recommender uses to rank items for a user "as of now".
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn score_pairs(
        &self,
        ctx: &TContext,
        srcs: &[NodeId],
        dsts: &[NodeId],
        times: &[f64],
    ) -> Vec<f32> {
        assert_eq!(srcs.len(), dsts.len(), "pair slices must match");
        assert_eq!(srcs.len(), times.len(), "times must match pairs");
        let _guard = no_grad();
        let mut nodes: Vec<NodeId> = Vec::with_capacity(2 * srcs.len());
        nodes.extend_from_slice(srcs);
        nodes.extend_from_slice(dsts);
        let mut ts: Vec<f64> = Vec::with_capacity(nodes.len());
        ts.extend_from_slice(times);
        ts.extend_from_slice(times);
        let (mem_new, _) = self.update_memory(ctx, &nodes);
        let embs = self.project(ctx, &mem_new, &nodes, &ts);
        let n = srcs.len();
        let s = embs.narrow_rows(0, n);
        let d = embs.narrow_rows(n, n);
        self.predictor.forward(&s, &d).to_vec()
    }

    /// Persists memory for the batch endpoints and stores raw messages
    /// `[counterpart memory ‖ edge features]` (paper Listing 5
    /// `save_raw_msgs`).
    fn save_state(&self, ctx: &TContext, batch: &TBatch) {
        let _guard = no_grad();
        let g = ctx.graph();
        let blk = batch.block_adj(ctx);
        op::coalesce(&blk, op::CoalesceBy::Latest);
        let uniq = blk.dst_nodes();
        let times = blk.src_times();
        let (mem_new, _) = self.update_memory(ctx, &uniq);
        g.memory().store(&uniq, &mem_new, &times);
        let counterpart = g.memory().rows(&blk.src_nodes()).to(ctx.device());
        let mail = cat(&[counterpart, blk.efeat()], 1);
        debug_assert_eq!(mail.dim(1), self.mail_dim);
        g.mailbox().store(&uniq, &mail, &times);
    }
}

impl TemporalModel for Jodie {
    fn name(&self) -> &'static str {
        "JODIE"
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.rnn.parameters();
        p.extend(self.time_encoder.parameters());
        p.extend(self.feat_linear.parameters());
        p.push(self.projector.clone());
        p.extend(self.predictor.parameters());
        p
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor) {
        // Nodes: [srcs | dsts | negs] at their edge times.
        let head = batch.block(ctx);
        let nodes = head.dst_nodes();
        let times = head.dst_times();
        let (mem_new, _) = self.update_memory(ctx, &nodes);
        let embs = self.project(ctx, &mem_new, &nodes, &times);
        self.save_state(ctx, batch);
        score_embeddings(&self.predictor, &embs, batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{batch_with_negs, ctx_for, small_graph, train_steps};

    #[test]
    fn forward_shapes() {
        let g = small_graph(20);
        let ctx = ctx_for(&g);
        let mut model = Jodie::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 0..15, 0);
        let (pos, neg) = model.forward(&ctx, &batch);
        assert_eq!(pos.dims(), &[15]);
        assert_eq!(neg.dims(), &[15]);
    }

    #[test]
    fn no_sampling_is_performed() {
        // JODIE touches no T-CSR sampling in its forward pass; this is
        // structural (it only reads memory/mailbox and features), so
        // just assert the forward works on a graph whose CSR was never
        // built and state advances.
        let g = small_graph(21);
        let ctx = ctx_for(&g);
        let mut model = Jodie::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 0..10, 0);
        model.forward(&ctx, &batch);
        let times = g.memory().times(batch.srcs());
        assert!(times.iter().any(|&t| t > 0.0));
    }

    #[test]
    fn training_reduces_loss() {
        let g = small_graph(22);
        let ctx = ctx_for(&g);
        let mut model = Jodie::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 3);
        let (first, last) = train_steps(&mut model, &ctx, 15);
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn memory_state_affects_embeddings() {
        let g = small_graph(23);
        let ctx = ctx_for(&g);
        let mut model = Jodie::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let batch = batch_with_negs(&g, 0..10, 0);
        let (p1, _) = model.forward(&ctx, &batch);
        // Second forward on the same batch sees updated memory/mailbox
        // and must differ.
        let (p2, _) = model.forward(&ctx, &batch);
        assert_ne!(p1.to_vec(), p2.to_vec());
    }
}
