//! Link-prediction head shared by all four models.

use tgl_runtime::rng::Rng;
use tgl_device::Device;
use tgl_tensor::nn::{Linear, Module};
use tgl_tensor::Tensor;

/// Scores a (source, destination) embedding pair with
/// `W_out · ReLU(W_s h_src + W_d h_dst)` — the edge predictor used by
/// TGL-style training scripts.
#[derive(Debug, Clone)]
pub struct EdgePredictor {
    src_fc: Linear,
    dst_fc: Linear,
    out_fc: Linear,
}

impl EdgePredictor {
    /// Creates a predictor over `emb_dim`-wide embeddings with a
    /// hidden width equal to `emb_dim`.
    pub fn new(emb_dim: usize, rng: &mut impl Rng) -> EdgePredictor {
        EdgePredictor {
            src_fc: Linear::new(emb_dim, emb_dim, rng),
            dst_fc: Linear::new(emb_dim, emb_dim, rng),
            out_fc: Linear::new(emb_dim, 1, rng),
        }
    }

    /// Moves parameters to `device`.
    pub fn to_device(&self, device: Device) -> EdgePredictor {
        EdgePredictor {
            src_fc: self.src_fc.to_device(device),
            dst_fc: self.dst_fc.to_device(device),
            out_fc: self.out_fc.to_device(device),
        }
    }

    /// Logits for each row pair: `[n, emb] × [n, emb] → [n]`.
    pub fn forward(&self, src: &Tensor, dst: &Tensor) -> Tensor {
        let _scope = tgl_obs::insight::act_scope("predictor");
        // Fused add+ReLU: one kernel, one output buffer, and no
        // intermediate sum captured by autograd.
        let h = self.src_fc.forward(src).add_relu(&self.dst_fc.forward(dst));
        tgl_tensor::nn::observe_relu_zeros(&h);
        let n = h.dim(0);
        self.out_fc.forward(&h).reshape([n])
    }

    /// Named parameter groups for per-layer introspection.
    pub fn param_groups(&self) -> Vec<(String, Vec<Tensor>)> {
        vec![
            ("predictor.src_fc".to_string(), self.src_fc.parameters()),
            ("predictor.dst_fc".to_string(), self.dst_fc.parameters()),
            ("predictor.out_fc".to_string(), self.out_fc.parameters()),
        ]
    }
}

impl Module for EdgePredictor {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.src_fc.parameters();
        p.extend(self.dst_fc.parameters());
        p.extend(self.out_fc.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn output_is_flat_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = EdgePredictor::new(4, &mut rng);
        let src = Tensor::randn([5, 4], &mut rng);
        let dst = Tensor::randn([5, 4], &mut rng);
        let out = p.forward(&src, &dst);
        assert_eq!(out.dims(), &[5]);
    }

    #[test]
    fn params_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = EdgePredictor::new(3, &mut rng);
        let src = Tensor::randn([2, 3], &mut rng);
        let dst = Tensor::randn([2, 3], &mut rng);
        p.forward(&src, &dst).sum_all().backward();
        assert_eq!(p.parameters().len(), 6);
        assert!(p.parameters().iter().any(|t| t.grad().is_some()));
    }

    #[test]
    fn asymmetric_in_src_dst() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = EdgePredictor::new(3, &mut rng);
        let a = Tensor::randn([1, 3], &mut rng);
        let b = Tensor::randn([1, 3], &mut rng);
        let ab = p.forward(&a, &b).to_vec();
        let ba = p.forward(&b, &a).to_vec();
        assert_ne!(ab, ba);
    }
}
