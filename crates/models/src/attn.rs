//! Temporal multi-head self-attention layer (paper Listing 2 /
//! Eqs. 4–7), expressed with TGLite's edge-wise block operators.

use tgl_runtime::rng::Rng;
use tgl_device::Device;
use tgl_tensor::nn::{Linear, Mlp, Module};
use tgl_tensor::ops::cat;
use tgl_tensor::Tensor;
use tglite::nn::TimeEncode;
use tglite::{op, TBlock, TContext};

/// One layer of TGAT-style temporal attention.
///
/// For a block with destination data `h_dst` and source data `h_src`:
///
/// * `Q = W_q [h_dst ‖ Φ(0)]` (Eq. 4),
/// * `K/V = W_{k,v} [h_src ‖ e ‖ Φ(Δt)]` (Eq. 5),
/// * per-edge attention logits `Σ_h (Q⊙K)/√d_h`, normalized per
///   destination with `edge_softmax` (Eq. 6),
/// * segmented sum via `edge_reduce`, then an output FFN over
///   `[r ‖ h_dst]` (Eq. 7).
///
/// With `time_precompute` enabled (inference), `Φ(0)` and `Φ(Δt)` come
/// from the context's precomputed tables.
#[derive(Debug, Clone)]
pub struct TemporalAttnLayer {
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    ffn: Mlp,
    time_encoder: TimeEncode,
    heads: usize,
    head_dim: usize,
}

impl TemporalAttnLayer {
    /// Creates a layer mapping `dim_node` destination / source features
    /// (plus `dim_edge` edge features and `dim_time` time encodings)
    /// to `dim_out` embeddings with `heads` attention heads.
    pub fn new(
        dim_node: usize,
        dim_edge: usize,
        dim_time: usize,
        dim_out: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> TemporalAttnLayer {
        assert!(dim_out.is_multiple_of(heads), "dim_out must be divisible by heads");
        let head_dim = dim_out / heads;
        TemporalAttnLayer {
            w_q: Linear::new(dim_node + dim_time, heads * head_dim, rng),
            w_k: Linear::new(dim_node + dim_edge + dim_time, heads * head_dim, rng),
            w_v: Linear::new(dim_node + dim_edge + dim_time, heads * head_dim, rng),
            ffn: Mlp::new(heads * head_dim + dim_node, dim_out, dim_out, rng),
            time_encoder: TimeEncode::new(dim_time, rng),
            heads,
            head_dim,
        }
    }

    /// Moves parameters to `device`.
    pub fn to_device(&self, device: Device) -> TemporalAttnLayer {
        TemporalAttnLayer {
            w_q: self.w_q.to_device(device),
            w_k: self.w_k.to_device(device),
            w_v: self.w_v.to_device(device),
            ffn: self.ffn.to_device(device),
            time_encoder: self.time_encoder.to_device(device),
            heads: self.heads,
            head_dim: self.head_dim,
        }
    }

    /// Output embedding width.
    pub fn out_dim(&self) -> usize {
        self.ffn.out_features()
    }

    /// Named parameter groups (`<prefix>.w_q` ... `<prefix>.time`) in
    /// [`parameters`](Module::parameters) order, for per-layer
    /// introspection.
    pub fn param_groups(&self, prefix: &str) -> Vec<(String, Vec<Tensor>)> {
        vec![
            (format!("{prefix}.w_q"), self.w_q.parameters()),
            (format!("{prefix}.w_k"), self.w_k.parameters()),
            (format!("{prefix}.w_v"), self.w_v.parameters()),
            (format!("{prefix}.ffn"), self.ffn.parameters()),
            (format!("{prefix}.time"), self.time_encoder.parameters()),
        ]
    }

    /// Computes one row of output per block destination, consuming
    /// `blk.dstdata("h")` / `blk.srcdata("h")`.
    pub fn forward(&self, ctx: &TContext, blk: &TBlock, time_precompute: bool) -> Tensor {
        let h_dst = blk.dstdata("h");
        let n_dst = blk.num_dst();
        let n_edges = blk.num_edges();
        let hd = self.heads * self.head_dim;

        // Φ(0) for destinations (Eq. 4).
        let _t0 = tglite::prof::scope("time_zero");
        let tfeats = if time_precompute {
            op::precomputed_zeros(ctx, &self.time_encoder, n_dst)
        } else {
            self.time_encoder.forward(&vec![0.0; n_dst])
        };
        drop(_t0);
        let q = self.w_q.forward(&cat(&[h_dst.clone(), tfeats], 1));

        if n_edges == 0 {
            // No sampled neighbors anywhere: attention output is zero.
            let r = Tensor::zeros_on([n_dst, hd], blk.device());
            return self.ffn.forward(&cat(&[r, h_dst], 1));
        }

        // Φ(Δt) for sampled edges (Eq. 5).
        let _tn = tglite::prof::scope("time_nbrs");
        let deltas = blk.delta_times();
        let nbr_t = if time_precompute {
            op::precomputed_times(ctx, &self.time_encoder, &deltas)
        } else {
            self.time_encoder.forward(&deltas)
        };
        drop(_tn);
        let _ta = tglite::prof::scope("attention");
        let h_src = blk.srcdata("h");
        let z = cat(&[h_src, blk.efeat(), nbr_t], 1);
        let k = self.w_k.forward(&z);
        let v = self.w_v.forward(&z);

        // Per-edge attention logits: Σ over head_dim of Q⊙K (Eq. 6,
        // edge-wise instead of padded bmm — paper Listing 2 line 33).
        let q_edge = q.index_select(&blk.dst_index());
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let logits = q_edge
            .mul(&k)
            .reshape([n_edges, self.heads, self.head_dim])
            .sum_dim(2)
            .mul_scalar(scale);
        let attn = op::edge_softmax(blk, &logits); // [E, heads]

        // Weighted values, segmented-summed per destination.
        let weighted = v
            .reshape([n_edges, self.heads, self.head_dim])
            .mul(&attn.reshape([n_edges, self.heads, 1]))
            .reshape([n_edges, hd]);
        let r = op::edge_reduce(blk, &weighted, op::ReduceOp::Sum);

        // Output FFN over [r ‖ h_dst] (Eq. 7).
        self.ffn.forward(&cat(&[r, h_dst], 1))
    }
}

impl Module for TemporalAttnLayer {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w_q.parameters();
        p.extend(self.w_k.parameters());
        p.extend(self.w_v.parameters());
        p.extend(self.ffn.parameters());
        p.extend(self.time_encoder.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx_for, small_graph};
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;
    use tgl_sampler::SamplingStrategy;
    use tglite::{TBlock, TSampler};

    fn layer(dim_node: usize) -> TemporalAttnLayer {
        let mut rng = StdRng::seed_from_u64(0);
        TemporalAttnLayer::new(dim_node, 4, 4, 8, 2, &mut rng)
    }

    #[test]
    fn output_shape_per_destination() {
        let g = small_graph(0);
        let ctx = ctx_for(&g);
        let blk = TBlock::new(&ctx, 0, vec![10, 11, 12], vec![100.0, 100.0, 100.0]);
        TSampler::new(3, SamplingStrategy::Recent).sample(&blk);
        blk.set_dstdata("h", blk.dstfeat());
        blk.set_srcdata("h", blk.srcfeat());
        let l = layer(6);
        let out = l.forward(&ctx, &blk, false);
        assert_eq!(out.dims(), &[3, 8]);
        assert_eq!(l.out_dim(), 8);
    }

    #[test]
    fn no_neighbors_still_produces_rows() {
        let g = small_graph(0);
        let ctx = ctx_for(&g);
        // Query before any edges exist: nothing to sample.
        let blk = TBlock::new(&ctx, 0, vec![0, 1], vec![0.5, 0.5]);
        TSampler::new(3, SamplingStrategy::Recent).sample(&blk);
        assert_eq!(blk.num_edges(), 0);
        blk.set_dstdata("h", blk.dstfeat());
        blk.set_srcdata("h", blk.srcfeat());
        let out = layer(6).forward(&ctx, &blk, false);
        assert_eq!(out.dims(), &[2, 8]);
        assert!(out.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_reach_all_parameter_groups() {
        let g = small_graph(0);
        let ctx = ctx_for(&g);
        let blk = TBlock::new(&ctx, 0, vec![10], vec![100.0]);
        TSampler::new(3, SamplingStrategy::Recent).sample(&blk);
        blk.set_dstdata("h", blk.dstfeat());
        blk.set_srcdata("h", blk.srcfeat());
        let l = layer(6);
        l.forward(&ctx, &blk, false).sum_all().backward();
        let with_grad = l.parameters().iter().filter(|p| p.grad().is_some()).count();
        // Everything except possibly unused biases should have grads.
        assert!(with_grad >= 8, "only {with_grad} params got gradients");
    }

    #[test]
    fn precomputed_time_path_matches_direct_path() {
        let g = small_graph(0);
        let ctx = ctx_for(&g);
        let make = || {
            let blk = TBlock::new(&ctx, 0, vec![10, 12], vec![100.0, 90.0]);
            TSampler::new(3, SamplingStrategy::Recent).sample(&blk);
            blk.set_dstdata("h", blk.dstfeat());
            blk.set_srcdata("h", blk.srcfeat());
            blk
        };
        let l = layer(6);
        let direct = l.forward(&ctx, &make(), false).to_vec();
        let pre = l.forward(&ctx, &make(), true).to_vec();
        assert_eq!(direct.len(), pre.len());
        for (a, b) in direct.iter().zip(&pre) {
            assert!((a - b).abs() < 1e-5, "semantic drift: {a} vs {b}");
        }
    }
}
