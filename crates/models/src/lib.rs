//! TGNN model implementations on TGLite abstractions.
//!
//! The paper demonstrates TGLite's expressiveness by implementing four
//! existing continuous-time TGNN models (§4, Appendix A):
//!
//! * [`Tgat`] — time-encoding + multi-head temporal self-attention over
//!   sampled neighborhoods (Xu et al., ICLR'20);
//! * [`Tgn`] — TGAT-style attention on top of GRU node memory updated
//!   from a mailbox (Rossi et al., 2020);
//! * [`Jodie`] — RNN node-memory updates with time-projected
//!   embeddings, no neighbor aggregation (Kumar et al., KDD'19);
//! * [`Apan`] — attention over a per-node mailbox, then push-style
//!   mail propagation to sampled neighbors (Wang et al., SIGMOD'21).
//!
//! All four train for temporal link prediction: given a batch of
//! positive edges and sampled negative destinations, produce positive
//! and negative logits scored by a shared [`EdgePredictor`].
//!
//! Optimization operators are toggled per the paper's evaluation
//! settings via [`OptFlags`]: `none()` (plain), `preload_only()`
//! (the paper's "TGLite" setting), `all()` ("TGLite+opt").

mod apan;
mod attn;
mod jodie;
mod predictor;
mod tgat;
mod tgn;

pub use apan::Apan;
pub use attn::TemporalAttnLayer;
pub use jodie::Jodie;
pub use predictor::EdgePredictor;
pub use tgat::Tgat;
pub use tgn::Tgn;

use tglite::tensor::Tensor;
use tglite::{TBatch, TContext};

/// Which semantic-preserving optimization operators a model applies
/// (paper §5.2: "TGLite" = `preload()` only; "TGLite+opt" = all
/// applicable operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// Apply `op::preload` with the pinned-memory pool.
    pub preload_pinned: bool,
    /// Apply `op::dedup` on every block before sampling.
    pub dedup: bool,
    /// Apply `op::cache` (inference only; ignored while training).
    pub cache: bool,
    /// Use the precomputed-time operators (inference only).
    pub time_precompute: bool,
}

impl OptFlags {
    /// No optimization operators at all (used by ablations).
    pub fn none() -> OptFlags {
        OptFlags {
            preload_pinned: false,
            dedup: false,
            cache: false,
            time_precompute: false,
        }
    }

    /// Only `preload()` — the paper's plain "TGLite" setting.
    pub fn preload_only() -> OptFlags {
        OptFlags {
            preload_pinned: true,
            ..OptFlags::none()
        }
    }

    /// All applicable operators — the paper's "TGLite+opt" setting.
    pub fn all() -> OptFlags {
        OptFlags {
            preload_pinned: true,
            dedup: true,
            cache: true,
            time_precompute: true,
        }
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags::preload_only()
    }
}

/// Shared hyperparameters (paper §5.1 defaults, dimensioned by the
/// dataset's feature widths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Embedding width.
    pub emb_dim: usize,
    /// Time-encoding width.
    pub time_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Message-passing layers (TGAT/TGN; paper: 2).
    pub n_layers: usize,
    /// Sampled neighbors per destination (paper: 10).
    pub n_neighbors: usize,
    /// Mailbox slots per node (APAN; paper: 10).
    pub mailbox_slots: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            emb_dim: 100,
            time_dim: 100,
            heads: 2,
            n_layers: 2,
            n_neighbors: 10,
            mailbox_slots: 10,
        }
    }
}

impl ModelConfig {
    /// A small configuration for fast tests.
    pub fn tiny() -> ModelConfig {
        ModelConfig {
            emb_dim: 8,
            time_dim: 4,
            heads: 2,
            n_layers: 2,
            n_neighbors: 3,
            mailbox_slots: 2,
        }
    }
}

/// A trainable temporal-graph model for link prediction.
pub trait TemporalModel {
    /// Model name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// All trainable parameters.
    fn parameters(&self) -> Vec<Tensor>;

    /// Named parameter groups for per-layer introspection
    /// (`layer0.w_q`, `predictor`, ...). The default is one whole-model
    /// group; models override so the insight layer can attribute
    /// gradient/weight/update stats to a specific component.
    fn param_groups(&self) -> Vec<(String, Vec<Tensor>)> {
        vec![("model".to_string(), self.parameters())]
    }

    /// Switches training/inference mode (controls which optimization
    /// operators apply; cache/time-precompute are inference-only).
    fn set_training(&mut self, training: bool);

    /// Computes `(positive_logits, negative_logits)` for a batch whose
    /// negatives have been set. Memory-based models also update their
    /// node state as a side effect (raw-message mailbox discipline).
    fn forward(&mut self, ctx: &TContext, batch: &TBatch) -> (Tensor, Tensor);

    /// The training-mode sampling/staging recipe, if this model's
    /// chain construction is a pure function of the batch (no
    /// parameter- or state-dependent sampling). The pipelined trainer
    /// uses it to prefetch batch N+1 on a sampler stage; `None` (the
    /// default) limits prefetching to negative draws — memory-based
    /// models read mutable node state during chain construction, so
    /// their sampling cannot safely run ahead of the optimizer.
    fn sampling_spec(&self) -> Option<tglite::plan::SamplingSpec> {
        None
    }

    /// Resets model-held graph state (memory/mailbox) for a new epoch.
    fn reset_state(&self, ctx: &TContext) {
        ctx.graph().reset_state();
        ctx.clear_caches();
    }

    /// Checkpoints all parameters to `path` (positional format; see
    /// `tgl_tensor::save_params`). TGL's scripts checkpoint the best
    /// epoch and reload before test inference — this enables the same
    /// workflow.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        tglite::tensor::save_params(&self.parameters(), path)
    }

    /// Restores parameters from a checkpoint written by
    /// [`TemporalModel::save`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on shape/count mismatch or any I/O error.
    fn load(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        tglite::tensor::load_params(&self.parameters(), path)
    }
}

/// Splits a head-block output with rows `[srcs | dsts | negs]` into the
/// three embedding groups and scores them.
pub(crate) fn score_embeddings(
    predictor: &EdgePredictor,
    embs: &Tensor,
    batch_len: usize,
) -> (Tensor, Tensor) {
    let src = embs.narrow_rows(0, batch_len);
    let dst = embs.narrow_rows(batch_len, batch_len);
    let neg = embs.narrow_rows(2 * batch_len, batch_len);
    (predictor.forward(&src, &dst), predictor.forward(&src, &neg))
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for model tests.

    use std::sync::Arc;

    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::{Rng, SeedableRng};
    use tglite::tensor::Tensor;
    use tglite::{TBatch, TContext, TGraph};

    /// A small random bipartite-ish CTDG with features, suitable for
    /// smoke-training all four models.
    pub fn small_graph(seed: u64) -> Arc<TGraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_nodes = 20;
        let n_edges = 120;
        let mut edges = Vec::with_capacity(n_edges);
        for i in 0..n_edges {
            let s = rng.gen_range(0..10u32);
            let d = rng.gen_range(10..20u32);
            edges.push((s, d, i as f64 + 1.0));
        }
        let g = Arc::new(TGraph::from_edges(n_nodes, edges));
        g.set_node_feats(Tensor::rand_uniform([n_nodes, 6], -1.0, 1.0, &mut rng));
        g.set_edge_feats(Tensor::rand_uniform([n_edges, 4], -1.0, 1.0, &mut rng));
        g
    }

    pub fn ctx_for(g: &Arc<TGraph>) -> TContext {
        TContext::new(Arc::clone(g))
    }

    pub fn batch_with_negs(g: &Arc<TGraph>, range: std::ops::Range<usize>, seed: u64) -> TBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TBatch::new(Arc::clone(g), range);
        let negs = (0..b.len()).map(|_| rng.gen_range(10..20u32)).collect();
        b.set_negatives(negs);
        b
    }

    /// Smoke-trains a model for a few steps and asserts the loss
    /// decreases (or at least stays finite and the graph is exercised).
    pub fn train_steps<M: crate::TemporalModel>(
        model: &mut M,
        ctx: &TContext,
        steps: usize,
    ) -> (f32, f32) {
        use tglite::tensor::optim::Adam;
        let mut opt = Adam::new(model.parameters(), 1e-2);
        let g = Arc::clone(ctx.graph());
        let batch_size = 30;
        let mut first = f32::NAN;
        let mut last;
        let mut step = 0;
        'outer: loop {
            model.reset_state(ctx);
            for start in (0..g.num_edges() - batch_size).step_by(batch_size) {
                let batch = batch_with_negs(&g, start..start + batch_size, step as u64);
                opt.zero_grad();
                let (pos, neg) = model.forward(ctx, &batch);
                let logits = tglite::tensor::ops::cat(&[pos, neg], 0);
                let n = logits.dim(0);
                let mut targets = vec![1.0; n / 2];
                targets.extend(vec![0.0; n - n / 2]);
                let loss =
                    tglite::tensor::bce_with_logits(&logits, &Tensor::from_vec(targets, [n]));
                let l = loss.item();
                assert!(l.is_finite(), "loss must stay finite, got {l}");
                if step == 0 {
                    first = l;
                }
                last = l;
                loss.backward();
                opt.step();
                step += 1;
                if step >= steps {
                    break 'outer;
                }
            }
        }
        (first, last)
    }
}
