//! Property-based tests: autograd gradients match central-difference
//! numeric gradients on random inputs and shapes.
//!
//! Inputs are drawn from a seeded in-tree RNG and the properties are
//! checked over a fixed number of random cases per test, so runs are
//! deterministic and need no external property-testing framework.

use tgl_runtime::rng::{Rng, SeedableRng, StdRng};
use tgl_tensor::ops::cat;
use tgl_tensor::Tensor;

const CASES: usize = 24;

/// Random well-conditioned input of `len` values in `[lo, hi)` (bounded
/// away from op singularities).
fn random_input(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Numerically estimates the gradient of scalar-valued `f` at `data`
/// and compares to autograd's.
fn gradcheck(data: Vec<f32>, dims: Vec<usize>, f: impl Fn(&Tensor) -> Tensor, tol: f32) {
    let x = Tensor::from_vec(data.clone(), dims.clone()).requires_grad(true);
    let out = f(&x);
    assert_eq!(out.numel(), 1);
    out.backward();
    let analytic = x.grad().expect("gradient");
    let eps = 1e-2f32;
    for i in 0..data.len() {
        let mut plus = data.clone();
        plus[i] += eps;
        let mut minus = data.clone();
        minus[i] -= eps;
        let fp = f(&Tensor::from_vec(plus, dims.clone())).item();
        let fm = f(&Tensor::from_vec(minus, dims.clone())).item();
        let numeric = (fp - fm) / (2.0 * eps);
        assert!(
            (analytic[i] - numeric).abs() <= tol + tol * numeric.abs(),
            "grad[{i}]: analytic {} vs numeric {numeric}",
            analytic[i]
        );
    }
}

#[test]
fn elementwise_chain_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0xE1E);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..12);
        let data = random_input(&mut rng, n, -2.0, 2.0);
        gradcheck(data, vec![n], |x| x.mul_scalar(0.7).tanh().mul(x).sum_all(), 5e-2);
    }
}

#[test]
fn sigmoid_exp_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x516);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..12);
        let data = random_input(&mut rng, n, -2.0, 2.0);
        gradcheck(data, vec![n], |x| x.sigmoid().add_scalar(0.5).ln().sum_all(), 5e-2);
    }
}

#[test]
fn softmax_weighted_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x50F);
    for _ in 0..CASES {
        let n = rng.gen_range(4usize..12) & !1; // even
        let data = random_input(&mut rng, n, -2.0, 2.0);
        let w = Tensor::from_vec((0..n).map(|i| (i % 3) as f32 - 1.0).collect(), [2, n / 2]);
        gradcheck(data, vec![2, n / 2], move |x| x.softmax_last().mul(&w).sum_all(), 5e-2);
    }
}

#[test]
fn matmul_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x3A7);
    for _ in 0..CASES {
        // [2,3] x fixed [3,2]
        let data = random_input(&mut rng, 6, -1.5, 1.5);
        let b = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1], [3, 2]);
        gradcheck(data, vec![2, 3], move |x| x.matmul(&b).sum_all(), 5e-2);
    }
}

#[test]
fn cat_index_select_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0xCA7);
    for _ in 0..CASES {
        let n = rng.gen_range(4usize..10);
        let data = random_input(&mut rng, n, -2.0, 2.0);
        gradcheck(
            data,
            vec![n],
            move |x| {
                let y = cat(&[x.clone(), x.mul_scalar(2.0)], 0);
                y.index_select(&[0, n, n - 1, 0]).sum_all()
            },
            5e-2,
        );
    }
}

#[test]
fn reduction_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x2ED);
    for _ in 0..CASES {
        let data = random_input(&mut rng, 6, -2.0, 2.0);
        gradcheck(data, vec![2, 3], |x| x.sum_dim(1).mul(&x.mean_dim(1)).sum_all(), 5e-2);
    }
}

/// Broadcasting in any direction keeps gradients consistent with
/// materialized broadcasting.
#[test]
fn broadcast_grad_matches_materialized() {
    let mut rng = StdRng::seed_from_u64(0xB20);
    for _ in 0..CASES {
        let col = random_input(&mut rng, 3, -2.0, 2.0);
        let row = random_input(&mut rng, 4, -2.0, 2.0);
        let a = Tensor::from_vec(col.clone(), [3, 1]).requires_grad(true);
        let b = Tensor::from_vec(row.clone(), [4]);
        a.mul(&b).sum_all().backward();
        let got = a.grad().unwrap();
        let row_sum: f32 = row.iter().sum();
        for g in &got {
            assert!((g - row_sum).abs() < 1e-4);
        }
    }
}

/// exp(ln(x)) == x and the composed gradient is 1, for positive x.
#[test]
fn ln_exp_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x14E);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..8);
        let data = random_input(&mut rng, n, 0.2, 3.0);
        let x = Tensor::from_vec(data.clone(), [n]).requires_grad(true);
        let y = x.ln().exp();
        for (a, b) in y.to_vec().iter().zip(&data) {
            assert!((a - b).abs() < 1e-4);
        }
        y.sum_all().backward();
        for g in x.grad().unwrap() {
            assert!((g - 1.0).abs() < 1e-3);
        }
    }
}
