//! Property-based tests: autograd gradients match central-difference
//! numeric gradients on random inputs and shapes.

use proptest::prelude::*;
use tgl_tensor::ops::cat;
use tgl_tensor::Tensor;

/// Numerically estimates the gradient of scalar-valued `f` at `data`
/// and compares to autograd's.
fn gradcheck(data: Vec<f32>, dims: Vec<usize>, f: impl Fn(&Tensor) -> Tensor, tol: f32) {
    let x = Tensor::from_vec(data.clone(), dims.clone()).requires_grad(true);
    let out = f(&x);
    assert_eq!(out.numel(), 1);
    out.backward();
    let analytic = x.grad().expect("gradient");
    let eps = 1e-2f32;
    for i in 0..data.len() {
        let mut plus = data.clone();
        plus[i] += eps;
        let mut minus = data.clone();
        minus[i] -= eps;
        let fp = f(&Tensor::from_vec(plus, dims.clone())).item();
        let fm = f(&Tensor::from_vec(minus, dims.clone())).item();
        let numeric = (fp - fm) / (2.0 * eps);
        assert!(
            (analytic[i] - numeric).abs() <= tol + tol * numeric.abs(),
            "grad[{i}]: analytic {} vs numeric {numeric}",
            analytic[i]
        );
    }
}

/// Random well-conditioned input vectors (bounded away from op
/// singularities).
fn arb_input() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, 2..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn elementwise_chain_gradcheck(data in arb_input()) {
        let n = data.len();
        gradcheck(data, vec![n], |x| x.mul_scalar(0.7).tanh().mul(x).sum_all(), 5e-2);
    }

    #[test]
    fn sigmoid_exp_gradcheck(data in arb_input()) {
        let n = data.len();
        gradcheck(data, vec![n], |x| x.sigmoid().add_scalar(0.5).ln().sum_all(), 5e-2);
    }

    #[test]
    fn softmax_weighted_gradcheck(data in prop::collection::vec(-2.0f32..2.0, 4..12)) {
        let n = data.len() & !1; // even
        let data = data[..n].to_vec();
        let w = Tensor::from_vec((0..n).map(|i| (i % 3) as f32 - 1.0).collect(), [2, n / 2]);
        gradcheck(data, vec![2, n / 2], move |x| x.softmax_last().mul(&w).sum_all(), 5e-2);
    }

    #[test]
    fn matmul_gradcheck(data in prop::collection::vec(-1.5f32..1.5, 6..6usize.saturating_add(1))) {
        // [2,3] x fixed [3,2]
        let b = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1], [3, 2]);
        gradcheck(data, vec![2, 3], move |x| x.matmul(&b).sum_all(), 5e-2);
    }

    #[test]
    fn cat_index_select_gradcheck(data in prop::collection::vec(-2.0f32..2.0, 4..10)) {
        let n = data.len();
        gradcheck(data, vec![n], move |x| {
            let y = cat(&[x.clone(), x.mul_scalar(2.0)], 0);
            y.index_select(&[0, n, n - 1, 0]).sum_all()
        }, 5e-2);
    }

    #[test]
    fn reduction_gradcheck(data in prop::collection::vec(-2.0f32..2.0, 6..6usize.saturating_add(1))) {
        gradcheck(data, vec![2, 3], |x| x.sum_dim(1).mul(&x.mean_dim(1)).sum_all(), 5e-2);
    }

    /// Broadcasting in any direction keeps gradients consistent with
    /// materialized broadcasting.
    #[test]
    fn broadcast_grad_matches_materialized(
        col in prop::collection::vec(-2.0f32..2.0, 3..3usize.saturating_add(1)),
        row in prop::collection::vec(-2.0f32..2.0, 4..4usize.saturating_add(1)),
    ) {
        let a = Tensor::from_vec(col.clone(), [3, 1]).requires_grad(true);
        let b = Tensor::from_vec(row.clone(), [4]);
        a.mul(&b).sum_all().backward();
        let got = a.grad().unwrap();
        let row_sum: f32 = row.iter().sum();
        for g in &got {
            prop_assert!((g - row_sum).abs() < 1e-4);
        }
    }

    /// exp(ln(x)) == x and the composed gradient is 1, for positive x.
    #[test]
    fn ln_exp_roundtrip(data in prop::collection::vec(0.2f32..3.0, 2..8)) {
        let n = data.len();
        let x = Tensor::from_vec(data.clone(), [n]).requires_grad(true);
        let y = x.ln().exp();
        for (a, b) in y.to_vec().iter().zip(&data) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        y.sum_all().backward();
        for g in x.grad().unwrap() {
            prop_assert!((g - 1.0).abs() < 1e-3);
        }
    }
}
