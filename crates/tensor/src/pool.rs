//! Device-aware tensor buffer pool.
//!
//! Every tensor op used to materialize a fresh `Vec<f32>` through the
//! allocator; on the training hot path that makes malloc/free and
//! cold-cache writes the dominant cost (the op kernels themselves are
//! small). This module recycles those buffers instead: [`Storage`]
//! returns its buffer here on drop, and op kernels draw replacement
//! buffers with [`take_uninit`] / [`take_zeroed`]. After a warm-up
//! batch, an epoch performs O(parameters) real allocations rather than
//! O(ops × batches).
//!
//! [`Storage`]: crate::storage::Storage
//!
//! # Bucket policy
//!
//! Free buffers are kept per device tier in power-of-two size classes:
//! a buffer of length `len` lives in class `floor(log2(len))`, so class
//! `c` holds lengths in `[2^c, 2^(c+1))`. A request for `len` scans its
//! own class for the first buffer with `len` or more elements, then
//! falls back to class `c + 1` (where every buffer is large enough).
//! Oversized buffers are truncated to the requested length — `truncate`
//! never exposes uninitialized memory, so recycling is sound without
//! any `unsafe`. Repeated same-shape requests (the training-loop
//! pattern) therefore hit exactly-fitting buffers. Each class holds a
//! bounded number of buffers; surplus buffers are simply freed.
//!
//! # Zero-fill rules
//!
//! [`take_zeroed`] always returns an all-zero buffer (recycled buffers
//! are `fill(0.0)`-ed). [`take_uninit`] returns a buffer with stale but
//! *valid* `f32` contents; callers must overwrite every element before
//! any read. This is why recycling cannot change results: an op either
//! asked for zeros and got zeros, or promised to write every element it
//! reads. The determinism suite asserts bitwise-identical training
//! with the pool on and off.
//!
//! # Device accounting
//!
//! Buffers held by the pool are *not* registered with the `tgl-device`
//! tracker: `Storage` releases its accounting before donating the
//! buffer, and re-registers on reuse, so `tgl_device::stats()` still
//! reports exactly the bytes held by live tensors.
//!
//! # Escape hatch and metering
//!
//! `TGL_POOL=off` (or `0` / `false`) disables recycling: every take is
//! a fresh allocation and every give is a free. The request/miss
//! counters are metered in both modes, which is how the `alloc_churn`
//! bench measures the pool's effect:
//!
//! | counter                     | meaning                              |
//! |-----------------------------|--------------------------------------|
//! | `tensor.pool.request`       | buffer requests                      |
//! | `tensor.pool.request_bytes` | bytes requested                      |
//! | `tensor.pool.hit`           | requests served from the free lists  |
//! | `tensor.pool.recycled_bytes`| bytes served from the free lists     |
//! | `tensor.pool.miss`          | requests that hit the allocator      |
//! | `tensor.pool.alloc_bytes`   | bytes from the allocator             |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use tgl_device::Device;
use tgl_runtime::sync::Mutex;

/// Free buffers per class per device. Small classes (a few KB) keep
/// more buffers than large ones so pool-held memory stays bounded.
const CLASS_CAP_SMALL: usize = 32;
const CLASS_CAP_LARGE: usize = 4;
/// Classes at or above this (2^20 elements = 4 MiB) use the large cap.
const LARGE_CLASS: usize = 20;

/// One device tier's free lists, indexed by size class.
#[derive(Default)]
struct Shelf {
    classes: Vec<Vec<Vec<f32>>>,
}

impl Shelf {
    /// First-fit take: scan the request's own class for a buffer with
    /// at least `len` elements, then class `len_class + 1` where any
    /// buffer fits. The scan runs newest-first (`give` pushes at the
    /// back) so the steady-state pattern reuses the most recently freed
    /// — cache-hot — buffer, like an allocator's thread cache.
    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        let class = size_class(len);
        for c in [class, class + 1] {
            if let Some(bufs) = self.classes.get_mut(c) {
                if let Some(pos) = bufs.iter().rposition(|b| b.len() >= len) {
                    return Some(bufs.swap_remove(pos));
                }
            }
        }
        None
    }

    fn give(&mut self, buf: Vec<f32>) {
        let class = size_class(buf.len());
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        let cap = if class >= LARGE_CLASS { CLASS_CAP_LARGE } else { CLASS_CAP_SMALL };
        let bufs = &mut self.classes[class];
        if bufs.len() < cap {
            bufs.push(buf);
        }
        // else: drop — the class is full and the allocator reclaims it.
    }
}

fn size_class(len: usize) -> usize {
    (usize::BITS - 1).saturating_sub(len.leading_zeros()) as usize
}

fn shelf(device: Device) -> &'static Mutex<Shelf> {
    static SHELVES: OnceLock<[Mutex<Shelf>; 2]> = OnceLock::new();
    let shelves = SHELVES.get_or_init(|| [Mutex::new(Shelf::default()), Mutex::new(Shelf::default())]);
    match device {
        Device::Host => &shelves[0],
        Device::Accel => &shelves[1],
    }
}

/// Recycling gate: initialized from `TGL_POOL`, overridable at runtime
/// (benches toggle it to measure both configurations in one process).
static ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_READ: OnceLock<()> = OnceLock::new();

fn ensure_env() {
    ENV_READ.get_or_init(|| {
        if let Ok(v) = std::env::var("TGL_POOL") {
            let v = v.to_ascii_lowercase();
            if v == "off" || v == "0" || v == "false" {
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
}

/// Whether buffer recycling is active.
pub fn enabled() -> bool {
    ensure_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recycling on or off (counters keep metering either way).
/// Overrides the `TGL_POOL` environment setting.
pub fn set_enabled(on: bool) {
    ensure_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Returns a buffer of exactly `len` elements with **unspecified**
/// (stale but valid) contents. The caller must write every element
/// before reading it — this is what keeps recycling bit-exact.
pub fn take_uninit(len: usize, device: Device) -> Vec<f32> {
    take(len, device, false)
}

/// Returns an all-zero buffer of exactly `len` elements.
pub fn take_zeroed(len: usize, device: Device) -> Vec<f32> {
    take(len, device, true)
}

fn take(len: usize, device: Device, zeroed: bool) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let bytes = (len * std::mem::size_of::<f32>()) as u64;
    tgl_obs::counter!("tensor.pool.request").incr();
    tgl_obs::counter!("tensor.pool.request_bytes").add(bytes);
    if enabled() {
        if let Some(mut buf) = shelf(device).lock().take(len) {
            tgl_obs::counter!("tensor.pool.hit").incr();
            tgl_obs::counter!("tensor.pool.recycled_bytes").add(bytes);
            tgl_obs::profile::note_pool(true, bytes);
            buf.truncate(len);
            if zeroed {
                buf.fill(0.0);
            }
            return buf;
        }
    }
    tgl_obs::counter!("tensor.pool.miss").incr();
    tgl_obs::counter!("tensor.pool.alloc_bytes").add(bytes);
    tgl_obs::profile::note_pool(false, bytes);
    // Fresh path is zero-filled either way: the zeroed allocator is as
    // cheap as an uninitialized one plus it satisfies `take_zeroed`.
    vec![0.0; len]
}

/// Donates a buffer to `device`'s free lists (dropped if recycling is
/// off, the buffer is empty, or its size class is full).
pub fn give(buf: Vec<f32>, device: Device) {
    if buf.is_empty() || !enabled() {
        return;
    }
    shelf(device).lock().give(buf);
}

/// Frees every pooled buffer (used between measured bench configs and
/// by tests that need a cold pool).
pub fn clear() {
    for device in [Device::Host, Device::Accel] {
        shelf(device).lock().classes.clear();
    }
}

/// Number of buffers and total bytes currently held for `device`.
pub fn held(device: Device) -> (usize, u64) {
    let shelf = shelf(device).lock();
    let mut count = 0usize;
    let mut bytes = 0u64;
    for class in &shelf.classes {
        count += class.len();
        bytes += class
            .iter()
            .map(|b| (b.len() * std::mem::size_of::<f32>()) as u64)
            .sum::<u64>();
    }
    (count, bytes)
}

/// A pooled scratch buffer that returns itself to the pool on drop.
///
/// Backward closures capture forward-pass copies (e.g. a softmax
/// output) for the lifetime of the autograd graph; wrapping them in
/// `PooledBuf` recycles those copies when the graph is torn down at the
/// end of each batch.
pub(crate) struct PooledBuf {
    buf: Vec<f32>,
    device: Device,
}

impl PooledBuf {
    pub fn new(buf: Vec<f32>, device: Device) -> PooledBuf {
        PooledBuf { buf, device }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.buf), self.device);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes pool tests: they mutate the one global pool. Other
    /// tensor-crate tests run concurrently and give/take *host* buffers
    /// through ordinary op calls, so every assertion below uses the
    /// accel shelf with odd sizes no op test allocates.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn size_class_boundaries() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 1);
        assert_eq!(size_class(4), 2);
        assert_eq!(size_class(1023), 9);
        assert_eq!(size_class(1024), 10);
    }

    #[test]
    fn same_size_request_hits() {
        let _g = serial();
        set_enabled(true);
        give(vec![7.0; 5077], Device::Accel);
        let buf = take_uninit(5077, Device::Accel);
        assert_eq!(buf.len(), 5077);
        assert_eq!(buf[0], 7.0, "must be the recycled (dirty) buffer");
    }

    #[test]
    fn smaller_request_scans_next_class() {
        let _g = serial();
        set_enabled(true);
        // 9001 is class 13; a request of 3333 (class 11) misses its own
        // class... give an exact-class buffer too to hit the own-class
        // path first.
        give(vec![1.0; 3400], Device::Accel);
        let own = take_zeroed(3333, Device::Accel);
        assert_eq!(own.len(), 3333);
        assert!(own.iter().all(|&v| v == 0.0), "take_zeroed must zero-fill");
        // Next-class fallback: only a class-12 buffer available.
        give(vec![2.0; 7000], Device::Accel);
        let up = take_uninit(3600, Device::Accel);
        assert_eq!(up.len(), 3600);
        assert_eq!(up[0], 2.0, "served from the class above");
    }

    #[test]
    fn devices_do_not_mix() {
        let _g = serial();
        set_enabled(true);
        give(vec![7.5; 5077], Device::Accel);
        // A host request must not drain the accel shelf.
        let host = take_uninit(5077, Device::Host);
        assert_ne!(host.first(), Some(&7.5));
        let accel = take_uninit(5077, Device::Accel);
        assert_eq!(accel[0], 7.5, "accel buffer stays on the accel shelf");
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let _g = serial();
        clear();
        set_enabled(false);
        give(vec![9.0; 5077], Device::Accel);
        assert_eq!(held(Device::Accel).0, 0, "give while disabled must drop");
        let buf = take_uninit(5077, Device::Accel);
        assert!(buf.iter().all(|&v| v == 0.0), "disabled takes are fresh");
        set_enabled(true);
    }

    #[test]
    fn class_cap_bounds_held_buffers() {
        let _g = serial();
        set_enabled(true);
        let before = held(Device::Accel).0;
        for _ in 0..CLASS_CAP_SMALL + 10 {
            give(vec![0.0; 777], Device::Accel);
        }
        assert!(held(Device::Accel).0 <= before + CLASS_CAP_SMALL);
    }

    #[test]
    fn zero_len_is_free() {
        let _g = serial();
        let before = held(Device::Accel);
        give(Vec::new(), Device::Accel);
        assert_eq!(held(Device::Accel), before);
        assert!(take_uninit(0, Device::Accel).is_empty());
    }

    #[test]
    fn pooled_buf_returns_on_drop() {
        let _g = serial();
        set_enabled(true);
        {
            let _b = PooledBuf::new(vec![6.25; 4444], Device::Accel);
        }
        let back = take_uninit(4444, Device::Accel);
        assert_eq!(back[0], 6.25, "PooledBuf must donate its buffer on drop");
    }
}
