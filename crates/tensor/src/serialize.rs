//! Parameter checkpointing.
//!
//! A minimal, dependency-free binary format for saving and restoring a
//! model's parameter tensors (the `state_dict` role in the paper's
//! PyTorch stack — TGL's training scripts checkpoint the best epoch and
//! reload it before test inference).
//!
//! Format: magic `TGLT`, version u32, tensor count u32, then per
//! tensor: rank u32, dims (u64 each), data (f32 little-endian).
//! Tensors are identified positionally, so save/load must use the same
//! `parameters()` ordering — which is deterministic for all models in
//! this workspace.

use std::io::{Read, Write};
use std::path::Path;

use crate::Tensor;

const MAGIC: &[u8; 4] = b"TGLT";
const VERSION: u32 = 1;

/// Saves `params` to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(params: &[Tensor], path: &Path) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        w.write_all(&(p.rank() as u32).to_le_bytes())?;
        for &d in p.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        p.with_data(|data| {
            for v in data {
                w.write_all(&v.to_le_bytes())?;
            }
            Ok::<(), std::io::Error>(())
        })?;
    }
    w.flush()
}

/// Loads a checkpoint produced by [`save_params`] into `params` **in
/// place** (tensor count and shapes must match exactly).
///
/// # Errors
///
/// Returns `InvalidData` for a malformed file or any shape mismatch,
/// or the underlying I/O error.
pub fn load_params(params: &[Tensor], path: &Path) -> std::io::Result<()> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a TGLT checkpoint"));
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    if u32::from_le_bytes(u32buf) != VERSION {
        return Err(bad("unsupported checkpoint version"));
    }
    r.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;
    if count != params.len() {
        return Err(bad(&format!(
            "checkpoint has {count} tensors, model has {}",
            params.len()
        )));
    }
    for p in params {
        r.read_exact(&mut u32buf)?;
        let rank = u32::from_le_bytes(u32buf) as usize;
        if rank != p.rank() {
            return Err(bad("tensor rank mismatch"));
        }
        let mut u64buf = [0u8; 8];
        for &expect in p.dims() {
            r.read_exact(&mut u64buf)?;
            if u64::from_le_bytes(u64buf) as usize != expect {
                return Err(bad("tensor shape mismatch"));
            }
        }
        let mut data = vec![0.0f32; p.numel()];
        for v in data.iter_mut() {
            r.read_exact(&mut u32buf)?;
            *v = f32::from_le_bytes(u32buf);
        }
        p.copy_from_slice(&data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tgl-tensor-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_restores_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng).requires_grad(true);
        let b = Tensor::rand_uniform([5], -1.0, 1.0, &mut rng).requires_grad(true);
        let (va, vb) = (a.to_vec(), b.to_vec());
        let path = tmp("roundtrip.tglt");
        save_params(&[a.clone(), b.clone()], &path).unwrap();
        // Clobber, then restore.
        a.copy_from_slice(&[0.0; 12]);
        b.copy_from_slice(&[0.0; 5]);
        load_params(&[a.clone(), b.clone()], &path).unwrap();
        assert_eq!(a.to_vec(), va);
        assert_eq!(b.to_vec(), vb);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_mismatch_is_invalid_data() {
        let path = tmp("mismatch.tglt");
        save_params(&[Tensor::zeros([2, 2])], &path).unwrap();
        let err = load_params(&[Tensor::zeros([4])], &path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let err2 = load_params(&[Tensor::zeros([2, 3])], &path).unwrap_err();
        assert_eq!(err2.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn count_mismatch_is_invalid_data() {
        let path = tmp("count.tglt");
        save_params(&[Tensor::zeros([1])], &path).unwrap();
        let err = load_params(&[Tensor::zeros([1]), Tensor::zeros([1])], &path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_rejected() {
        let path = tmp("garbage.tglt");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let err = load_params(&[Tensor::zeros([1])], &path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }
}
