//! Reverse-mode automatic differentiation.
//!
//! The graph is a DAG of [`Node`]s built append-only during the forward
//! pass: every op result that requires gradient carries a node holding
//! its input tensors and a backward closure. Because tensor ids increase
//! monotonically with creation, visiting pending tensors in decreasing
//! id order is a valid reverse-topological order, so backward is a
//! simple priority sweep with gradient accumulation.

use std::cell::Cell;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use crate::tensor::Tensor;

/// A backward-graph node: the op's inputs plus a closure mapping the
/// output gradient to per-input gradients.
pub(crate) struct Node {
    pub(crate) inputs: Vec<Tensor>,
    #[allow(clippy::type_complexity)]
    pub(crate) backward: Box<dyn Fn(&[f32]) -> Vec<Option<Vec<f32>>> + Send + Sync>,
    /// Forward op that created this node (`"op"` when the profiler was
    /// off at build time) plus the analytic cost of the backward pass,
    /// both captured from the profiler frame via
    /// [`tgl_obs::profile::node_info`].
    pub(crate) op: &'static str,
    pub(crate) bwd_flops: u64,
    pub(crate) bwd_read: u64,
    pub(crate) bwd_write: u64,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node(inputs={})", self.inputs.len())
    }
}

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether ops created on this thread currently record backward nodes.
pub(crate) fn grad_enabled() -> bool {
    GRAD_ENABLED.with(|c| c.get())
}

/// RAII guard that disables gradient tracking on the current thread for
/// its lifetime. Obtained from [`no_grad`].
#[derive(Debug)]
pub struct NoGradGuard {
    prev: bool,
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        GRAD_ENABLED.with(|c| c.set(self.prev));
    }
}

/// Disables gradient tracking until the returned guard is dropped.
///
/// Used for inference passes where building the backward graph would
/// waste time and memory.
///
/// # Examples
///
/// ```
/// use tgl_tensor::{no_grad, Tensor};
///
/// let x = Tensor::ones([2]).requires_grad(true);
/// let y = {
///     let _guard = no_grad();
///     x.mul(&x)
/// };
/// assert!(!y.requires_grad_flag());
/// ```
pub fn no_grad() -> NoGradGuard {
    let prev = GRAD_ENABLED.with(|c| c.replace(false));
    NoGradGuard { prev }
}

impl Tensor {
    /// Runs backpropagation from a scalar tensor, accumulating gradients
    /// into every reachable leaf with `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a single element.
    pub fn backward(&self) {
        assert_eq!(
            self.numel(),
            1,
            "backward() requires a scalar; use backward_with for non-scalars"
        );
        self.backward_with(vec![1.0]);
    }

    /// Runs backpropagation seeding this tensor's gradient with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed.len() != numel()`.
    pub fn backward_with(&self, seed: Vec<f32>) {
        assert_eq!(seed.len(), self.numel(), "seed gradient length mismatch");
        // Pending gradients keyed by tensor id; BTreeMap lets us pop the
        // largest id, i.e. the most recently created tensor, which is a
        // valid reverse-topological order for an append-only DAG.
        let mut pending: BTreeMap<u64, (Tensor, Vec<f32>)> = BTreeMap::new();
        pending.insert(self.id(), (self.clone(), seed));

        while let Some((_, (tensor, grad))) = pending.pop_last() {
            match &tensor.inner.grad_fn {
                Some(node) => {
                    let input_grads = {
                        let _prof = tgl_obs::profile::op_backward(
                            node.op,
                            node.bwd_flops,
                            node.bwd_read,
                            node.bwd_write,
                        );
                        (node.backward)(&grad)
                    };
                    assert_eq!(
                        input_grads.len(),
                        node.inputs.len(),
                        "backward closure returned wrong number of gradients"
                    );
                    for (input, g) in node.inputs.iter().zip(input_grads) {
                        let Some(g) = g else { continue };
                        if !input.inner.requires_grad {
                            crate::pool::give(g, input.device());
                            continue;
                        }
                        assert_eq!(
                            g.len(),
                            input.numel(),
                            "gradient shape mismatch for input {}",
                            input.shape()
                        );
                        match pending.entry(input.id()) {
                            Entry::Occupied(mut e) => {
                                for (a, b) in e.get_mut().1.iter_mut().zip(&g) {
                                    *a += b;
                                }
                                crate::pool::give(g, input.device());
                            }
                            Entry::Vacant(e) => {
                                e.insert((input.clone(), g));
                            }
                        }
                    }
                    // The output gradient this node consumed is dead now.
                    crate::pool::give(grad, tensor.device());
                }
                None => {
                    if tensor.inner.requires_grad {
                        tensor.accumulate_grad_owned(grad);
                    } else {
                        crate::pool::give(grad, tensor.device());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_grad_guard_restores() {
        assert!(grad_enabled());
        {
            let _g = no_grad();
            assert!(!grad_enabled());
            {
                let _g2 = no_grad();
                assert!(!grad_enabled());
            }
            assert!(!grad_enabled());
        }
        assert!(grad_enabled());
    }

    #[test]
    fn backward_through_shared_input_accumulates() {
        // y = x + x  =>  dy/dx = 2
        let x = Tensor::from_vec(vec![3.0], [1]).requires_grad(true);
        let y = x.add(&x);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![2.0]);
    }

    #[test]
    fn backward_diamond_graph() {
        // z = (x*x) + (x*2); dz/dx = 2x + 2 = 8 at x=3
        let x = Tensor::from_vec(vec![3.0], [1]).requires_grad(true);
        let a = x.mul(&x);
        let b = x.mul_scalar(2.0);
        let z = a.add(&b);
        z.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![8.0]);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        let y = x.mul_scalar(3.0);
        y.sum_all().backward();
        let y2 = x.mul_scalar(3.0);
        y2.sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![6.0]);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn no_grad_skips_graph() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        let _g = no_grad();
        let y = x.mul_scalar(2.0);
        assert!(!y.requires_grad_flag());
    }

    #[test]
    #[should_panic(expected = "requires a scalar")]
    fn backward_non_scalar_panics() {
        Tensor::zeros([2]).requires_grad(true).backward();
    }
}
