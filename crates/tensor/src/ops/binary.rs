//! Broadcasting elementwise binary operators.

use tgl_runtime::{parallel_for, UnsafeSlice};

use crate::ops::{same_device, ELEMWISE_SEQ};
use crate::pool;
use crate::shape::Shape;
use crate::Tensor;

/// Invokes `f(ai, bi)` for every output element of broadcasting `a_dims`
/// against `b_dims`, in row-major output order, passing the flat input
/// indices. Shapes must already be broadcast-compatible. Dispatches on
/// rank with tight nested loops (the general fallback handles rank > 4).
pub(crate) fn broadcast_apply(
    a_dims: &[usize],
    b_dims: &[usize],
    mut f: impl FnMut(usize, usize),
) {
    let rank = a_dims.len().max(b_dims.len());
    // Pad to common rank and compute broadcast-aware strides (0 where
    // a dim is 1).
    let mut od = [1usize; 4];
    let mut sa = [0usize; 4];
    let mut sb = [0usize; 4];
    if rank > 4 {
        return broadcast_apply_general(a_dims, b_dims, f);
    }
    let off = 4 - rank;
    {
        let mut acc = 1usize;
        for i in (0..a_dims.len()).rev() {
            sa[off + (rank - a_dims.len()) + i] = if a_dims[i] == 1 { 0 } else { acc };
            acc *= a_dims[i];
        }
    }
    {
        let mut acc = 1usize;
        for i in (0..b_dims.len()).rev() {
            sb[off + (rank - b_dims.len()) + i] = if b_dims[i] == 1 { 0 } else { acc };
            acc *= b_dims[i];
        }
    }
    for i in 0..rank {
        let ad = a_dims.get(a_dims.len().wrapping_sub(rank - i)).copied().unwrap_or(1);
        let bd = b_dims.get(b_dims.len().wrapping_sub(rank - i)).copied().unwrap_or(1);
        // Broadcast semantics (not max): a 1 takes the other side's
        // extent, including zero-size dims.
        od[off + i] = if ad == 1 { bd } else { ad };
    }
    for i0 in 0..od[0] {
        let (a0, b0) = (i0 * sa[0], i0 * sb[0]);
        for i1 in 0..od[1] {
            let (a1, b1) = (a0 + i1 * sa[1], b0 + i1 * sb[1]);
            for i2 in 0..od[2] {
                let (a2, b2) = (a1 + i2 * sa[2], b1 + i2 * sb[2]);
                if sa[3] == 1 && sb[3] == 1 {
                    for i3 in 0..od[3] {
                        f(a2 + i3, b2 + i3);
                    }
                } else {
                    for i3 in 0..od[3] {
                        f(a2 + i3 * sa[3], b2 + i3 * sb[3]);
                    }
                }
            }
        }
    }
}

fn broadcast_apply_general(a_dims: &[usize], b_dims: &[usize], mut f: impl FnMut(usize, usize)) {
    let a = Shape::new(a_dims.to_vec());
    let b = Shape::new(b_dims.to_vec());
    let out = a.broadcast_with(&b).expect("compatible shapes");
    for (ai, bi) in crate::shape::broadcast_index_iter(&a, &b, &out) {
        f(ai, bi);
    }
}

/// Applies `fwd` elementwise with NumPy broadcasting; `bwd(a, b, go)`
/// returns `(d/da, d/db)` local gradients for one element. `name` and
/// `flops_per_elem` feed the op profiler.
fn binary_elementwise(
    name: &'static str,
    flops_per_elem: u64,
    a: &Tensor,
    b: &Tensor,
    fwd: impl Fn(f32, f32) -> f32 + Sync,
    bwd: impl Fn(f32, f32, f32) -> (f32, f32) + Send + Sync + 'static,
) -> Tensor {
    let device = same_device(a, b);
    let out_shape = a
        .shape()
        .broadcast_with(b.shape())
        .unwrap_or_else(|| panic!("shapes {} and {} do not broadcast", a.shape(), b.shape()));

    let n = out_shape.numel() as u64;
    let (an, bn) = (a.numel() as u64, b.numel() as u64);
    let _prof = tgl_obs::profile::op(name)
        .flops(flops_per_elem * n)
        .io(4 * (an + bn), 4 * n)
        .shape(&[a.dims(), b.dims()])
        // Backward produces one local gradient per input element from
        // the upstream grad and both operands.
        .backward_cost(2 * n, 4 * (an + bn + n), 4 * (an + bn));

    let a_data = a.inner.storage.read();
    let b_data = b.inner.storage.read();
    // Every output element is written below, so recycled pool memory
    // needs no zero pass.
    let mut out = pool::take_uninit(out_shape.numel(), device);
    if a.shape() == b.shape() {
        // Fast path: identical shapes — chunked across the pool.
        let out_sl = UnsafeSlice::new(&mut out);
        let (a_data, b_data, fwd) = (&a_data, &b_data, &fwd);
        parallel_for(a_data.len(), ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
            // SAFETY: chunks partition the element space.
            let o = unsafe { out_sl.slice_mut(r.start, r.len()) };
            for (k, i) in r.enumerate() {
                o[k] = fwd(a_data[i], b_data[i]);
            }
        });
    } else {
        let mut oi = 0;
        broadcast_apply(a.dims(), b.dims(), |ai, bi| {
            out[oi] = fwd(a_data[ai], b_data[bi]);
            oi += 1;
        });
    }
    drop(a_data);
    drop(b_data);

    let (a_c, b_c) = (a.clone(), b.clone());
    let same = a.shape() == b.shape();
    let (a_dims, b_dims) = (a.dims().to_vec(), b.dims().to_vec());
    let (a_n, b_n) = (a.numel(), b.numel());
    Tensor::make_result(out, out_shape, device, &[a.clone(), b.clone()], move |go| {
        let a_data = a_c.inner.storage.read();
        let b_data = b_c.inner.storage.read();
        // Same-shape gradients are fully overwritten; broadcast
        // gradients accumulate with `+=` and must start zeroed.
        let (mut ga, mut gb) = if same {
            (pool::take_uninit(a_n, device), pool::take_uninit(b_n, device))
        } else {
            (pool::take_zeroed(a_n, device), pool::take_zeroed(b_n, device))
        };
        if same {
            let ga_sl = UnsafeSlice::new(&mut ga);
            let gb_sl = UnsafeSlice::new(&mut gb);
            let (a_data, b_data, bwd) = (&a_data, &b_data, &bwd);
            parallel_for(a_n, ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
                // SAFETY: chunks partition the element space.
                let (gar, gbr) = unsafe {
                    (ga_sl.slice_mut(r.start, r.len()), gb_sl.slice_mut(r.start, r.len()))
                };
                for (k, i) in r.enumerate() {
                    let (da, db) = bwd(a_data[i], b_data[i], go[i]);
                    gar[k] = da;
                    gbr[k] = db;
                }
            });
        } else {
            let mut oi = 0;
            broadcast_apply(&a_dims, &b_dims, |ai, bi| {
                let (da, db) = bwd(a_data[ai], b_data[bi], go[oi]);
                ga[ai] += da;
                gb[bi] += db;
                oi += 1;
            });
        }
        vec![Some(ga), Some(gb)]
    })
}

impl Tensor {
    /// Elementwise addition with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not broadcast or devices differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        binary_elementwise("add", 1, self, other, |x, y| x + y, |_, _, g| (g, g))
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        binary_elementwise("sub", 1, self, other, |x, y| x - y, |_, _, g| (g, -g))
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        binary_elementwise("mul", 1, self, other, |x, y| x * y, |x, y, g| (g * y, g * x))
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        binary_elementwise(
            "div",
            1,
            self,
            other,
            |x, y| x / y,
            |x, y, g| (g / y, -g * x / (y * y)),
        )
    }

    /// Elementwise maximum with broadcasting. Gradient flows to the
    /// larger operand (ties favor `self`).
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        binary_elementwise(
            "maximum",
            1,
            self,
            other,
            f32::max,
            |x, y, g| if x >= y { (g, 0.0) } else { (0.0, g) },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_close, check_gradient};

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], [2]);
        assert_eq!(a.add(&b).to_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_row() {
        // [2,3] + [3]
        let a = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], [2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(a.add(&b).to_vec(), vec![1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn mul_broadcast_column() {
        // [2,1] * [3] -> [2,3]
        let a = Tensor::from_vec(vec![2.0, 3.0], [2, 1]);
        let b = Tensor::from_vec(vec![1.0, 10.0, 100.0], [3]);
        assert_eq!(
            a.mul(&b).to_vec(),
            vec![2.0, 20.0, 200.0, 3.0, 30.0, 300.0]
        );
    }

    #[test]
    fn broadcast_rank3_per_row_scalar() {
        // [2,2,2] * [2,2,1]
        let a = Tensor::from_vec((1..=8).map(|v| v as f32).collect(), [2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 10.0, 100.0, 1000.0], [2, 2, 1]);
        assert_eq!(
            a.mul(&b).to_vec(),
            vec![1.0, 2.0, 30.0, 40.0, 500.0, 600.0, 7000.0, 8000.0]
        );
    }

    #[test]
    fn broadcast_rank4() {
        let a = Tensor::ones([2, 1, 2, 1]);
        let b = Tensor::from_vec(vec![1.0, 2.0], [1, 2, 1, 1]);
        let out = a.mul(&b);
        assert_eq!(out.dims(), &[2, 2, 2, 1]);
        assert_eq!(out.to_vec(), vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn sub_div_values() {
        let a = Tensor::from_vec(vec![6.0, 9.0], [2]);
        let b = Tensor::from_vec(vec![2.0, 3.0], [2]);
        assert_eq!(a.sub(&b).to_vec(), vec![4.0, 6.0]);
        assert_eq!(a.div(&b).to_vec(), vec![3.0, 3.0]);
    }

    #[test]
    fn maximum_values_and_grad_routing() {
        let a = Tensor::from_vec(vec![1.0, 5.0], [2]).requires_grad(true);
        let b = Tensor::from_vec(vec![3.0, 2.0], [2]).requires_grad(true);
        let m = a.maximum(&b);
        assert_eq!(m.to_vec(), vec![3.0, 5.0]);
        m.sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![0.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "do not broadcast")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4]);
        a.add(&b);
    }

    #[test]
    fn add_grad_reduces_over_broadcast_dims() {
        // b is broadcast over rows; its gradient sums the rows.
        let a = Tensor::zeros([2, 3]).requires_grad(true);
        let b = Tensor::zeros([3]).requires_grad(true);
        a.add(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 6]);
        assert_eq!(b.grad().unwrap(), vec![2.0; 3]);
    }

    #[test]
    fn mul_gradcheck() {
        let x = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.25], [2, 2]).requires_grad(true);
        let c = Tensor::from_vec(vec![2.0, 3.0], [2]);
        check_gradient(&x, |t| t.mul(&c).sum_all(), 1e-2);
    }

    #[test]
    fn broadcast_grad_column_times_row() {
        let a = Tensor::from_vec(vec![2.0, 3.0], [2, 1]).requires_grad(true);
        let b = Tensor::from_vec(vec![1.0, 10.0], [2]).requires_grad(true);
        a.mul(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![11.0, 11.0]);
        assert_eq!(b.grad().unwrap(), vec![5.0, 5.0]);
    }

    #[test]
    fn div_gradcheck() {
        let x = Tensor::from_vec(vec![1.0, 2.0, -3.0], [3]).requires_grad(true);
        let c = Tensor::from_vec(vec![2.0, 4.0, 5.0], [3]);
        check_gradient(&x, |t| t.div(&c).sum_all(), 1e-2);
        let y = Tensor::from_vec(vec![2.0, 4.0, 5.0], [3]).requires_grad(true);
        let n = Tensor::from_vec(vec![1.0, 2.0, -3.0], [3]);
        check_gradient(&y, |t| n.div(t).sum_all(), 1e-2);
    }

    #[test]
    fn scalar_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let s = Tensor::scalar(10.0);
        assert_close(&a.mul(&s).to_vec(), &[10.0, 20.0], 0.0);
    }

    #[test]
    fn zero_size_dims_broadcast_to_empty() {
        let a = Tensor::zeros([0, 1]);
        let b = Tensor::ones([16]);
        let out = a.mul(&b);
        assert_eq!(out.dims(), &[0, 16]);
        assert_eq!(out.numel(), 0);
    }

    #[test]
    fn fast_and_general_paths_agree() {
        // broadcast_apply (fast nested loops) vs the iterator fallback.
        use crate::shape::broadcast_index_iter;
        for (a_dims, b_dims) in [
            (vec![3usize, 1, 2], vec![4usize, 1]),
            (vec![2, 3], vec![3]),
            (vec![5], vec![1]),
            (vec![2, 2, 2], vec![2, 2, 1]),
        ] {
            let a = Shape::new(a_dims.clone());
            let b = Shape::new(b_dims.clone());
            let out = a.broadcast_with(&b).unwrap();
            let expected: Vec<(usize, usize)> = broadcast_index_iter(&a, &b, &out).collect();
            let mut got = Vec::new();
            broadcast_apply(&a_dims, &b_dims, |ai, bi| got.push((ai, bi)));
            assert_eq!(got, expected, "shapes {a_dims:?} vs {b_dims:?}");
        }
    }
}
