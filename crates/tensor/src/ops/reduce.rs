//! Reduction operators (sum / mean / max, full or per-dimension).

use tgl_runtime::{parallel_for, parallel_for_chunks, UnsafeSlice};

use crate::ops::rows_threshold;
use crate::pool;
use crate::shape::Shape;
use crate::Tensor;

/// Fixed-chunk size for whole-buffer sums. The chunk size is a function
/// of nothing but this constant, and partials combine in chunk order,
/// so rounding is identical for every thread count (within 1e-5 of a
/// straight sequential sum).
const SUM_CHUNK: usize = 8192;

/// Sums a slice with fixed-size ordered chunks across the pool.
fn sum_slice(data: &[f32]) -> f32 {
    if data.len() <= SUM_CHUNK {
        return data.iter().sum();
    }
    let n_chunks = data.len().div_ceil(SUM_CHUNK);
    let mut partials = vec![0.0f32; n_chunks];
    {
        let p = UnsafeSlice::new(&mut partials);
        parallel_for_chunks(data.len(), SUM_CHUNK, |ci, r| {
            // SAFETY: one write per chunk index.
            unsafe { *p.get_mut(ci) = data[r].iter().sum() };
        });
    }
    partials.iter().sum()
}

impl Tensor {
    /// Sums all elements into a scalar tensor.
    pub fn sum_all(&self) -> Tensor {
        let _prof = tgl_obs::profile::op("sum_all")
            .flops(self.numel() as u64)
            .io(4 * self.numel() as u64, 4)
            .shape(&[self.dims()])
            .backward_cost(0, 4, 4 * self.numel() as u64);
        let total: f32 = sum_slice(&self.inner.storage.read());
        let n = self.numel();
        let device = self.device();
        Tensor::make_result(
            vec![total],
            Shape::scalar(),
            self.device(),
            std::slice::from_ref(self),
            move |go| {
                let mut g = pool::take_uninit(n, device);
                g.fill(go[0]);
                vec![Some(g)]
            },
        )
    }

    /// Means all elements into a scalar tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.numel() as f32;
        self.sum_all().mul_scalar(1.0 / n)
    }

    /// Sums along dimension `dim`, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn sum_dim(&self, dim: usize) -> Tensor {
        self.reduce_dim(dim, ReduceKind::Sum)
    }

    /// Means along dimension `dim`, removing it from the shape.
    pub fn mean_dim(&self, dim: usize) -> Tensor {
        let d = self.dim(dim) as f32;
        self.sum_dim(dim).mul_scalar(1.0 / d)
    }

    /// Max along dimension `dim`, removing it. Gradient routes to the
    /// (first) argmax.
    pub fn max_dim(&self, dim: usize) -> Tensor {
        self.reduce_dim(dim, ReduceKind::Max)
    }

    /// Index of the maximum along the last dimension, per row
    /// (non-differentiable).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors or an empty last dimension.
    pub fn argmax_last(&self) -> Vec<usize> {
        assert!(self.rank() >= 1, "argmax needs rank >= 1");
        let cols = self.dim(self.rank() - 1);
        assert!(cols > 0, "argmax over empty dimension");
        let rows = self.numel() / cols;
        self.with_data(|data| {
            (0..rows)
                .map(|r| {
                    let row = &data[r * cols..(r + 1) * cols];
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .map(|(i, _)| i)
                        .expect("nonempty row")
                })
                .collect()
        })
    }

    fn reduce_dim(&self, dim: usize, kind: ReduceKind) -> Tensor {
        assert!(dim < self.rank(), "reduce dim {dim} out of range for {}", self.shape());
        let _prof = tgl_obs::profile::op(match kind {
            ReduceKind::Sum => "sum_dim",
            ReduceKind::Max => "max_dim",
        })
        .flops(self.numel() as u64)
        .io(4 * self.numel() as u64, 4 * (self.numel() / self.dim(dim).max(1)) as u64)
        .shape(&[self.dims()])
        .backward_cost(
            0,
            4 * (self.numel() / self.dim(dim).max(1)) as u64,
            4 * self.numel() as u64,
        );
        let dims = self.dims();
        let outer: usize = dims[..dim].iter().product();
        let mid = dims[dim];
        let inner: usize = dims[dim + 1..].iter().product();
        let device = self.device();
        let data = self.inner.storage.read();
        let out_shape = self.shape().without_dim(dim);
        let mut out = pool::take_uninit(outer * inner, device);
        out.fill(match kind {
            ReduceKind::Sum => 0.0,
            ReduceKind::Max => f32::NEG_INFINITY,
        });
        let mut argmax = match kind {
            ReduceKind::Max => vec![0usize; outer * inner],
            ReduceKind::Sum => Vec::new(),
        };
        // Parallel over `outer`: each outer index owns its own output
        // (and argmax) rows, and the m-then-i accumulation order per
        // element matches the sequential loops exactly.
        {
            let out_sl = UnsafeSlice::new(&mut out);
            let arg_sl = UnsafeSlice::new(&mut argmax);
            let data = &data;
            parallel_for(outer, rows_threshold(mid * inner), |os: std::ops::Range<usize>| {
                for o in os {
                    for m in 0..mid {
                        for i in 0..inner {
                            let src = (o * mid + m) * inner + i;
                            let dst = o * inner + i;
                            // SAFETY: `dst` ranges are disjoint across `o`.
                            match kind {
                                ReduceKind::Sum => unsafe { *out_sl.get_mut(dst) += data[src] },
                                ReduceKind::Max => unsafe {
                                    if data[src] > *out_sl.get_mut(dst) {
                                        *out_sl.get_mut(dst) = data[src];
                                        *arg_sl.get_mut(dst) = m;
                                    }
                                },
                            }
                        }
                    }
                }
            });
        }
        drop(data);
        let n = self.numel();
        Tensor::make_result(
            out,
            out_shape,
            self.device(),
            std::slice::from_ref(self),
            move |go| {
                // Sum writes every input slot; Max only touches argmax
                // positions and needs a zeroed start.
                let mut g = match kind {
                    ReduceKind::Sum => pool::take_uninit(n, device),
                    ReduceKind::Max => pool::take_zeroed(n, device),
                };
                {
                    let g_sl = UnsafeSlice::new(&mut g);
                    let (go, argmax) = (&go, &argmax);
                    parallel_for(outer, rows_threshold(mid * inner), |os: std::ops::Range<usize>| {
                        for o in os {
                            for m in 0..mid {
                                for i in 0..inner {
                                    let src = (o * mid + m) * inner + i;
                                    let dst = o * inner + i;
                                    // SAFETY: `src` ranges are disjoint across `o`.
                                    match kind {
                                        ReduceKind::Sum => unsafe { *g_sl.get_mut(src) = go[dst] },
                                        ReduceKind::Max => {
                                            if argmax[dst] == m {
                                                unsafe { *g_sl.get_mut(src) = go[dst] };
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    });
                }
                vec![Some(g)]
            },
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceKind {
    Sum,
    Max,
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn sum_all_scalar() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(t.sum_all().item(), 6.0);
        assert_eq!(t.sum_all().rank(), 0);
    }

    #[test]
    fn mean_all() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0], [2, 2]);
        assert_eq!(t.mean_all().item(), 3.0);
    }

    #[test]
    fn sum_dim_rows_and_cols() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.sum_dim(0).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(t.sum_dim(0).dims(), &[3]);
        assert_eq!(t.sum_dim(1).to_vec(), vec![6.0, 15.0]);
        assert_eq!(t.sum_dim(1).dims(), &[2]);
    }

    #[test]
    fn mean_dim() {
        let t = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], [2, 2]);
        assert_eq!(t.mean_dim(1).to_vec(), vec![3.0, 7.0]);
    }

    #[test]
    fn max_dim_values_and_grad() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], [2, 2]).requires_grad(true);
        let m = t.max_dim(1);
        assert_eq!(m.to_vec(), vec![5.0, 3.0]);
        m.sum_all().backward();
        assert_eq!(t.grad().unwrap(), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sum_dim_middle_of_rank3() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), [2, 3, 4]);
        let s = t.sum_dim(1);
        assert_eq!(s.dims(), &[2, 4]);
        // out[0,0] = t[0,0,0] + t[0,1,0] + t[0,2,0] = 0 + 4 + 8
        assert_eq!(s.to_vec()[0], 12.0);
    }

    #[test]
    fn argmax_last_per_row() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 3.0, 9.0, 2.0, 1.0], [2, 3]);
        assert_eq!(t.argmax_last(), vec![1, 0]);
        let v = Tensor::from_vec(vec![0.5, 0.9], [2]);
        assert_eq!(v.argmax_last(), vec![1]);
    }

    #[test]
    fn sum_gradchecks() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [2, 3]).requires_grad(true);
        check_gradient(&x, |t| t.sum_dim(0).mul_scalar(2.0).sum_all(), 1e-2);
        check_gradient(&x, |t| t.mean_dim(1).sum_all(), 1e-2);
        check_gradient(&x, |t| t.mean_all(), 1e-2);
    }

    #[test]
    fn sum_all_grad_is_ones() {
        let x = Tensor::from_vec(vec![5.0, -2.0], [2]).requires_grad(true);
        x.sum_all().backward();
        assert_close(&x.grad().unwrap(), &[1.0, 1.0], 0.0);
    }
}
