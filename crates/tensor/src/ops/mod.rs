//! Tensor operators.
//!
//! All operators are differentiable unless documented otherwise; each
//! builds a backward node when gradient tracking is active. Kernels run
//! on the CPU regardless of the tensor's device tag (the simulated
//! accelerator shares the host's compute; see `tgl-device`).

mod binary;
mod index;
mod matmul;
mod reduce;
pub mod segment;
mod shape_ops;
mod softmax;
mod unary;

pub use index::{cat, stack};
pub use segment::{segment_max, segment_mean, segment_softmax, segment_sum};

use crate::Tensor;
use tgl_device::Device;

/// Asserts that two op operands live on the same device and returns it.
pub(crate) fn same_device(a: &Tensor, b: &Tensor) -> Device {
    assert_eq!(
        a.device(),
        b.device(),
        "operands must be on the same device ({} vs {})",
        a.device(),
        b.device()
    );
    a.device()
}
