//! Tensor operators.
//!
//! All operators are differentiable unless documented otherwise; each
//! builds a backward node when gradient tracking is active. Kernels run
//! on the CPU regardless of the tensor's device tag (the simulated
//! accelerator shares the host's compute; see `tgl-device`).

mod binary;
mod fused;
pub(crate) mod gemm;
mod index;
mod inplace;
mod matmul;
mod reduce;
pub mod segment;
mod shape_ops;
mod softmax;
mod unary;

pub use index::{cat, stack};
pub use inplace::AdamStep;
pub use segment::{segment_max, segment_mean, segment_softmax, segment_sum};

use crate::Tensor;
use tgl_device::Device;

/// Elementwise kernels below this many elements run inline on the
/// caller; pool dispatch costs more than the arithmetic.
pub(crate) const ELEMWISE_SEQ: usize = 16 * 1024;

/// Row count matching [`ELEMWISE_SEQ`] for kernels that partition rows
/// of `row_elems` elements each (feeds `parallel_for`'s threshold).
pub(crate) fn rows_threshold(row_elems: usize) -> usize {
    (ELEMWISE_SEQ / row_elems.max(1)).max(1)
}

/// Asserts that two op operands live on the same device and returns it.
pub(crate) fn same_device(a: &Tensor, b: &Tensor) -> Device {
    assert_eq!(
        a.device(),
        b.device(),
        "operands must be on the same device ({} vs {})",
        a.device(),
        b.device()
    );
    a.device()
}
