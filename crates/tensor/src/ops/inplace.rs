//! In-place tensor mutation (no autograd tracking).
//!
//! These operators overwrite their receiver's storage directly, so the
//! hot training loop — optimizer steps, running statistics, gradient
//! post-processing — performs zero tensor allocations. None of them
//! record backward nodes; calling one on a tensor that carries a
//! `grad_fn` is a logic error (it would silently corrupt saved
//! activations) and panics.
//!
//! All kernels run single-threaded: every call site operates on
//! parameter-sized buffers (well under [`crate::ops::ELEMWISE_SEQ`]),
//! where pool dispatch would cost more than the arithmetic. On AVX2
//! hosts the loops dispatch to lane-wise SIMD that is bitwise identical
//! to the scalar code in exact kernel mode (see `crate::kernel`); fast
//! mode contracts the multiply-adds to FMA.

use crate::kernel;
use crate::Tensor;

use self::inplace_simd::adam_dispatch;

pub(crate) mod inplace_simd {
    //! The fused Adam kernel's SIMD body, kept out of the `impl` block.

    use super::AdamStep;

    /// One fused Adam pass over all four buffers.
    ///
    /// Exact-safe without FMA: every lane op (two EMAs as mul/mul/add,
    /// bias-correction divides, `sqrtps`, the update's mul/div/sub)
    /// performs the identical IEEE roundings in the same order as the
    /// scalar loop. Fast mode contracts the two EMAs.
    pub(crate) fn adam_dispatch(
        pd: &mut [f32],
        md: &mut [f32],
        vd: &mut [f32],
        g: &[f32],
        s: AdamStep,
        fma: bool,
    ) {
        #[cfg(target_arch = "x86_64")]
        if crate::kernel::avx2() {
            // SAFETY: avx2() verified CPU support.
            unsafe {
                if fma {
                    adam_avx2::<true>(pd, md, vd, g, s);
                } else {
                    adam_avx2::<false>(pd, md, vd, g, s);
                }
            }
            return;
        }
        let _ = fma;
        for i in 0..g.len() {
            let gi = g[i];
            md[i] = s.beta1 * md[i] + (1.0 - s.beta1) * gi;
            vd[i] = s.beta2 * vd[i] + (1.0 - s.beta2) * gi * gi;
            let m_hat = md[i] / s.bc1;
            let v_hat = vd[i] / s.bc2;
            pd[i] -= s.lr * m_hat / (v_hat.sqrt() + s.eps);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn adam_avx2<const FMA: bool>(
        pd: &mut [f32],
        md: &mut [f32],
        vd: &mut [f32],
        g: &[f32],
        s: AdamStep,
    ) {
        use std::arch::x86_64::*;
        let n = pd.len();
        let chunks = n / 8;
        let b1 = _mm256_set1_ps(s.beta1);
        let b2 = _mm256_set1_ps(s.beta2);
        let c1 = _mm256_set1_ps(1.0 - s.beta1);
        let c2 = _mm256_set1_ps(1.0 - s.beta2);
        let bc1 = _mm256_set1_ps(s.bc1);
        let bc2 = _mm256_set1_ps(s.bc2);
        let eps = _mm256_set1_ps(s.eps);
        let lr = _mm256_set1_ps(s.lr);
        for q in 0..chunks {
            let p = q * 8;
            let gv = _mm256_loadu_ps(g.as_ptr().add(p));
            let mv = _mm256_loadu_ps(md.as_ptr().add(p));
            let vv = _mm256_loadu_ps(vd.as_ptr().add(p));
            // m = β₁m + (1-β₁)g, scalar order: mul, mul, add.
            let m_new = if FMA {
                _mm256_fmadd_ps(b1, mv, _mm256_mul_ps(c1, gv))
            } else {
                _mm256_add_ps(_mm256_mul_ps(b1, mv), _mm256_mul_ps(c1, gv))
            };
            // v = β₂v + ((1-β₂)g)·g, left-associated like the scalar.
            let cg = _mm256_mul_ps(c2, gv);
            let v_new = if FMA {
                _mm256_fmadd_ps(b2, vv, _mm256_mul_ps(cg, gv))
            } else {
                _mm256_add_ps(_mm256_mul_ps(b2, vv), _mm256_mul_ps(cg, gv))
            };
            _mm256_storeu_ps(md.as_mut_ptr().add(p), m_new);
            _mm256_storeu_ps(vd.as_mut_ptr().add(p), v_new);
            let m_hat = _mm256_div_ps(m_new, bc1);
            let v_hat = _mm256_div_ps(v_new, bc2);
            let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), eps);
            let step = _mm256_div_ps(_mm256_mul_ps(lr, m_hat), denom);
            let pv = _mm256_sub_ps(_mm256_loadu_ps(pd.as_ptr().add(p)), step);
            _mm256_storeu_ps(pd.as_mut_ptr().add(p), pv);
        }
        for i in chunks * 8..n {
            let gi = *g.get_unchecked(i);
            md[i] = s.beta1 * md[i] + (1.0 - s.beta1) * gi;
            vd[i] = s.beta2 * vd[i] + (1.0 - s.beta2) * gi * gi;
            let m_hat = md[i] / s.bc1;
            let v_hat = vd[i] / s.bc2;
            pd[i] -= s.lr * m_hat / (v_hat.sqrt() + s.eps);
        }
    }
}

/// Hyper-parameters for one fused Adam update (see
/// [`Tensor::adam_step_`]). The bias corrections `bc1`/`bc2` are
/// `1 - beta^t` for the current step `t`, precomputed by the caller so
/// the kernel stays a pure element-wise pass.
#[derive(Debug, Clone, Copy)]
pub struct AdamStep {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// `1 - beta1.powi(t)`.
    pub bc1: f32,
    /// `1 - beta2.powi(t)`.
    pub bc2: f32,
}

impl Tensor {
    fn assert_inplace_ok(&self, other_numel: usize, op: &str) {
        assert!(
            self.inner.grad_fn.is_none(),
            "{op} would corrupt the autograd graph (receiver has a grad_fn)"
        );
        assert_eq!(
            self.numel(),
            other_numel,
            "{op} operand length mismatch: {} vs {other_numel}",
            self.numel()
        );
    }

    /// `self += other`, element-wise, in place.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or if `self` has a backward node.
    pub fn add_(&self, other: &Tensor) -> &Tensor {
        self.assert_inplace_ok(other.numel(), "add_");
        let n = self.numel() as u64;
        let _prof = tgl_obs::profile::op("add_").flops(n).io(8 * n, 4 * n).shape(&[self.dims()]);
        if std::sync::Arc::ptr_eq(&self.inner.storage, &other.inner.storage) {
            let mut d = self.inner.storage.write();
            for v in d.iter_mut() {
                *v += *v;
            }
        } else {
            let o = other.inner.storage.read();
            let mut d = self.inner.storage.write();
            kernel::add_assign_dispatch(&mut d, &o);
        }
        self
    }

    /// `self *= s`, in place.
    ///
    /// # Panics
    ///
    /// Panics if `self` has a backward node.
    pub fn mul_scalar_(&self, s: f32) -> &Tensor {
        self.assert_inplace_ok(self.numel(), "mul_scalar_");
        let n = self.numel() as u64;
        let _prof =
            tgl_obs::profile::op("mul_scalar_").flops(n).io(4 * n, 4 * n).shape(&[self.dims()]);
        let mut d = self.inner.storage.write();
        kernel::scale_dispatch(&mut d, s);
        self
    }

    /// `self += s * other` (axpy), reading `other` from a raw slice so
    /// gradient buffers can feed it without wrapping.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or if `self` has a backward node.
    pub fn add_scaled_(&self, other: &[f32], s: f32) -> &Tensor {
        self.assert_inplace_ok(other.len(), "add_scaled_");
        let n = self.numel() as u64;
        let _prof =
            tgl_obs::profile::op("add_scaled_").flops(2 * n).io(8 * n, 4 * n).shape(&[self.dims()]);
        let mut d = self.inner.storage.write();
        kernel::axpy_dispatch(&mut d, other, s, kernel::fast());
        self
    }

    /// `self += s * a * b`, element-wise over raw slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or if `self` has a backward node.
    pub fn addcmul_(&self, a: &[f32], b: &[f32], s: f32) -> &Tensor {
        self.assert_inplace_ok(a.len(), "addcmul_");
        let n = self.numel() as u64;
        let _prof =
            tgl_obs::profile::op("addcmul_").flops(3 * n).io(12 * n, 4 * n).shape(&[self.dims()]);
        assert_eq!(a.len(), b.len(), "addcmul_ factor length mismatch");
        let mut d = self.inner.storage.write();
        kernel::addcmul_dispatch(&mut d, a, b, s, kernel::fast());
        self
    }

    /// One fused Adam update: advances the first/second moment tensors
    /// `m`/`v` from gradient `g` and applies the bias-corrected step to
    /// `self`, all in a single pass with no temporaries.
    ///
    /// Per element: `m = β₁m + (1-β₁)g`, `v = β₂v + (1-β₂)g²`,
    /// `self -= lr · (m/bc1) / (√(v/bc2) + ε)`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or if any receiver has a backward node.
    pub fn adam_step_(&self, g: &[f32], m: &Tensor, v: &Tensor, s: AdamStep) -> &Tensor {
        self.assert_inplace_ok(g.len(), "adam_step_");
        let n = self.numel() as u64;
        // ~11 flops/elem: two moment EMAs, two bias corrections, sqrt,
        // divide, and the parameter update.
        let _prof =
            tgl_obs::profile::op("adam_step_").flops(11 * n).io(16 * n, 12 * n).shape(&[self.dims()]);
        m.assert_inplace_ok(g.len(), "adam_step_ (m)");
        v.assert_inplace_ok(g.len(), "adam_step_ (v)");
        let mut md = m.inner.storage.write();
        let mut vd = v.inner.storage.write();
        let mut pd = self.inner.storage.write();
        adam_dispatch(&mut pd, &mut md, &mut vd, g, s, kernel::fast());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::assert_close;

    #[test]
    fn add_in_place() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let b = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3]);
        a.add_(&b);
        assert_eq!(a.to_vec(), vec![1.5, 1.0, 5.0]);
        assert_eq!(b.to_vec(), vec![0.5, -1.0, 2.0]);
    }

    #[test]
    fn add_self_aliasing_doubles() {
        let a = Tensor::from_vec(vec![1.0, -2.0], [2]);
        let view = a.clone();
        a.add_(&view);
        assert_eq!(a.to_vec(), vec![2.0, -4.0]);
    }

    #[test]
    fn mul_scalar_in_place() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 4.0], [3]);
        a.mul_scalar_(0.5);
        assert_eq!(a.to_vec(), vec![0.5, -1.0, 2.0]);
    }

    #[test]
    fn add_scaled_matches_axpy() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        a.add_scaled_(&[10.0, -10.0], 0.1);
        assert_eq!(a.to_vec(), vec![2.0, 1.0]);
    }

    #[test]
    fn addcmul_matches_reference() {
        let a = Tensor::from_vec(vec![1.0, 1.0, 1.0], [3]);
        a.addcmul_(&[2.0, 3.0, 4.0], &[0.5, 0.5, 0.5], 2.0);
        assert_eq!(a.to_vec(), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn adam_step_matches_unfused_update() {
        let (beta1, beta2, lr, eps) = (0.9f32, 0.999f32, 0.01f32, 1e-8f32);
        let g = [0.3f32, -0.7, 1.2];
        let p = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let m = Tensor::from_vec(vec![0.1, 0.0, -0.2], [3]);
        let v = Tensor::from_vec(vec![0.01, 0.02, 0.0], [3]);

        // Reference: the classic three-pass formulation.
        let t = 3;
        let (bc1, bc2) = (1.0 - beta1.powi(t), 1.0 - beta2.powi(t));
        let mut want_p = p.to_vec();
        let mut want_m = m.to_vec();
        let mut want_v = v.to_vec();
        for i in 0..3 {
            want_m[i] = beta1 * want_m[i] + (1.0 - beta1) * g[i];
            want_v[i] = beta2 * want_v[i] + (1.0 - beta2) * g[i] * g[i];
            want_p[i] -= lr * (want_m[i] / bc1) / ((want_v[i] / bc2).sqrt() + eps);
        }

        p.adam_step_(&g, &m, &v, AdamStep { lr, beta1, beta2, eps, bc1, bc2 });
        assert_close(&p.to_vec(), &want_p, 0.0);
        assert_close(&m.to_vec(), &want_m, 0.0);
        assert_close(&v.to_vec(), &want_v, 0.0);
    }

    #[test]
    #[should_panic(expected = "corrupt the autograd graph")]
    fn inplace_on_graph_tensor_panics() {
        let x = Tensor::ones([2]).requires_grad(true);
        let y = x.mul_scalar(2.0); // has a grad_fn
        y.mul_scalar_(3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        Tensor::ones([2]).add_(&Tensor::ones([3]));
    }
}
