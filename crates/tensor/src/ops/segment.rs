//! Segmented (per-group) operators.
//!
//! These are the kernels underneath TGLite's edge-wise block operators:
//! `edge_softmax` is a segmented softmax grouped by destination node,
//! `edge_reduce` is a segmented reduction, and `src_scatter` uses
//! segmented mean. Inputs are `[N, D]` row tensors plus a per-row
//! segment id; segment ids need not be sorted.

use tgl_runtime::{parallel_for, UnsafeSlice};

use crate::kernel;
use crate::pool::{self, PooledBuf};
use crate::Tensor;

/// AVX2 forward for one 8-column block of one segment: per-lane
/// max / `exp256` / sum / normalize over the segment's rows (ascending,
/// strided by `d`). Fast-only — `exp256` differs from libm `exp`.
///
/// # Safety
///
/// Requires AVX2+FMA; `j0 + 8 <= d`; the caller's segment owns rows.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn seg_softmax_block_avx2(
    x: &[f32],
    y: &UnsafeSlice<f32>,
    rows: &[usize],
    d: usize,
    j0: usize,
) {
    use std::arch::x86_64::*;

    use crate::kernel::x86::exp256;
    let mut vm = _mm256_set1_ps(f32::NEG_INFINITY);
    for &i in rows {
        vm = _mm256_max_ps(vm, _mm256_loadu_ps(x.as_ptr().add(i * d + j0)));
    }
    let mut vs = _mm256_setzero_ps();
    for &i in rows {
        let e = exp256(_mm256_sub_ps(_mm256_loadu_ps(x.as_ptr().add(i * d + j0)), vm));
        // SAFETY: segments partition rows, so row `i` is written by
        // exactly one segment; columns j0..j0+8 are in bounds.
        let out = y.slice_mut(i * d + j0, 8);
        _mm256_storeu_ps(out.as_mut_ptr(), e);
        vs = _mm256_add_ps(vs, e);
    }
    for &i in rows {
        let out = y.slice_mut(i * d + j0, 8);
        let v = _mm256_div_ps(_mm256_loadu_ps(out.as_ptr()), vs);
        _mm256_storeu_ps(out.as_mut_ptr(), v);
    }
}

/// AVX2 backward for one 8-column block of one segment:
/// `g_i = (go_i - Σ_k go_k y_k) * y_i` per lane. Exact-safe — the
/// per-column dot accumulates mul-then-add over ascending rows, the
/// identical roundings and order as the scalar loop.
///
/// # Safety
///
/// Requires AVX2+FMA; `j0 + 8 <= d`; the caller's segment owns rows.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn seg_softmax_grad_block_avx2(
    go: &[f32],
    yv: &[f32],
    g: &UnsafeSlice<f32>,
    rows: &[usize],
    d: usize,
    j0: usize,
) {
    use std::arch::x86_64::*;
    let mut vdot = _mm256_setzero_ps();
    for &i in rows {
        vdot = _mm256_add_ps(
            vdot,
            _mm256_mul_ps(
                _mm256_loadu_ps(go.as_ptr().add(i * d + j0)),
                _mm256_loadu_ps(yv.as_ptr().add(i * d + j0)),
            ),
        );
    }
    for &i in rows {
        // SAFETY: segments partition rows; columns are in bounds.
        let out = g.slice_mut(i * d + j0, 8);
        let v = _mm256_mul_ps(
            _mm256_sub_ps(_mm256_loadu_ps(go.as_ptr().add(i * d + j0)), vdot),
            _mm256_loadu_ps(yv.as_ptr().add(i * d + j0)),
        );
        _mm256_storeu_ps(out.as_mut_ptr(), v);
    }
}

/// Rows grouped by segment: `rows[starts[s]..starts[s + 1]]` lists the
/// row indices of segment `s` in ascending order (counting sort, so the
/// grouping is stable). Built sequentially in O(n); parallel kernels
/// then own whole segments, which keeps per-segment accumulation in the
/// same ascending-row floating-point order as the sequential loops.
struct SegmentIndex {
    starts: Vec<usize>,
    rows: Vec<usize>,
}

impl SegmentIndex {
    fn build(segments: &[usize], num_segments: usize) -> SegmentIndex {
        let mut starts = vec![0usize; num_segments + 1];
        for &s in segments {
            starts[s + 1] += 1;
        }
        for s in 0..num_segments {
            starts[s + 1] += starts[s];
        }
        let mut cursor = starts.clone();
        let mut rows = vec![0usize; segments.len()];
        for (i, &s) in segments.iter().enumerate() {
            rows[cursor[s]] = i;
            cursor[s] += 1;
        }
        SegmentIndex { starts, rows }
    }

    fn rows_of(&self, s: usize) -> &[usize] {
        &self.rows[self.starts[s]..self.starts[s + 1]]
    }
}

/// Segment batches below ~4096 total elements run inline — expressed as
/// a `parallel_for` element threshold over the segment count.
fn seg_seq_threshold(total_elems: usize, num_segments: usize) -> usize {
    if total_elems <= 4096 {
        num_segments
    } else {
        1
    }
}

fn check_segments(values: &Tensor, segments: &[usize], num_segments: usize) -> (usize, usize) {
    assert!(values.rank() >= 1, "segment ops need rank >= 1 values");
    let n = values.dim(0);
    assert_eq!(
        segments.len(),
        n,
        "segment ids ({}) must match rows ({n})",
        segments.len()
    );
    for &s in segments {
        assert!(
            s < num_segments,
            "segment id {s} out of range ({num_segments} segments)"
        );
    }
    let d: usize = values.dims()[1..].iter().product();
    (n, d)
}

/// Sums rows of `values` into `num_segments` buckets:
/// `out[s] = Σ_{i: segments[i]==s} values[i]`.
///
/// Empty segments produce zero rows. Differentiable.
///
/// # Panics
///
/// Panics if `segments.len() != values.dim(0)` or any id is out of
/// range.
///
/// # Examples
///
/// ```
/// use tgl_tensor::{ops::segment_sum, Tensor};
///
/// let v = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3, 1]);
/// let s = segment_sum(&v, &[0, 1, 0], 2);
/// assert_eq!(s.to_vec(), vec![4.0, 2.0]);
/// ```
pub fn segment_sum(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let _prof = tgl_obs::profile::op("segment_sum")
        .flops((n * d) as u64)
        .io(4 * (n * d) as u64, 4 * (num_segments * d) as u64)
        .shape(&[values.dims(), &[num_segments]])
        .backward_cost(0, 4 * (num_segments * d) as u64, 4 * (n * d) as u64);
    let device = values.device();
    let idx = SegmentIndex::build(segments, num_segments);
    // Accumulates with `+=` (and empty segments stay zero), so the
    // recycled buffer must start zeroed.
    let mut out = pool::take_zeroed(num_segments * d, device);
    {
        let x = values.inner.storage.read();
        let out_sl = UnsafeSlice::new(&mut out);
        parallel_for(
            num_segments,
            seg_seq_threshold(n * d, num_segments),
            |segs: std::ops::Range<usize>| {
                // SAFETY: each segment owns its own output row.
                let rows_out = unsafe { out_sl.slice_mut(segs.start * d, segs.len() * d) };
                for (si, s) in segs.enumerate() {
                    let orow = &mut rows_out[si * d..(si + 1) * d];
                    for &i in idx.rows_of(s) {
                        // Exact-safe SIMD: lane-wise adds in ascending
                        // row order, bitwise equal to the scalar loop.
                        kernel::add_assign_dispatch(orow, &x[i * d..(i + 1) * d]);
                    }
                }
            },
        );
    }
    let mut out_dims = values.dims().to_vec();
    out_dims[0] = num_segments;
    let seg = segments.to_vec();
    Tensor::make_result(out, out_dims, values.device(), std::slice::from_ref(values), move |go| {
        // Gather: every input row copies its segment's gradient row.
        let mut g = pool::take_uninit(n * d, device);
        let g_sl = UnsafeSlice::new(&mut g);
        parallel_for(n, seg_seq_threshold(n * d, n), |rows: std::ops::Range<usize>| {
            // SAFETY: disjoint row ranges per chunk.
            let g_rows = unsafe { g_sl.slice_mut(rows.start * d, rows.len() * d) };
            for (ri, i) in rows.enumerate() {
                let s = seg[i];
                g_rows[ri * d..(ri + 1) * d].copy_from_slice(&go[s * d..(s + 1) * d]);
            }
        });
        vec![Some(g)]
    })
}

/// Averages rows of `values` per segment. Empty segments yield zeros.
pub fn segment_mean(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let _prof = tgl_obs::profile::op("segment_mean")
        .flops(2 * (n * d) as u64)
        .io(4 * (n * d) as u64, 4 * (num_segments * d) as u64)
        .shape(&[values.dims(), &[num_segments]])
        .backward_cost((n * d) as u64, 4 * (num_segments * d) as u64, 4 * (n * d) as u64);
    let mut counts = vec![0.0f32; num_segments];
    for &s in segments {
        counts[s] += 1.0;
    }
    let device = values.device();
    let idx = SegmentIndex::build(segments, num_segments);
    let mut out = pool::take_zeroed(num_segments * d, device);
    {
        let x = values.inner.storage.read();
        let out_sl = UnsafeSlice::new(&mut out);
        let counts = &counts;
        parallel_for(
            num_segments,
            seg_seq_threshold(n * d, num_segments),
            |segs: std::ops::Range<usize>| {
                // SAFETY: each segment owns its own output row.
                let rows_out = unsafe { out_sl.slice_mut(segs.start * d, segs.len() * d) };
                for (si, s) in segs.enumerate() {
                    let orow = &mut rows_out[si * d..(si + 1) * d];
                    for &i in idx.rows_of(s) {
                        // Exact-safe SIMD: lane-wise div-then-add, the
                        // same two roundings as the scalar loop.
                        kernel::add_div_dispatch(orow, &x[i * d..(i + 1) * d], counts[s]);
                    }
                }
            },
        );
    }
    let mut out_dims = values.dims().to_vec();
    out_dims[0] = num_segments;
    let seg = segments.to_vec();
    Tensor::make_result(out, out_dims, values.device(), std::slice::from_ref(values), move |go| {
        let mut g = pool::take_uninit(n * d, device);
        let g_sl = UnsafeSlice::new(&mut g);
        let (seg, counts) = (&seg, &counts);
        parallel_for(n, seg_seq_threshold(n * d, n), |rows: std::ops::Range<usize>| {
            // SAFETY: disjoint row ranges per chunk.
            let g_rows = unsafe { g_sl.slice_mut(rows.start * d, rows.len() * d) };
            for (ri, i) in rows.enumerate() {
                let s = seg[i];
                for j in 0..d {
                    g_rows[ri * d + j] = go[s * d + j] / counts[s];
                }
            }
        });
        vec![Some(g)]
    })
}

/// Per-segment max of rows. Empty segments yield zeros; gradient routes
/// to the (first) argmax row per segment/column.
pub fn segment_max(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let _prof = tgl_obs::profile::op("segment_max")
        .flops((n * d) as u64)
        .io(4 * (n * d) as u64, 4 * (num_segments * d) as u64)
        .shape(&[values.dims(), &[num_segments]])
        .backward_cost(0, 4 * (num_segments * d) as u64, 4 * (n * d) as u64);
    let device = values.device();
    let mut out = pool::take_uninit(num_segments * d, device);
    out.fill(f32::NEG_INFINITY);
    let mut argmax = vec![usize::MAX; num_segments * d];
    {
        let x = values.inner.storage.read();
        for (i, &s) in segments.iter().enumerate() {
            for j in 0..d {
                if x[i * d + j] > out[s * d + j] {
                    out[s * d + j] = x[i * d + j];
                    argmax[s * d + j] = i;
                }
            }
        }
    }
    for v in out.iter_mut() {
        if !v.is_finite() {
            *v = 0.0; // empty segment
        }
    }
    let mut out_dims = values.dims().to_vec();
    out_dims[0] = num_segments;
    Tensor::make_result(out, out_dims, values.device(), std::slice::from_ref(values), move |go| {
        // Only argmax positions receive gradient; the rest must be zero.
        let mut g = pool::take_zeroed(n * d, device);
        for (sd, &i) in argmax.iter().enumerate() {
            if i != usize::MAX {
                let j = sd % d;
                g[i * d + j] = go[sd];
            }
        }
        vec![Some(g)]
    })
}

/// Segmented softmax: softmax across the rows of each segment,
/// independently per column (column = attention head).
///
/// For single-column `[N, 1]` values with segments = destination ids,
/// this is exactly TGLite's `edge_softmax`. Empty segments contribute
/// nothing; rows keep their position.
pub fn segment_softmax(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let _prof = tgl_obs::profile::op("segment_softmax")
        .flops(5 * (n * d) as u64)
        .io(4 * (n * d) as u64, 8 * (n * d) as u64)
        .shape(&[values.dims(), &[num_segments]])
        .backward_cost(4 * (n * d) as u64, 8 * (n * d) as u64, 4 * (n * d) as u64);
    let device = values.device();
    let idx = SegmentIndex::build(segments, num_segments);
    let fast_simd = kernel::fast() && kernel::avx2();
    #[cfg(not(target_arch = "x86_64"))]
    let _ = fast_simd;
    // Segments partition the rows, so every element is written below.
    let mut y = pool::take_uninit(n * d, device);
    {
        let x = values.inner.storage.read();
        let y_sl = UnsafeSlice::new(&mut y);
        let idx = &idx;
        parallel_for(
            num_segments,
            seg_seq_threshold(n * d, num_segments),
            |segs: std::ops::Range<usize>| {
                for s in segs {
                    let rows = idx.rows_of(s);
                    #[cfg_attr(not(target_arch = "x86_64"), allow(unused_mut))]
                    let mut j0 = 0;
                    #[cfg(target_arch = "x86_64")]
                    if fast_simd {
                        while j0 + 8 <= d {
                            // SAFETY: `fast_simd` implies avx2; the
                            // block's 8 columns are in bounds.
                            unsafe { seg_softmax_block_avx2(&x[..], &y_sl, rows, d, j0) };
                            j0 += 8;
                        }
                    }
                    for j in j0..d {
                        // Per (segment, column) max for stability, then
                        // exp and normalize — all over ascending rows.
                        let mut mx = f32::NEG_INFINITY;
                        for &i in rows {
                            mx = mx.max(x[i * d + j]);
                        }
                        let mut sum = 0.0f32;
                        for &i in rows {
                            let e = (x[i * d + j] - mx).exp();
                            // SAFETY: segments partition rows, so row
                            // `i` is written by exactly one segment.
                            unsafe { *y_sl.get_mut(i * d + j) = e };
                            sum += e;
                        }
                        for &i in rows {
                            unsafe { *y_sl.get_mut(i * d + j) /= sum };
                        }
                    }
                }
            },
        );
    }
    let y_copy = {
        let mut c = pool::take_uninit(y.len(), device);
        c.copy_from_slice(&y);
        PooledBuf::new(c, device)
    };
    Tensor::make_result(
        y,
        values.shape().clone(),
        values.device(),
        std::slice::from_ref(values),
        move |go| {
            // Per segment/column: dx_i = (go_i - Σ_k go_k y_k) * y_i
            let simd = kernel::avx2();
            #[cfg(not(target_arch = "x86_64"))]
            let _ = simd;
            let mut g = pool::take_uninit(n * d, device);
            let g_sl = UnsafeSlice::new(&mut g);
            let (idx, y_copy) = (&idx, &y_copy);
            parallel_for(
                num_segments,
                seg_seq_threshold(n * d, num_segments),
                |segs: std::ops::Range<usize>| {
                    for s in segs {
                        let rows = idx.rows_of(s);
                        #[cfg_attr(not(target_arch = "x86_64"), allow(unused_mut))]
                        let mut j0 = 0;
                        #[cfg(target_arch = "x86_64")]
                        if simd {
                            while j0 + 8 <= d {
                                // SAFETY: `simd` is kernel::avx2(); the
                                // block is exact-safe (see its docs).
                                unsafe {
                                    seg_softmax_grad_block_avx2(go, &y_copy[..], &g_sl, rows, d, j0)
                                };
                                j0 += 8;
                            }
                        }
                        for j in j0..d {
                            let mut dot = 0.0f32;
                            for &i in rows {
                                dot += go[i * d + j] * y_copy[i * d + j];
                            }
                            for &i in rows {
                                // SAFETY: segments partition rows.
                                unsafe {
                                    *g_sl.get_mut(i * d + j) =
                                        (go[i * d + j] - dot) * y_copy[i * d + j];
                                }
                            }
                        }
                    }
                },
            );
            vec![Some(g)]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_close, check_gradient};

    #[test]
    fn segment_sum_values() {
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let s = segment_sum(&v, &[1, 0, 1], 2);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn segment_sum_empty_segment_zero() {
        let v = Tensor::from_vec(vec![1.0, 2.0], [2, 1]);
        let s = segment_sum(&v, &[0, 0], 3);
        assert_eq!(s.to_vec(), vec![3.0, 0.0, 0.0]);
    }

    #[test]
    fn segment_mean_values() {
        let v = Tensor::from_vec(vec![2.0, 4.0, 6.0], [3, 1]);
        let m = segment_mean(&v, &[0, 0, 1], 2);
        assert_eq!(m.to_vec(), vec![3.0, 6.0]);
    }

    #[test]
    fn segment_max_values_and_grad() {
        let v = Tensor::from_vec(vec![1.0, 5.0, 3.0], [3, 1]).requires_grad(true);
        let m = segment_max(&v, &[0, 0, 1], 2);
        assert_eq!(m.to_vec(), vec![5.0, 3.0]);
        m.sum_all().backward();
        assert_eq!(v.grad().unwrap(), vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.5], [4, 1]);
        let y = segment_softmax(&v, &[0, 0, 1, 1], 2).to_vec();
        assert_close(&[y[0] + y[1]], &[1.0], 1e-6);
        assert_close(&[y[2] + y[3]], &[1.0], 1e-6);
        assert!(y[1] > y[0]);
    }

    #[test]
    fn segment_softmax_single_row_segment_is_one() {
        let v = Tensor::from_vec(vec![42.0], [1, 1]);
        let y = segment_softmax(&v, &[0], 1);
        assert_close(&y.to_vec(), &[1.0], 1e-6);
    }

    #[test]
    fn segment_softmax_multihead_columns_independent() {
        // Two columns should each softmax independently within segments.
        let v = Tensor::from_vec(vec![0.0, 10.0, 0.0, 10.0], [2, 2]);
        let y = segment_softmax(&v, &[0, 0], 1).to_vec();
        assert_close(&[y[0] + y[2]], &[1.0], 1e-6);
        assert_close(&[y[1] + y[3]], &[1.0], 1e-6);
        assert_close(&[y[0], y[1]], &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn segment_softmax_matches_dense_softmax_single_segment() {
        let v = Tensor::from_vec(vec![1.0, -1.0, 0.5], [3, 1]);
        let seg = segment_softmax(&v, &[0, 0, 0], 1).to_vec();
        let dense = Tensor::from_vec(vec![1.0, -1.0, 0.5], [3]).softmax_last().to_vec();
        assert_close(&seg, &dense, 1e-6);
    }

    #[test]
    fn segment_sum_gradcheck() {
        let v = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], [4, 1]).requires_grad(true);
        let w = Tensor::from_vec(vec![1.0, 3.0], [2, 1]);
        check_gradient(&v, |x| segment_sum(x, &[1, 0, 1, 0], 2).mul(&w).sum_all(), 1e-2);
    }

    #[test]
    fn segment_mean_gradcheck() {
        let v = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3, 1]).requires_grad(true);
        let w = Tensor::from_vec(vec![2.0, -1.0], [2, 1]);
        check_gradient(&v, |x| segment_mean(x, &[0, 0, 1], 2).mul(&w).sum_all(), 1e-2);
    }

    #[test]
    fn segment_softmax_gradcheck() {
        let v = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], [4, 1]).requires_grad(true);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 2.0], [4, 1]);
        check_gradient(
            &v,
            |x| segment_softmax(x, &[0, 0, 1, 1], 2).mul(&w).sum_all(),
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_id_out_of_range_panics() {
        segment_sum(&Tensor::zeros([2, 1]), &[0, 5], 2);
    }

    #[test]
    #[should_panic(expected = "must match rows")]
    fn segment_len_mismatch_panics() {
        segment_sum(&Tensor::zeros([3, 1]), &[0], 2);
    }
}
