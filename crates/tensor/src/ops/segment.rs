//! Segmented (per-group) operators.
//!
//! These are the kernels underneath TGLite's edge-wise block operators:
//! `edge_softmax` is a segmented softmax grouped by destination node,
//! `edge_reduce` is a segmented reduction, and `src_scatter` uses
//! segmented mean. Inputs are `[N, D]` row tensors plus a per-row
//! segment id; segment ids need not be sorted.

use crate::Tensor;

fn check_segments(values: &Tensor, segments: &[usize], num_segments: usize) -> (usize, usize) {
    assert!(values.rank() >= 1, "segment ops need rank >= 1 values");
    let n = values.dim(0);
    assert_eq!(
        segments.len(),
        n,
        "segment ids ({}) must match rows ({n})",
        segments.len()
    );
    for &s in segments {
        assert!(
            s < num_segments,
            "segment id {s} out of range ({num_segments} segments)"
        );
    }
    let d: usize = values.dims()[1..].iter().product();
    (n, d)
}

/// Sums rows of `values` into `num_segments` buckets:
/// `out[s] = Σ_{i: segments[i]==s} values[i]`.
///
/// Empty segments produce zero rows. Differentiable.
///
/// # Panics
///
/// Panics if `segments.len() != values.dim(0)` or any id is out of
/// range.
///
/// # Examples
///
/// ```
/// use tgl_tensor::{ops::segment_sum, Tensor};
///
/// let v = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3, 1]);
/// let s = segment_sum(&v, &[0, 1, 0], 2);
/// assert_eq!(s.to_vec(), vec![4.0, 2.0]);
/// ```
pub fn segment_sum(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let mut out = vec![0.0f32; num_segments * d];
    {
        let x = values.inner.storage.read();
        for (i, &s) in segments.iter().enumerate() {
            for j in 0..d {
                out[s * d + j] += x[i * d + j];
            }
        }
    }
    let mut out_dims = values.dims().to_vec();
    out_dims[0] = num_segments;
    let seg = segments.to_vec();
    Tensor::make_result(out, out_dims, values.device(), &[values.clone()], move |go| {
        let mut g = vec![0.0f32; n * d];
        for (i, &s) in seg.iter().enumerate() {
            for j in 0..d {
                g[i * d + j] = go[s * d + j];
            }
        }
        vec![Some(g)]
    })
}

/// Averages rows of `values` per segment. Empty segments yield zeros.
pub fn segment_mean(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let mut counts = vec![0.0f32; num_segments];
    for &s in segments {
        counts[s] += 1.0;
    }
    let mut out = vec![0.0f32; num_segments * d];
    {
        let x = values.inner.storage.read();
        for (i, &s) in segments.iter().enumerate() {
            for j in 0..d {
                out[s * d + j] += x[i * d + j] / counts[s];
            }
        }
    }
    let mut out_dims = values.dims().to_vec();
    out_dims[0] = num_segments;
    let seg = segments.to_vec();
    Tensor::make_result(out, out_dims, values.device(), &[values.clone()], move |go| {
        let mut g = vec![0.0f32; n * d];
        for (i, &s) in seg.iter().enumerate() {
            for j in 0..d {
                g[i * d + j] = go[s * d + j] / counts[s];
            }
        }
        vec![Some(g)]
    })
}

/// Per-segment max of rows. Empty segments yield zeros; gradient routes
/// to the (first) argmax row per segment/column.
pub fn segment_max(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let mut out = vec![f32::NEG_INFINITY; num_segments * d];
    let mut argmax = vec![usize::MAX; num_segments * d];
    {
        let x = values.inner.storage.read();
        for (i, &s) in segments.iter().enumerate() {
            for j in 0..d {
                if x[i * d + j] > out[s * d + j] {
                    out[s * d + j] = x[i * d + j];
                    argmax[s * d + j] = i;
                }
            }
        }
    }
    for v in out.iter_mut() {
        if !v.is_finite() {
            *v = 0.0; // empty segment
        }
    }
    let mut out_dims = values.dims().to_vec();
    out_dims[0] = num_segments;
    Tensor::make_result(out, out_dims, values.device(), &[values.clone()], move |go| {
        let mut g = vec![0.0f32; n * d];
        for (sd, &i) in argmax.iter().enumerate() {
            if i != usize::MAX {
                let j = sd % d;
                g[i * d + j] = go[sd];
            }
        }
        vec![Some(g)]
    })
}

/// Segmented softmax: softmax across the rows of each segment,
/// independently per column (column = attention head).
///
/// For single-column `[N, 1]` values with segments = destination ids,
/// this is exactly TGLite's `edge_softmax`. Empty segments contribute
/// nothing; rows keep their position.
pub fn segment_softmax(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let (n, d) = check_segments(values, segments, num_segments);
    let x = values.inner.storage.read();
    // Per (segment, column) max for stability.
    let mut maxes = vec![f32::NEG_INFINITY; num_segments * d];
    for (i, &s) in segments.iter().enumerate() {
        for j in 0..d {
            maxes[s * d + j] = maxes[s * d + j].max(x[i * d + j]);
        }
    }
    let mut sums = vec![0.0f32; num_segments * d];
    let mut y = vec![0.0f32; n * d];
    for (i, &s) in segments.iter().enumerate() {
        for j in 0..d {
            let e = (x[i * d + j] - maxes[s * d + j]).exp();
            y[i * d + j] = e;
            sums[s * d + j] += e;
        }
    }
    for (i, &s) in segments.iter().enumerate() {
        for j in 0..d {
            y[i * d + j] /= sums[s * d + j];
        }
    }
    drop(x);
    let y_copy = y.clone();
    let seg = segments.to_vec();
    Tensor::make_result(
        y,
        values.shape().clone(),
        values.device(),
        &[values.clone()],
        move |go| {
            // Per segment/column: dx_i = (go_i - Σ_k go_k y_k) * y_i
            let mut dots = vec![0.0f32; num_segments * d];
            for (i, &s) in seg.iter().enumerate() {
                for j in 0..d {
                    dots[s * d + j] += go[i * d + j] * y_copy[i * d + j];
                }
            }
            let mut g = vec![0.0f32; n * d];
            for (i, &s) in seg.iter().enumerate() {
                for j in 0..d {
                    g[i * d + j] = (go[i * d + j] - dots[s * d + j]) * y_copy[i * d + j];
                }
            }
            vec![Some(g)]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_close, check_gradient};

    #[test]
    fn segment_sum_values() {
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let s = segment_sum(&v, &[1, 0, 1], 2);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn segment_sum_empty_segment_zero() {
        let v = Tensor::from_vec(vec![1.0, 2.0], [2, 1]);
        let s = segment_sum(&v, &[0, 0], 3);
        assert_eq!(s.to_vec(), vec![3.0, 0.0, 0.0]);
    }

    #[test]
    fn segment_mean_values() {
        let v = Tensor::from_vec(vec![2.0, 4.0, 6.0], [3, 1]);
        let m = segment_mean(&v, &[0, 0, 1], 2);
        assert_eq!(m.to_vec(), vec![3.0, 6.0]);
    }

    #[test]
    fn segment_max_values_and_grad() {
        let v = Tensor::from_vec(vec![1.0, 5.0, 3.0], [3, 1]).requires_grad(true);
        let m = segment_max(&v, &[0, 0, 1], 2);
        assert_eq!(m.to_vec(), vec![5.0, 3.0]);
        m.sum_all().backward();
        assert_eq!(v.grad().unwrap(), vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.5], [4, 1]);
        let y = segment_softmax(&v, &[0, 0, 1, 1], 2).to_vec();
        assert_close(&[y[0] + y[1]], &[1.0], 1e-6);
        assert_close(&[y[2] + y[3]], &[1.0], 1e-6);
        assert!(y[1] > y[0]);
    }

    #[test]
    fn segment_softmax_single_row_segment_is_one() {
        let v = Tensor::from_vec(vec![42.0], [1, 1]);
        let y = segment_softmax(&v, &[0], 1);
        assert_close(&y.to_vec(), &[1.0], 1e-6);
    }

    #[test]
    fn segment_softmax_multihead_columns_independent() {
        // Two columns should each softmax independently within segments.
        let v = Tensor::from_vec(vec![0.0, 10.0, 0.0, 10.0], [2, 2]);
        let y = segment_softmax(&v, &[0, 0], 1).to_vec();
        assert_close(&[y[0] + y[2]], &[1.0], 1e-6);
        assert_close(&[y[1] + y[3]], &[1.0], 1e-6);
        assert_close(&[y[0], y[1]], &[0.5, 0.5], 1e-6);
    }

    #[test]
    fn segment_softmax_matches_dense_softmax_single_segment() {
        let v = Tensor::from_vec(vec![1.0, -1.0, 0.5], [3, 1]);
        let seg = segment_softmax(&v, &[0, 0, 0], 1).to_vec();
        let dense = Tensor::from_vec(vec![1.0, -1.0, 0.5], [3]).softmax_last().to_vec();
        assert_close(&seg, &dense, 1e-6);
    }

    #[test]
    fn segment_sum_gradcheck() {
        let v = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], [4, 1]).requires_grad(true);
        let w = Tensor::from_vec(vec![1.0, 3.0], [2, 1]);
        check_gradient(&v, |x| segment_sum(x, &[1, 0, 1, 0], 2).mul(&w).sum_all(), 1e-2);
    }

    #[test]
    fn segment_mean_gradcheck() {
        let v = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3, 1]).requires_grad(true);
        let w = Tensor::from_vec(vec![2.0, -1.0], [2, 1]);
        check_gradient(&v, |x| segment_mean(x, &[0, 0, 1], 2).mul(&w).sum_all(), 1e-2);
    }

    #[test]
    fn segment_softmax_gradcheck() {
        let v = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], [4, 1]).requires_grad(true);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 2.0], [4, 1]);
        check_gradient(
            &v,
            |x| segment_softmax(x, &[0, 0, 1, 1], 2).mul(&w).sum_all(),
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_id_out_of_range_panics() {
        segment_sum(&Tensor::zeros([2, 1]), &[0, 5], 2);
    }

    #[test]
    #[should_panic(expected = "must match rows")]
    fn segment_len_mismatch_panics() {
        segment_sum(&Tensor::zeros([3, 1]), &[0], 2);
    }
}
