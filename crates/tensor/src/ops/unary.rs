//! Elementwise unary and scalar operators.

use tgl_runtime::{parallel_for, UnsafeSlice};

use crate::ops::ELEMWISE_SEQ;
use crate::pool::{self, PooledBuf};
use crate::Tensor;

/// Applies `fwd` elementwise; `bwd(x, y, go)` gives the input gradient
/// for one element given input `x`, output `y`, and output grad `go`.
/// Both passes chunk the element space across the pool; every element
/// is computed independently, so output is thread-count invariant.
///
/// Buffers come from the tensor pool: the output and gradient are
/// fully overwritten (so recycled memory needs no zeroing), backward
/// reads the input through the captured tensor handle instead of a
/// copy, and the saved output copy is a [`PooledBuf`] recycled when the
/// graph drops.
fn unary_elementwise(
    name: &'static str,
    flops_per_elem: u64,
    input: &Tensor,
    fwd: impl Fn(f32) -> f32 + Sync,
    bwd: impl Fn(f32, f32, f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    let device = input.device();
    let n = input.numel();
    let _prof = tgl_obs::profile::op(name)
        .flops(flops_per_elem * n as u64)
        // Forward reads x and writes both y and the saved copy.
        .io(4 * n as u64, 8 * n as u64)
        .shape(&[input.dims()])
        .backward_cost(2 * n as u64, 12 * n as u64, 4 * n as u64);
    let mut y = pool::take_uninit(n, device);
    {
        let x = input.inner.storage.read();
        let y_sl = UnsafeSlice::new(&mut y);
        let (x, fwd) = (&x, &fwd);
        parallel_for(n, ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
            // SAFETY: chunks partition the element space.
            let out = unsafe { y_sl.slice_mut(r.start, r.len()) };
            for (o, &v) in out.iter_mut().zip(&x[r]) {
                *o = fwd(v);
            }
        });
    }
    let y_copy = {
        let mut c = pool::take_uninit(n, device);
        c.copy_from_slice(&y);
        PooledBuf::new(c, device)
    };
    let x_t = input.clone();
    Tensor::make_result(
        y,
        input.shape().clone(),
        input.device(),
        std::slice::from_ref(input),
        move |go| {
            let x = x_t.inner.storage.read();
            let mut g = pool::take_uninit(go.len(), device);
            {
                let g_sl = UnsafeSlice::new(&mut g);
                let (x, y_copy, bwd) = (&x, &y_copy, &bwd);
                parallel_for(go.len(), ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
                    // SAFETY: chunks partition the element space.
                    let out = unsafe { g_sl.slice_mut(r.start, r.len()) };
                    for (k, i) in r.enumerate() {
                        out[k] = bwd(x[i], y_copy[i], go[i]);
                    }
                });
            }
            vec![Some(g)]
        },
    )
}

impl Tensor {
    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        unary_elementwise("neg", 1, self, |x| -x, |_, _, g| -g)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        unary_elementwise("exp", 8, self, f32::exp, |_, y, g| g * y)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        unary_elementwise("ln", 8, self, f32::ln, |x, _, g| g / x)
    }

    /// Elementwise cosine (the kernel of the paper's time-encoder
    /// `Φ(Δt) = cos(ω·Δt + φ)`).
    pub fn cos(&self) -> Tensor {
        unary_elementwise("cos", 8, self, f32::cos, |x, _, g| -g * x.sin())
    }

    /// Elementwise sine.
    pub fn sin(&self) -> Tensor {
        unary_elementwise("sin", 8, self, f32::sin, |x, _, g| g * x.cos())
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        unary_elementwise("sqrt", 4, self, f32::sqrt, |_, y, g| g * 0.5 / y)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary_elementwise(
            "relu",
            1,
            self,
            |x| x.max(0.0),
            |x, _, g| if x > 0.0 { g } else { 0.0 },
        )
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        unary_elementwise(
            "sigmoid",
            10,
            self,
            |x| 1.0 / (1.0 + (-x).exp()),
            |_, y, g| g * y * (1.0 - y),
        )
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary_elementwise("tanh", 10, self, f32::tanh, |_, y, g| g * (1.0 - y * y))
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        unary_elementwise("add_scalar", 1, self, move |x| x + s, |_, _, g| g)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        unary_elementwise("mul_scalar", 1, self, move |x| x * s, move |_, _, g| g * s)
    }

    /// Clamps every element to at least `min` (gradient is zero where
    /// clamped).
    pub fn clamp_min(&self, min: f32) -> Tensor {
        unary_elementwise(
            "clamp_min",
            1,
            self,
            move |x| x.max(min),
            move |x, _, g| if x > min { g } else { 0.0 },
        )
    }

    /// Clamps every element into `[lo, hi]` (gradient is zero where
    /// clamped).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp range is empty: [{lo}, {hi}]");
        unary_elementwise(
            "clamp",
            2,
            self,
            move |x| x.clamp(lo, hi),
            move |x, _, g| if x > lo && x < hi { g } else { 0.0 },
        )
    }

    /// Elementwise absolute value (gradient at 0 is 0).
    pub fn abs(&self) -> Tensor {
        unary_elementwise(
            "abs",
            1,
            self,
            f32::abs,
            |x, _, g| if x > 0.0 { g } else if x < 0.0 { -g } else { 0.0 },
        )
    }

    /// Raises every element to the power `p` (defined for the usual
    /// domains; gradient `p·x^{p-1}`).
    pub fn pow_scalar(&self, p: f32) -> Tensor {
        unary_elementwise(
            "pow_scalar",
            15,
            self,
            move |x| x.powf(p),
            move |x, _, g| g * p * x.powf(p - 1.0),
        )
    }

    /// Leaky rectified linear unit with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        unary_elementwise(
            "leaky_relu",
            1,
            self,
            move |x| if x > 0.0 { x } else { alpha * x },
            move |x, _, g| if x > 0.0 { g } else { alpha * g },
        )
    }

    /// Softplus `ln(1 + e^x)`, the smooth ReLU (numerically stable).
    pub fn softplus(&self) -> Tensor {
        unary_elementwise(
            "softplus",
            15,
            self,
            |x| x.max(0.0) + (-(x.abs())).exp().ln_1p(),
            |x, _, g| g / (1.0 + (-x).exp()),
        )
    }

    /// Gaussian error linear unit (tanh approximation, as used by
    /// transformer FFNs).
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        unary_elementwise(
            "gelu",
            20,
            self,
            |x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()),
            |x, _, g| {
                let inner = C * (x + 0.044715 * x * x * x);
                let t = inner.tanh();
                let sech2 = 1.0 - t * t;
                let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
                g * (0.5 * (1.0 + t) + 0.5 * x * sech2 * dinner)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, [n]).requires_grad(true)
    }

    #[test]
    fn values() {
        assert_eq!(t(vec![1.0, -2.0]).neg().to_vec(), vec![-1.0, 2.0]);
        assert_close(&t(vec![0.0, 1.0]).exp().to_vec(), &[1.0, std::f32::consts::E], 1e-6);
        assert_close(&t(vec![1.0]).ln().to_vec(), &[0.0], 1e-6);
        assert_close(&t(vec![0.0]).cos().to_vec(), &[1.0], 1e-6);
        assert_close(&t(vec![0.0]).sin().to_vec(), &[0.0], 1e-6);
        assert_close(&t(vec![4.0]).sqrt().to_vec(), &[2.0], 1e-6);
        assert_eq!(t(vec![-1.0, 2.0]).relu().to_vec(), vec![0.0, 2.0]);
        assert_close(&t(vec![0.0]).sigmoid().to_vec(), &[0.5], 1e-6);
        assert_close(&t(vec![0.0]).tanh().to_vec(), &[0.0], 1e-6);
        assert_eq!(t(vec![1.0]).add_scalar(2.0).to_vec(), vec![3.0]);
        assert_eq!(t(vec![3.0]).mul_scalar(-2.0).to_vec(), vec![-6.0]);
        assert_eq!(t(vec![-5.0, 5.0]).clamp_min(0.0).to_vec(), vec![0.0, 5.0]);
    }

    #[test]
    fn gradchecks() {
        check_gradient(&t(vec![0.3, -0.7, 1.2]), |x| x.exp().sum_all(), 1e-1);
        check_gradient(&t(vec![0.5, 1.5, 2.5]), |x| x.ln().sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7, 1.2]), |x| x.cos().sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7, 1.2]), |x| x.sin().sum_all(), 1e-2);
        check_gradient(&t(vec![0.9, 2.5]), |x| x.sqrt().sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7]), |x| x.sigmoid().sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7]), |x| x.tanh().sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7]), |x| x.mul_scalar(3.0).sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7]), |x| x.neg().sum_all(), 1e-2);
    }

    #[test]
    fn extended_activation_values() {
        assert_eq!(t(vec![-3.0, 0.5, 9.0]).clamp(0.0, 1.0).to_vec(), vec![0.0, 0.5, 1.0]);
        assert_eq!(t(vec![-2.0, 3.0]).abs().to_vec(), vec![2.0, 3.0]);
        assert_close(&t(vec![2.0]).pow_scalar(3.0).to_vec(), &[8.0], 1e-5);
        assert_close(&t(vec![-2.0, 2.0]).leaky_relu(0.1).to_vec(), &[-0.2, 2.0], 1e-6);
        assert_close(&t(vec![0.0]).softplus().to_vec(), &[std::f32::consts::LN_2], 1e-6);
        // GELU(0) = 0; GELU is ~identity for large positive x.
        assert_close(&t(vec![0.0]).gelu().to_vec(), &[0.0], 1e-6);
        assert_close(&t(vec![6.0]).gelu().to_vec(), &[6.0], 1e-2);
    }

    #[test]
    fn extended_activation_gradchecks() {
        check_gradient(&t(vec![0.3, -0.7, 1.2]), |x| x.leaky_relu(0.2).sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7, 1.2]), |x| x.softplus().sum_all(), 1e-2);
        check_gradient(&t(vec![0.3, -0.7, 1.2]), |x| x.gelu().sum_all(), 2e-2);
        check_gradient(&t(vec![1.3, 0.7, 2.2]), |x| x.pow_scalar(1.7).sum_all(), 5e-2);
        check_gradient(&t(vec![0.6, -0.4]), |x| x.clamp(-0.5, 0.5).mul(x).sum_all(), 1e-2);
    }

    #[test]
    #[should_panic(expected = "clamp range is empty")]
    fn clamp_bad_range_panics() {
        t(vec![1.0]).clamp(2.0, 1.0);
    }

    #[test]
    fn relu_grad_zero_below_zero() {
        let x = t(vec![-1.0, 2.0]);
        x.relu().sum_all().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0]);
    }
}
