//! Cache-blocked GEMM micro-kernels with AVX2/FMA register tiles.
//!
//! The three 2-D kernels (`nn`, `nt`, `tn`) keep the contract from the
//! naive kernels they replace: output rows are partitioned across the
//! `tgl-runtime` pool in *fixed* [`MC`]-row panels (boundaries a
//! function of the problem shape only), and in `exact` kernel mode
//! **every output element accumulates its products in ascending
//! reduction-index order with the same IEEE roundings as the scalar
//! reference**, so results are bitwise identical to the unblocked
//! kernels on every host and invariant across thread counts. The AVX2
//! tile kernel honors that in exact mode by using lane-wise
//! `mul`+`add` (one rounding each, per element, in k order — the same
//! arithmetic the scalar loop performs); in `fast` mode it contracts to
//! FMA and `mm_nt` switches to an 8-lane reduction fan, trading bitwise
//! reproducibility vs the scalar reference for throughput (see
//! `DESIGN.md` "Kernel contract").
//!
//! What blocking changes is the *memory* schedule:
//!
//! * `mm_nn` walks K in [`KC`]-deep blocks and packs the corresponding
//!   B rows into [`NR`]-wide column panels (one pooled scratch buffer
//!   per row chunk). A panel tile (`KC × NR × 4 B` = 8 KiB) stays
//!   L1-resident while a [`MR`]`×`[`NR`] register tile of C accumulates
//!   across it ([`NR`] = one `__m256` per row on AVX2 hosts), and the
//!   packed block is reused by every output row of the chunk instead of
//!   streaming all of B once per row.
//! * `mm_nt` needs no packing (both operands are traversed row-major);
//!   it blocks [`MR`] output rows so each B row load is shared by four
//!   concurrent dot products.
//! * `mm_tn` walks M in [`MC`]-row blocks, packing the A block
//!   transposed (one pooled buffer per chunk) so its strided
//!   column reads happen once per block, and keeping the B block
//!   (`MC × n`) cache-resident across all output rows of the chunk.
//!
//! Operands that are mostly zero (one-hot features) take the original
//! zero-skipping row loops instead — branchy but proportional to the
//! nonzero count.

use tgl_device::Device;
use tgl_runtime::{parallel_for, parallel_for_chunks, UnsafeSlice};

use crate::kernel;
use crate::pool;

/// Rows of A per register tile.
pub(crate) const MR: usize = 4;
/// Columns of B per packed panel (one `__m256` of `f32`s; `MR × NR`
/// accumulators fit the 16-register AVX ymm file with room for the A
/// broadcast and B panel load).
pub(crate) const NR: usize = 8;
/// K-depth of a packed B block.
pub(crate) const KC: usize = 256;
/// M-depth of a parallel row panel (`nn`) / packed A block (`tn`).
pub(crate) const MC: usize = 64;

/// Multiply-add count below which a matmul runs inline on the caller;
/// pool dispatch costs more than the arithmetic.
const MM_SEQ_FLOPS: usize = 32 * 1024;

/// Output rows (of `row_flops` multiply-adds each) per sequential-path
/// threshold — feeds `parallel_for`'s element threshold.
pub(crate) fn seq_rows(row_flops: usize) -> usize {
    (MM_SEQ_FLOPS / row_flops.max(1)).max(1)
}

/// Cheap sparsity probe: samples up to 256 evenly spaced elements and
/// reports whether more than half are exactly zero. The zero-skip
/// branch in the `nn`/`tn` kernels only pays off on such operands; on
/// dense data it costs a branch per inner-loop trip.
pub(crate) fn mostly_zero(x: &[f32]) -> bool {
    if x.is_empty() {
        return false;
    }
    // Round the stride *up* so the probe honors its 256-sample cap
    // (`len / 256` rounded down could sample up to 511 elements).
    let step = x.len().div_ceil(256);
    let mut zeros = 0usize;
    let mut total = 0usize;
    let mut i = 0;
    while i < x.len() {
        total += 1;
        if x[i] == 0.0 {
            zeros += 1;
        }
        i += step;
    }
    zeros * 2 > total
}

// ---------------------------------------------------------------------
// Register-tile kernels
// ---------------------------------------------------------------------

/// AVX2 `MR×NR` tile update: `acc[r] += sum_kk ar[r][kk] * pan[kk]`.
///
/// With `FMA = false` each lane performs mul-then-add — the identical
/// two IEEE roundings, per element, in the same k order as the scalar
/// tile, so the result is bitwise equal to it. With `FMA = true` the
/// multiply-add contracts to one rounding (fast mode only).
///
/// # Safety
///
/// Requires AVX2+FMA (checked by `kernel::avx2()`); `pan` must hold at
/// least `kc * NR` elements and each `ar[r]` at least `kc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile_avx2<const FMA: bool>(
    ar: &[&[f32]; MR],
    pan: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    debug_assert!(pan.len() >= kc * NR);
    let mut v = [
        _mm256_loadu_ps(acc[0].as_ptr()),
        _mm256_loadu_ps(acc[1].as_ptr()),
        _mm256_loadu_ps(acc[2].as_ptr()),
        _mm256_loadu_ps(acc[3].as_ptr()),
    ];
    for kk in 0..kc {
        let pb = _mm256_loadu_ps(pan.as_ptr().add(kk * NR));
        for (vr, a_row) in v.iter_mut().zip(ar) {
            let av = _mm256_set1_ps(*a_row.get_unchecked(kk));
            *vr = if FMA {
                _mm256_fmadd_ps(av, pb, *vr)
            } else {
                _mm256_add_ps(*vr, _mm256_mul_ps(av, pb))
            };
        }
    }
    for (row, vr) in acc.iter_mut().zip(v) {
        _mm256_storeu_ps(row.as_mut_ptr(), vr);
    }
}

/// AVX2 single-row tile update for partial (`ih < MR`) row blocks.
///
/// # Safety
///
/// Requires AVX2+FMA; `pan` must hold at least `arow.len() * NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn row_avx2<const FMA: bool>(arow: &[f32], pan: &[f32], acc: &mut [f32; NR]) {
    use std::arch::x86_64::*;
    debug_assert!(pan.len() >= arow.len() * NR);
    let mut v = _mm256_loadu_ps(acc.as_ptr());
    for (kk, &av) in arow.iter().enumerate() {
        let pb = _mm256_loadu_ps(pan.as_ptr().add(kk * NR));
        let a = _mm256_set1_ps(av);
        v = if FMA {
            _mm256_fmadd_ps(a, pb, v)
        } else {
            _mm256_add_ps(v, _mm256_mul_ps(a, pb))
        };
    }
    _mm256_storeu_ps(acc.as_mut_ptr(), v);
}

/// Full-tile update with SIMD dispatch and the scalar reference as the
/// fallback (and the exact-mode ground truth).
fn tile_update(
    ar: &[&[f32]; MR],
    pan: &[f32],
    kc: usize,
    acc: &mut [[f32; NR]; MR],
    simd: bool,
    fma: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` comes from `kernel::avx2()`; panel/segment
        // lengths are established by the packing loop.
        unsafe {
            if fma {
                tile_avx2::<true>(ar, pan, kc, acc);
            } else {
                tile_avx2::<false>(ar, pan, kc, acc);
            }
        }
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (simd, fma);
    for kk in 0..kc {
        let pb = &pan[kk * NR..(kk + 1) * NR];
        for (row, a_row) in acc.iter_mut().zip(ar) {
            let av = a_row[kk];
            for (o, &bv) in row.iter_mut().zip(pb) {
                *o += av * bv;
            }
        }
    }
}

/// Single-row update used for the `ih < MR` remainder rows.
fn row_update(arow: &[f32], pan: &[f32], acc: &mut [f32; NR], simd: bool, fma: bool) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` comes from `kernel::avx2()`.
        unsafe {
            if fma {
                row_avx2::<true>(arow, pan, acc);
            } else {
                row_avx2::<false>(arow, pan, acc);
            }
        }
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (simd, fma);
    for (kk, &av) in arow.iter().enumerate() {
        let pb = &pan[kk * NR..(kk + 1) * NR];
        for (o, &bv) in acc.iter_mut().zip(pb) {
            *o += av * bv;
        }
    }
}

/// One dot product under the kernel contract: exact mode keeps the
/// scalar 4-lane partial-sum reduction; fast mode on AVX2 hosts uses
/// the 8-lane FMA fan.
fn dot_update(a_row: &[f32], b_row: &[f32], fast_simd: bool) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if fast_simd {
        // SAFETY: `fast_simd` implies `kernel::avx2()`.
        return unsafe { kernel::x86::dot_fast(a_row, b_row) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = fast_simd;
    let n = a_row.len();
    // 4-way partial sums so the reduction can vectorize.
    let mut acc = [0.0f32; 4];
    let chunks = n / 4;
    for q in 0..chunks {
        let p = q * 4;
        acc[0] += a_row[p] * b_row[p];
        acc[1] += a_row[p + 1] * b_row[p + 1];
        acc[2] += a_row[p + 2] * b_row[p + 2];
        acc[3] += a_row[p + 3] * b_row[p + 3];
    }
    let mut tail = 0.0f32;
    for p in chunks * 4..n {
        tail += a_row[p] * b_row[p];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

// ---------------------------------------------------------------------
// Blocked kernels
// ---------------------------------------------------------------------

/// C[m,n] += A[m,k] * B[k,n]
pub(crate) fn mm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _t = tgl_obs::histogram!("gemm.latency_ns").timer();
    if mostly_zero(a) {
        return mm_nn_sparse(a, b, c, m, k, n);
    }
    let n_tiles = n.div_ceil(NR);
    let simd = kernel::avx2();
    let fma = kernel::fast();
    let c = UnsafeSlice::new(c);
    // Fixed MC-row panels parallelize M: the boundaries are a function
    // of the shape only, so the work decomposition (and therefore every
    // element's accumulation order) is thread-count invariant. Small-k
    // problems widen the panel so pool dispatch stays amortized.
    let panel_rows = MC.max(seq_rows(k * n));
    parallel_for_chunks(m, panel_rows, |_, rows: std::ops::Range<usize>| {
        // SAFETY: panels partition the row space, so these row ranges
        // are disjoint.
        let c_rows = unsafe { c.slice_mut(rows.start * n, rows.len() * n) };
        let (r0, rows_n) = (rows.start, rows.len());
        let mut panel = pool::take_uninit(KC.min(k.max(1)) * n_tiles * NR, Device::Host);
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            // Pack B[k0..k0+kc, :] into NR-wide panels: panel `jt`
            // holds rows kk-major, zero-padded past column n.
            for jt in 0..n_tiles {
                let jw = NR.min(n - jt * NR);
                let dst = &mut panel[jt * kc * NR..(jt + 1) * kc * NR];
                for kk in 0..kc {
                    let d = &mut dst[kk * NR..(kk + 1) * NR];
                    d[..jw].copy_from_slice(&b[(k0 + kk) * n + jt * NR..][..jw]);
                    d[jw..].fill(0.0);
                }
            }
            let mut i = 0;
            while i < rows_n {
                let ih = MR.min(rows_n - i);
                // A row segments for this tile, contiguous over kk.
                let a_seg = |r: usize| &a[(r0 + i + r) * k + k0..][..kc];
                for jt in 0..n_tiles {
                    let jw = NR.min(n - jt * NR);
                    let pan = &panel[jt * kc * NR..(jt + 1) * kc * NR];
                    if ih == MR {
                        let ar = [a_seg(0), a_seg(1), a_seg(2), a_seg(3)];
                        let mut acc = [[0.0f32; NR]; MR];
                        for (r, row) in acc.iter_mut().enumerate() {
                            row[..jw].copy_from_slice(&c_rows[(i + r) * n + jt * NR..][..jw]);
                        }
                        tile_update(&ar, pan, kc, &mut acc, simd, fma);
                        for (r, row) in acc.iter().enumerate() {
                            c_rows[(i + r) * n + jt * NR..][..jw].copy_from_slice(&row[..jw]);
                        }
                    } else {
                        for r in 0..ih {
                            let mut acc = [0.0f32; NR];
                            acc[..jw].copy_from_slice(&c_rows[(i + r) * n + jt * NR..][..jw]);
                            row_update(a_seg(r), pan, &mut acc, simd, fma);
                            c_rows[(i + r) * n + jt * NR..][..jw].copy_from_slice(&acc[..jw]);
                        }
                    }
                }
                i += ih;
            }
            k0 += kc;
        }
        pool::give(panel, Device::Host);
    });
}

/// Zero-skipping reference loop for mostly-zero A (identical
/// floating-point order in exact mode: k ascending per output element).
fn mm_nn_sparse(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let fma = kernel::fast();
    let c = UnsafeSlice::new(c);
    parallel_for(m, seq_rows(k * n), |rows: std::ops::Range<usize>| {
        // SAFETY: disjoint row ranges per chunk.
        let c_rows = unsafe { c.slice_mut(rows.start * n, rows.len() * n) };
        for (ri, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c_rows[ri * n..(ri + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                kernel::axpy_dispatch(c_row, &b[kk * n..(kk + 1) * n], aik, fma);
            }
        }
    });
}

/// C[m,k] += A[m,n] * B[k,n]^T  (i.e. A · Bᵀ)
pub(crate) fn mm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    let _t = tgl_obs::histogram!("gemm.latency_ns").timer();
    let fast_simd = kernel::fast() && kernel::avx2();
    let c = UnsafeSlice::new(c);
    parallel_for(m, seq_rows(n * k), |rows: std::ops::Range<usize>| {
        // SAFETY: disjoint row ranges per chunk.
        let c_rows = unsafe { c.slice_mut(rows.start * k, rows.len() * k) };
        let (r0, rows_n) = (rows.start, rows.len());
        let mut i = 0;
        while i < rows_n {
            let ih = MR.min(rows_n - i);
            for j in 0..k {
                let b_row = &b[j * n..(j + 1) * n];
                // Each loaded B row feeds `ih` dot products.
                for r in 0..ih {
                    let a_row = &a[(r0 + i + r) * n..][..n];
                    c_rows[(i + r) * k + j] += dot_update(a_row, b_row, fast_simd);
                }
            }
            i += ih;
        }
    });
}

/// C[k,n] += A[m,k]^T * B[m,n]  (i.e. Aᵀ · B)
///
/// Parallelized over output rows (columns of A): each `kk` accumulates
/// over `i` in ascending order (`MC`-blocked, blocks ascending),
/// matching the sequential kernel's floating-point order exactly.
pub(crate) fn mm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _t = tgl_obs::histogram!("gemm.latency_ns").timer();
    if mostly_zero(a) {
        return mm_tn_sparse(a, b, c, m, k, n);
    }
    let fma = kernel::fast();
    let c = UnsafeSlice::new(c);
    parallel_for(k, seq_rows(m * n), |rows: std::ops::Range<usize>| {
        // SAFETY: disjoint row ranges per chunk.
        let c_rows = unsafe { c.slice_mut(rows.start * n, rows.len() * n) };
        let kw = rows.len();
        let mut ap = pool::take_uninit(MC.min(m.max(1)) * kw, Device::Host);
        let mut i0 = 0;
        while i0 < m {
            let mc = MC.min(m - i0);
            // Pack A[i0..i0+mc, rows] transposed so the strided column
            // reads happen once per block.
            for (kl, kk) in rows.clone().enumerate() {
                for ii in 0..mc {
                    ap[kl * mc + ii] = a[(i0 + ii) * k + kk];
                }
            }
            // The B block rows i0..i0+mc stay cache-resident across
            // every output row of this chunk.
            for kl in 0..kw {
                let a_col = &ap[kl * mc..(kl + 1) * mc];
                let c_row = &mut c_rows[kl * n..(kl + 1) * n];
                for (ii, &av) in a_col.iter().enumerate() {
                    kernel::axpy_dispatch(c_row, &b[(i0 + ii) * n..][..n], av, fma);
                }
            }
            i0 += mc;
        }
        pool::give(ap, Device::Host);
    });
}

/// Zero-skipping reference loop for mostly-zero A (identical
/// floating-point order in exact mode: i ascending per output element).
fn mm_tn_sparse(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let fma = kernel::fast();
    let c = UnsafeSlice::new(c);
    parallel_for(k, seq_rows(m * n), |rows: std::ops::Range<usize>| {
        // SAFETY: disjoint row ranges per chunk.
        let c_rows = unsafe { c.slice_mut(rows.start * n, rows.len() * n) };
        for (ri, kk) in rows.enumerate() {
            let c_row = &mut c_rows[ri * n..(ri + 1) * n];
            for i in 0..m {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                kernel::axpy_dispatch(c_row, &b[i * n..(i + 1) * n], aik, fma);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelMode;

    /// Bitwise assertions below define the *exact* contract: take the
    /// crate-wide kernel lock and pin exact mode (SIMD stays as
    /// detected — the exact-safe AVX2 tile must match scalar bitwise).
    fn exact_guard() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::kernel::test_serial();
        crate::kernel::set_mode(KernelMode::Exact);
        g
    }

    fn fill(len: usize, salt: usize) -> Vec<f32> {
        (0..len).map(|i| ((i * 37 + salt * 11) % 101) as f32 * 0.02 - 1.0).collect()
    }

    fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    /// Sizes straddling every tile boundary: below MR/NR, exact
    /// multiples, one over, and spanning multiple KC/MC blocks.
    const SIZES: [(usize, usize, usize); 8] = [
        (1, 1, 1),
        (3, 5, 7),
        (4, 8, 8),
        (5, 9, 17),
        (4, 256, 8),
        (5, 257, 9),
        (65, 300, 33),
        (7, 513, 31),
    ];

    #[test]
    fn blocked_nn_matches_naive_bitwise() {
        let _guard = exact_guard();
        for (m, k, n) in SIZES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let want = naive_nn(&a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            mm_nn(&a, &b, &mut got, m, k, n);
            // Same k-ascending order and per-element roundings (exact
            // mode, SIMD or scalar) => bitwise equal.
            assert_eq!(got, want, "mm_nn {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_nn_simd_matches_scalar_bitwise() {
        let _guard = exact_guard();
        for (m, k, n) in SIZES {
            let a = fill(m * k, 7);
            let b = fill(k * n, 9);
            crate::kernel::set_simd(false);
            let mut scalar = vec![0.0f32; m * n];
            mm_nn(&a, &b, &mut scalar, m, k, n);
            crate::kernel::set_simd(true);
            let mut simd = vec![0.0f32; m * n];
            mm_nn(&a, &b, &mut simd, m, k, n);
            assert_eq!(simd, scalar, "mm_nn simd parity {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_nt_matches_reference() {
        let _guard = exact_guard();
        for (m, n, k) in SIZES {
            let a = fill(m * n, 3);
            let b = fill(k * n, 4);
            // Reference: A[m,n] · B[k,n]^T via naive loops with the
            // same 4-lane reduction order.
            let mut want = vec![0.0f32; m * k];
            for i in 0..m {
                for j in 0..k {
                    let (ar, br) = (&a[i * n..(i + 1) * n], &b[j * n..(j + 1) * n]);
                    let mut acc = [0.0f32; 4];
                    let chunks = n / 4;
                    for q in 0..chunks {
                        let p = q * 4;
                        for l in 0..4 {
                            acc[l] += ar[p + l] * br[p + l];
                        }
                    }
                    let mut tail = 0.0f32;
                    for p in chunks * 4..n {
                        tail += ar[p] * br[p];
                    }
                    want[i * k + j] = acc[0] + acc[1] + acc[2] + acc[3] + tail;
                }
            }
            let mut got = vec![0.0f32; m * k];
            mm_nt(&a, &b, &mut got, m, n, k);
            assert_eq!(got, want, "mm_nt {m}x{n}x{k}");
        }
    }

    #[test]
    fn blocked_tn_matches_naive_bitwise() {
        let _guard = exact_guard();
        for (m, k, n) in SIZES {
            let a = fill(m * k, 5);
            let b = fill(m * n, 6);
            // want[kk,j] = sum_i (i ascending) a[i,kk] * b[i,j]
            let mut want = vec![0.0f32; k * n];
            for kk in 0..k {
                for i in 0..m {
                    let aik = a[i * k + kk];
                    for j in 0..n {
                        want[kk * n + j] += aik * b[i * n + j];
                    }
                }
            }
            let mut got = vec![0.0f32; k * n];
            mm_tn(&a, &b, &mut got, m, k, n);
            assert_eq!(got, want, "mm_tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn mc_panel_parallel_nn_thread_count_invariant() {
        let _guard = exact_guard();
        // m spans several MC panels so the parallel decomposition is
        // exercised; k crosses a KC boundary.
        let (m, k, n) = (300, 257, 33);
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let before = tgl_runtime::current_threads();
        let run = |threads: usize| {
            tgl_runtime::set_threads(threads);
            let mut c = vec![0.0f32; m * n];
            mm_nn(&a, &b, &mut c, m, k, n);
            c
        };
        let one = run(1);
        let four = run(4);
        tgl_runtime::set_threads(before);
        assert_eq!(one, four, "mm_nn must be bitwise thread-count invariant");
    }

    #[test]
    fn sparse_operand_takes_skip_path_and_matches() {
        let _guard = exact_guard();
        let (m, k, n) = (33, 40, 21);
        let mut a = vec![0.0f32; m * k];
        for i in (0..m * k).step_by(7) {
            a[i] = (i % 13) as f32 * 0.1;
        }
        assert!(mostly_zero(&a));
        let b = fill(k * n, 8);
        let want = naive_nn(&a, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        mm_nn(&a, &b, &mut got, m, k, n);
        // Zero-skip changes which terms are added (skipping exact
        // zeros), which cannot change the result bitwise: x + 0.0 == x
        // for all finite x.
        assert_eq!(got, want);
    }

    #[test]
    fn mostly_zero_probe_caps_samples() {
        // Dense-but-tiny and exactly-300: the probe must sample at most
        // 256 elements (stride rounds up).
        assert_eq!(300usize.div_ceil(256), 2);
        let mut x = vec![1.0f32; 300];
        assert!(!mostly_zero(&x));
        // With an upward-rounded stride of 2, only even indices are
        // probed: zeroing them flips the verdict even though odd
        // indices stay dense.
        for i in (0..300).step_by(2) {
            x[i] = 0.0;
        }
        assert!(mostly_zero(&x));
        assert!(!mostly_zero(&[]));
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![0.0f32; 0];
        mm_nn(&[], &[], &mut c, 0, 0, 0);
        mm_nt(&[], &[], &mut c, 0, 0, 0);
        mm_tn(&[], &[], &mut c, 0, 0, 0);
        let mut c2 = vec![5.0f32; 6];
        mm_nn(&[], &[], &mut c2, 2, 0, 3);
        assert_eq!(c2, vec![5.0; 6], "k=0 leaves C untouched");
    }
}
