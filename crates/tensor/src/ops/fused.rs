//! Fused differentiable operators.
//!
//! Each fusion collapses a chain of elementwise ops into one kernel:
//! a single output buffer instead of one per link, one backward node
//! instead of a chain, and no intermediate activations captured for
//! the graph. All buffers come from the tensor pool; backward-pass
//! copies are wrapped in [`PooledBuf`] so tearing down the graph at the
//! end of a batch recycles them too.
//!
//! Thread-count invariance: forward and input-gradient kernels are
//! elementwise (each output element computed independently); the bias
//! reduction in [`Tensor::add_relu`] parallelizes over *columns*, each
//! summing its rows in ascending order regardless of thread count.

use tgl_runtime::{parallel_for, UnsafeSlice};

use crate::kernel;
use crate::ops::{rows_threshold, same_device, ELEMWISE_SEQ};
use crate::pool::{self, PooledBuf};
use crate::Tensor;

/// `out[i] = max(a[i] + b[i], 0)` — exact-safe: lane-wise add then
/// `maxps`, whose NaN/zero behavior matches `f32::max(x, 0.0)` here.
fn add_relu_fwd(out: &mut [f32], a: &[f32], b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if kernel::avx2() {
        // SAFETY: avx2() verified CPU support.
        unsafe { add_relu_fwd_avx2(out, a, b) };
        return;
    }
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (x + y).max(0.0);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn add_relu_fwd_avx2(out: &mut [f32], a: &[f32], b: &[f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let chunks = n / 8;
    let zero = _mm256_setzero_ps();
    for q in 0..chunks {
        let p = q * 8;
        let v = _mm256_max_ps(
            _mm256_add_ps(_mm256_loadu_ps(a.as_ptr().add(p)), _mm256_loadu_ps(b.as_ptr().add(p))),
            zero,
        );
        _mm256_storeu_ps(out.as_mut_ptr().add(p), v);
    }
    for p in chunks * 8..n {
        *out.get_unchecked_mut(p) = (a.get_unchecked(p) + b.get_unchecked(p)).max(0.0);
    }
}

/// `out[i] = if y[i] > 0 { go[i] } else { 0.0 }` — exact-safe: the
/// compare mask passes `go`'s bits through unchanged.
fn relu_mask_bwd(out: &mut [f32], go: &[f32], y: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if kernel::avx2() {
        // SAFETY: avx2() verified CPU support.
        unsafe { relu_mask_bwd_avx2(out, go, y) };
        return;
    }
    for ((o, &g), &v) in out.iter_mut().zip(go).zip(y) {
        *o = if v > 0.0 { g } else { 0.0 };
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn relu_mask_bwd_avx2(out: &mut [f32], go: &[f32], y: &[f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let chunks = n / 8;
    let zero = _mm256_setzero_ps();
    for q in 0..chunks {
        let p = q * 8;
        let mask = _mm256_cmp_ps(_mm256_loadu_ps(y.as_ptr().add(p)), zero, _CMP_GT_OQ);
        let v = _mm256_and_ps(_mm256_loadu_ps(go.as_ptr().add(p)), mask);
        _mm256_storeu_ps(out.as_mut_ptr().add(p), v);
    }
    for p in chunks * 8..n {
        *out.get_unchecked_mut(p) =
            if *y.get_unchecked(p) > 0.0 { *go.get_unchecked(p) } else { 0.0 };
    }
}

/// `out[i] = a[i] * s + b[i]`. Exact-safe with `fma=false` (lane-wise
/// mul then add); contracted in fast mode.
fn scale_add_fwd(out: &mut [f32], a: &[f32], b: &[f32], s: f32, fma: bool) {
    #[cfg(target_arch = "x86_64")]
    if kernel::avx2() {
        // SAFETY: avx2() verified CPU support.
        unsafe {
            if fma {
                scale_add_fwd_avx2::<true>(out, a, b, s);
            } else {
                scale_add_fwd_avx2::<false>(out, a, b, s);
            }
        }
        return;
    }
    let _ = fma;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * s + y;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn scale_add_fwd_avx2<const FMA: bool>(out: &mut [f32], a: &[f32], b: &[f32], s: f32) {
    use std::arch::x86_64::*;
    let n = out.len();
    let chunks = n / 8;
    let sv = _mm256_set1_ps(s);
    for q in 0..chunks {
        let p = q * 8;
        let av = _mm256_loadu_ps(a.as_ptr().add(p));
        let bv = _mm256_loadu_ps(b.as_ptr().add(p));
        let v = if FMA {
            _mm256_fmadd_ps(av, sv, bv)
        } else {
            _mm256_add_ps(_mm256_mul_ps(av, sv), bv)
        };
        _mm256_storeu_ps(out.as_mut_ptr().add(p), v);
    }
    // The tail must round exactly like the vector body: this helper
    // runs per parallel_for range, so tail membership depends on the
    // chunk split — if tail and body arithmetic differed, results
    // would vary with the thread count. `mul_add` is the correctly
    // rounded fused op, bit-identical to a vfmadd lane.
    for p in chunks * 8..n {
        *out.get_unchecked_mut(p) = if FMA {
            a.get_unchecked(p).mul_add(s, *b.get_unchecked(p))
        } else {
            a.get_unchecked(p) * s + b.get_unchecked(p)
        };
    }
}

/// `out[i] = base[i] + s * a[i] * b[i]` with the scalar's left-assoc
/// product. Exact-safe with `fma=false`; final add contracts in fast.
fn addcmul_fwd(out: &mut [f32], base: &[f32], a: &[f32], b: &[f32], s: f32, fma: bool) {
    #[cfg(target_arch = "x86_64")]
    if kernel::avx2() {
        // SAFETY: avx2() verified CPU support.
        unsafe {
            if fma {
                addcmul_fwd_avx2::<true>(out, base, a, b, s);
            } else {
                addcmul_fwd_avx2::<false>(out, base, a, b, s);
            }
        }
        return;
    }
    let _ = fma;
    for k in 0..out.len() {
        out[k] = base[k] + s * a[k] * b[k];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn addcmul_fwd_avx2<const FMA: bool>(
    out: &mut [f32],
    base: &[f32],
    a: &[f32],
    b: &[f32],
    s: f32,
) {
    use std::arch::x86_64::*;
    let n = out.len();
    let chunks = n / 8;
    let sv = _mm256_set1_ps(s);
    for q in 0..chunks {
        let p = q * 8;
        let sa = _mm256_mul_ps(sv, _mm256_loadu_ps(a.as_ptr().add(p)));
        let bv = _mm256_loadu_ps(b.as_ptr().add(p));
        let basev = _mm256_loadu_ps(base.as_ptr().add(p));
        let v = if FMA {
            _mm256_fmadd_ps(sa, bv, basev)
        } else {
            _mm256_add_ps(basev, _mm256_mul_ps(sa, bv))
        };
        _mm256_storeu_ps(out.as_mut_ptr().add(p), v);
    }
    // Same thread-invariance requirement as `scale_add_fwd_avx2`: the
    // tail's rounding must match the vector body's because the chunk
    // split decides which elements land in the tail.
    for p in chunks * 8..n {
        *out.get_unchecked_mut(p) = if FMA {
            (s * a.get_unchecked(p)).mul_add(*b.get_unchecked(p), *base.get_unchecked(p))
        } else {
            base.get_unchecked(p) + s * a.get_unchecked(p) * b.get_unchecked(p)
        };
    }
}

impl Tensor {
    /// Fused `relu(self + bias)`.
    ///
    /// `bias` is either the same shape as `self` or a rank-1 tensor
    /// broadcast across the last dimension (the `Linear → ReLU` pattern;
    /// its gradient sums over rows). Numerically identical to
    /// `self.add(bias).relu()`, including the gradient's behavior at
    /// exactly zero, but allocates one tensor instead of two and skips
    /// the intermediate sum in the autograd graph.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or devices differ.
    pub fn add_relu(&self, bias: &Tensor) -> Tensor {
        let device = same_device(self, bias);
        let n = self.numel();
        let d = bias.numel();
        let same = self.dims() == bias.dims();
        assert!(
            same || (bias.rank() == 1 && d == *self.dims().last().unwrap_or(&0)),
            "add_relu bias {} does not broadcast over {}",
            bias.shape(),
            self.shape()
        );

        let _prof = tgl_obs::profile::op("add_relu")
            .flops(2 * n as u64)
            .io(4 * (n + d) as u64, 8 * n as u64)
            .shape(&[self.dims(), bias.dims()])
            .backward_cost(2 * n as u64, 8 * n as u64, 4 * (n + d) as u64);
        let mut y = pool::take_uninit(n, device);
        {
            let a = self.inner.storage.read();
            let b = bias.inner.storage.read();
            let y_sl = UnsafeSlice::new(&mut y);
            let (a, b) = (&a, &b);
            parallel_for(n, ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
                // SAFETY: chunks partition the element space.
                let out = unsafe { y_sl.slice_mut(r.start, r.len()) };
                if same {
                    add_relu_fwd(out, &a[r.start..r.end], &b[r.start..r.end]);
                } else {
                    // Broadcast stays scalar: the `i % d` gather has no
                    // contiguous lanes to load.
                    for (k, i) in r.enumerate() {
                        out[k] = (a[i] + b[i % d]).max(0.0);
                    }
                }
            });
        }

        // The mask (y > 0) is recoverable from the output alone, so
        // backward only captures a pooled copy of y.
        let y_copy = {
            let mut c = pool::take_uninit(n, device);
            c.copy_from_slice(&y);
            PooledBuf::new(c, device)
        };
        Tensor::make_result(
            y,
            self.shape().clone(),
            device,
            &[self.clone(), bias.clone()],
            move |go| {
                let n = y_copy.len();
                let mut ga = pool::take_uninit(n, device);
                {
                    let ga_sl = UnsafeSlice::new(&mut ga);
                    let y = &y_copy;
                    parallel_for(n, ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
                        // SAFETY: chunks partition the element space.
                        let out = unsafe { ga_sl.slice_mut(r.start, r.len()) };
                        relu_mask_bwd(out, &go[r.start..r.end], &y[r.start..r.end]);
                    });
                }
                let gb = if same {
                    let mut gb = pool::take_uninit(n, device);
                    gb.copy_from_slice(&ga);
                    gb
                } else {
                    // Column-wise row sum: each column is one output
                    // element, summed over rows in ascending order.
                    let mut gb = pool::take_uninit(d, device);
                    let rows = n / d.max(1);
                    let gb_sl = UnsafeSlice::new(&mut gb);
                    let y = &y_copy;
                    parallel_for(d, rows_threshold(rows), |cols: std::ops::Range<usize>| {
                        // SAFETY: columns partition the bias elements.
                        let out = unsafe { gb_sl.slice_mut(cols.start, cols.len()) };
                        for (k, j) in cols.enumerate() {
                            let mut acc = 0.0f32;
                            for r in 0..rows {
                                let i = r * d + j;
                                if y[i] > 0.0 {
                                    acc += go[i];
                                }
                            }
                            out[k] = acc;
                        }
                    });
                    gb
                };
                vec![Some(ga), Some(gb)]
            },
        )
    }

    /// Fused `self * s + other` (same shape).
    ///
    /// One kernel and one backward node instead of the
    /// `mul_scalar → add` pair.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or device mismatch.
    pub fn scale_add(&self, s: f32, other: &Tensor) -> Tensor {
        let device = same_device(self, other);
        assert_eq!(
            self.dims(),
            other.dims(),
            "scale_add requires matching shapes: {} vs {}",
            self.shape(),
            other.shape()
        );
        let n = self.numel();
        let _prof = tgl_obs::profile::op("scale_add")
            .flops(2 * n as u64)
            .io(8 * n as u64, 4 * n as u64)
            .shape(&[self.dims(), other.dims()])
            .backward_cost(n as u64, 4 * n as u64, 8 * n as u64);
        let mut y = pool::take_uninit(n, device);
        {
            let a = self.inner.storage.read();
            let b = other.inner.storage.read();
            let y_sl = UnsafeSlice::new(&mut y);
            let (a, b) = (&a, &b);
            let fma = kernel::fast();
            parallel_for(n, ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
                // SAFETY: chunks partition the element space.
                let out = unsafe { y_sl.slice_mut(r.start, r.len()) };
                scale_add_fwd(out, &a[r.start..r.end], &b[r.start..r.end], s, fma);
            });
        }
        Tensor::make_result(
            y,
            self.shape().clone(),
            device,
            &[self.clone(), other.clone()],
            move |go| {
                let mut ga = pool::take_uninit(go.len(), device);
                let mut gb = pool::take_uninit(go.len(), device);
                for i in 0..go.len() {
                    ga[i] = go[i] * s;
                }
                gb.copy_from_slice(go);
                vec![Some(ga), Some(gb)]
            },
        )
    }

    /// Fused `self + scale * a * b` (all same shape) — the GRU gate
    /// combination `h' = n + z ⊙ (h − n)` in one kernel.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or device mismatch.
    pub fn addcmul(&self, a: &Tensor, b: &Tensor, scale: f32) -> Tensor {
        let device = same_device(self, a);
        same_device(a, b);
        assert!(
            self.dims() == a.dims() && a.dims() == b.dims(),
            "addcmul requires matching shapes: {} vs {} vs {}",
            self.shape(),
            a.shape(),
            b.shape()
        );
        let n = self.numel();
        let _prof = tgl_obs::profile::op("addcmul")
            .flops(3 * n as u64)
            .io(12 * n as u64, 4 * n as u64)
            .shape(&[self.dims(), a.dims(), b.dims()])
            .backward_cost(4 * n as u64, 12 * n as u64, 12 * n as u64);
        let mut y = pool::take_uninit(n, device);
        {
            let base = self.inner.storage.read();
            let ad = a.inner.storage.read();
            let bd = b.inner.storage.read();
            let y_sl = UnsafeSlice::new(&mut y);
            let (base, ad, bd) = (&base, &ad, &bd);
            let fma = kernel::fast();
            parallel_for(n, ELEMWISE_SEQ, |r: std::ops::Range<usize>| {
                // SAFETY: chunks partition the element space.
                let out = unsafe { y_sl.slice_mut(r.start, r.len()) };
                addcmul_fwd(
                    out,
                    &base[r.start..r.end],
                    &ad[r.start..r.end],
                    &bd[r.start..r.end],
                    scale,
                    fma,
                );
            });
        }
        let (a_c, b_c) = (a.clone(), b.clone());
        Tensor::make_result(
            y,
            self.shape().clone(),
            device,
            &[self.clone(), a.clone(), b.clone()],
            move |go| {
                let ad = a_c.inner.storage.read();
                let bd = b_c.inner.storage.read();
                let mut gbase = pool::take_uninit(go.len(), device);
                let mut ga = pool::take_uninit(go.len(), device);
                let mut gb = pool::take_uninit(go.len(), device);
                gbase.copy_from_slice(go);
                for i in 0..go.len() {
                    ga[i] = go[i] * scale * bd[i];
                    gb[i] = go[i] * scale * ad[i];
                }
                vec![Some(gbase), Some(ga), Some(gb)]
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn add_relu_matches_unfused_same_shape() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, -0.1], [2, 2]);
        let b = Tensor::from_vec(vec![-0.5, 3.0, -1.0, 0.1], [2, 2]);
        assert_eq!(a.add_relu(&b).to_vec(), a.add(&b).relu().to_vec());
    }

    #[test]
    fn add_relu_matches_unfused_row_broadcast() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, -0.1, 2.0, -3.0], [2, 3]);
        let b = Tensor::from_vec(vec![-0.5, 3.0, 0.0], [3]);
        assert_eq!(a.add_relu(&b).to_vec(), a.add(&b).relu().to_vec());
    }

    #[test]
    fn add_relu_grads_match_unfused() {
        let mk = || {
            (
                Tensor::from_vec(vec![1.0, -2.0, 0.5, -0.1, 2.0, -3.0], [2, 3])
                    .requires_grad(true),
                Tensor::from_vec(vec![-0.5, 3.0, 0.1], [3]).requires_grad(true),
            )
        };
        let (a1, b1) = mk();
        a1.add_relu(&b1).sum_all().backward();
        let (a2, b2) = mk();
        a2.add(&b2).relu().sum_all().backward();
        assert_eq!(a1.grad().unwrap(), a2.grad().unwrap());
        assert_eq!(b1.grad().unwrap(), b2.grad().unwrap());
    }

    #[test]
    fn add_relu_gradcheck() {
        // Inputs chosen away from the ReLU kink (finite differences
        // would straddle it).
        let a = Tensor::from_vec(vec![0.8, -1.5, 0.6, -0.9], [2, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![0.3, 0.4], [2]);
        check_gradient(&a, |t| t.add_relu(&b).sum_all(), 1e-2);
        let a2 = Tensor::from_vec(vec![0.8, -1.5, 0.6, -0.9], [2, 2]);
        let b2 = Tensor::from_vec(vec![0.3, 0.4], [2]).requires_grad(true);
        check_gradient(&b2, |t| a2.add_relu(t).sum_all(), 1e-2);
    }

    #[test]
    fn scale_add_matches_unfused() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]);
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5], [3]);
        assert_eq!(
            a.scale_add(2.0, &b).to_vec(),
            a.mul_scalar(2.0).add(&b).to_vec()
        );
    }

    #[test]
    fn scale_add_gradcheck() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3]).requires_grad(true);
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0], [3]);
        check_gradient(&a, |t| t.scale_add(-1.5, &b).sum_all(), 1e-2);
        let a2 = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3]);
        let b2 = Tensor::from_vec(vec![1.0, 2.0, -1.0], [3]).requires_grad(true);
        check_gradient(&b2, |t| a2.scale_add(-1.5, t).sum_all(), 1e-2);
    }

    #[test]
    fn addcmul_matches_unfused() {
        let base = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3]);
        let b = Tensor::from_vec(vec![4.0, 3.0, -2.0], [3]);
        assert_close(
            &base.addcmul(&a, &b, 2.0).to_vec(),
            &base.add(&a.mul(&b).mul_scalar(2.0)).to_vec(),
            0.0,
        );
    }

    #[test]
    fn addcmul_gradcheck_all_inputs() {
        let vals = vec![0.5f32, -1.0, 2.0, 0.3];
        let others = (
            Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], [4]),
            Tensor::from_vec(vec![0.4, -0.8, 1.1, 2.0], [4]),
        );
        let base = Tensor::from_vec(vals.clone(), [4]).requires_grad(true);
        check_gradient(&base, |t| t.addcmul(&others.0, &others.1, 1.5).sum_all(), 1e-2);
        let a = Tensor::from_vec(vals.clone(), [4]).requires_grad(true);
        check_gradient(&a, |t| others.0.addcmul(t, &others.1, 1.5).sum_all(), 1e-2);
        let b = Tensor::from_vec(vals, [4]).requires_grad(true);
        check_gradient(&b, |t| others.0.addcmul(&others.1, t, 1.5).sum_all(), 1e-2);
    }

    #[test]
    fn gru_style_fusion_matches_convex_combination() {
        // h' = n + z*(h - n) == (1-z)*n + z*h
        let n = Tensor::from_vec(vec![0.1, -0.5, 0.9], [3]);
        let z = Tensor::from_vec(vec![0.2, 0.7, 0.5], [3]);
        let h = Tensor::from_vec(vec![1.0, -1.0, 0.0], [3]);
        let fused = n.addcmul(&z, &h.sub(&n), 1.0);
        let unfused = z.neg().add_scalar(1.0).mul(&n).add(&z.mul(&h));
        assert_close(&fused.to_vec(), &unfused.to_vec(), 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not broadcast")]
    fn add_relu_bad_bias_panics() {
        Tensor::zeros([2, 3]).add_relu(&Tensor::zeros([4]));
    }
}
