//! Shape-changing operators: reshape (zero-copy), transpose, broadcast.

use std::sync::Arc;

use crate::shape::Shape;
use crate::tensor::TensorInner;
use crate::Tensor;

use tgl_runtime::sync::Mutex;

impl Tensor {
    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// Zero-copy: the result shares storage. Differentiable (gradient is
    /// reshaped back).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape from {} to {shape} changes element count",
            self.shape()
        );
        // Fast path: share storage; attach a pass-through backward node.
        if !self.requires_grad_flag() {
            return Tensor {
                inner: Arc::new(TensorInner {
                    id: crate::tensor::next_id(),
                    storage: Arc::clone(&self.inner.storage),
                    shape,
                    requires_grad: false,
                    grad: Mutex::new(None),
                    grad_fn: None,
                }),
            };
        }
        let data = self.to_vec();
        Tensor::make_result(data, shape, self.device(), std::slice::from_ref(self), |go| {
            vec![Some(go.to_vec())]
        })
    }

    /// Inserts a size-1 dimension at `dim`.
    pub fn unsqueeze(&self, dim: usize) -> Tensor {
        let mut dims = self.dims().to_vec();
        assert!(dim <= dims.len(), "unsqueeze dim {dim} out of range");
        dims.insert(dim, 1);
        self.reshape(dims)
    }

    /// Removes a size-1 dimension at `dim`.
    ///
    /// # Panics
    ///
    /// Panics if that dimension is not size 1.
    pub fn squeeze(&self, dim: usize) -> Tensor {
        assert_eq!(self.dim(dim), 1, "squeeze dim {dim} is not size 1");
        let mut dims = self.dims().to_vec();
        dims.remove(dim);
        self.reshape(dims)
    }

    /// Transposes a rank-2 tensor (materializing).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires rank-2, got {}", self.shape());
        let (m, n) = (self.dim(0), self.dim(1));
        // Pure data movement: 0 FLOPs, one read + one write per element.
        let _prof = tgl_obs::profile::op("transpose")
            .io(4 * (m * n) as u64, 4 * (m * n) as u64)
            .shape(&[self.dims()])
            .backward_cost(0, 4 * (m * n) as u64, 4 * (m * n) as u64);
        let data = self.to_vec();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = data[i * n + j];
            }
        }
        Tensor::make_result(out, [n, m], self.device(), std::slice::from_ref(self), move |go| {
            let mut g = vec![0.0f32; m * n];
            for j in 0..n {
                for i in 0..m {
                    g[i * n + j] = go[j * m + i];
                }
            }
            vec![Some(g)]
        })
    }

    /// Materializes a broadcast of this tensor to `shape`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn broadcast_to(&self, shape: impl Into<Shape>) -> Tensor {
        let target = shape.into();
        let out_shape = self
            .shape()
            .broadcast_with(&target)
            .filter(|s| *s == target)
            .unwrap_or_else(|| {
                panic!("cannot broadcast {} to {target}", self.shape())
            });
        // Broadcasting against ones of the target shape reuses the
        // binary machinery (and its gradient reduction).
        let ones = Tensor::zeros_on(out_shape, self.device());
        self.add(&ones)
    }

    /// Repeats a `[D]` vector `n` times into an `[n, D]` matrix.
    pub fn repeat_rows(&self, n: usize) -> Tensor {
        assert_eq!(self.rank(), 1, "repeat_rows requires rank-1, got {}", self.shape());
        let d = self.dim(0);
        self.broadcast_to([n, d])
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::check_gradient;
    use crate::Tensor;

    #[test]
    fn reshape_shares_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let r = t.reshape([4]);
        assert_eq!(r.dims(), &[4]);
        t.copy_from_slice(&[9.0, 9.0, 9.0, 9.0]);
        assert_eq!(r.to_vec(), vec![9.0; 4], "reshape should share storage");
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_bad_count_panics() {
        Tensor::zeros([2, 2]).reshape([3]);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let u = t.unsqueeze(1);
        assert_eq!(u.dims(), &[2, 1]);
        assert_eq!(u.squeeze(1).dims(), &[2]);
        let u0 = t.unsqueeze(0);
        assert_eq!(u0.dims(), &[1, 2]);
    }

    #[test]
    fn transpose_values() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_gradcheck() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [2, 3]).requires_grad(true);
        check_gradient(&t, |x| x.transpose().mul_scalar(2.0).sum_all(), 1e-2);
    }

    #[test]
    fn reshape_gradient_passthrough() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad(true);
        t.reshape([4]).mul_scalar(3.0).sum_all().backward();
        assert_eq!(t.grad().unwrap(), vec![3.0; 4]);
    }

    #[test]
    fn broadcast_to_matrix() {
        let v = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let m = v.broadcast_to([3, 2]);
        assert_eq!(m.dims(), &[3, 2]);
        assert_eq!(m.to_vec(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn broadcast_grad_sums() {
        let v = Tensor::from_vec(vec![1.0, 2.0], [2]).requires_grad(true);
        v.broadcast_to([3, 2]).sum_all().backward();
        assert_eq!(v.grad().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn repeat_rows() {
        let v = Tensor::from_vec(vec![7.0, 8.0], [2]);
        let m = v.repeat_rows(2);
        assert_eq!(m.to_vec(), vec![7.0, 8.0, 7.0, 8.0]);
    }
}
