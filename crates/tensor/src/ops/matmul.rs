//! Matrix multiplication (2-D and batched).
//!
//! The three 2-D kernels partition *output* rows across the
//! `tgl-runtime` pool: each row's accumulation order is a function of
//! the operands alone, so results are bitwise identical for any thread
//! count. `bmm` partitions batches instead (nested kernel calls run
//! inline on pool workers).

use tgl_runtime::{parallel_for, UnsafeSlice};

use crate::ops::same_device;
use crate::Tensor;

/// Multiply-add count below which a matmul runs inline on the caller;
/// pool dispatch costs more than the arithmetic.
const MM_SEQ_FLOPS: usize = 32 * 1024;

/// Output rows (of `row_flops` multiply-adds each) per sequential-path
/// threshold — feeds `parallel_for`'s element threshold.
fn seq_rows(row_flops: usize) -> usize {
    (MM_SEQ_FLOPS / row_flops.max(1)).max(1)
}

/// Cheap sparsity probe: samples up to 256 evenly spaced elements and
/// reports whether more than half are exactly zero. The zero-skip
/// branch in the `nn`/`tn` kernels only pays off on such operands; on
/// dense data it costs a branch per inner-loop trip.
fn mostly_zero(x: &[f32]) -> bool {
    if x.is_empty() {
        return false;
    }
    let step = (x.len() / 256).max(1);
    let mut zeros = 0usize;
    let mut total = 0usize;
    let mut i = 0;
    while i < x.len() {
        total += 1;
        if x[i] == 0.0 {
            zeros += 1;
        }
        i += step;
    }
    zeros * 2 > total
}

/// C[m,n] += A[m,k] * B[k,n]
pub(crate) fn mm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    // i-k-j loop order keeps the inner loop streaming over contiguous
    // rows of B and C.
    let sparse = mostly_zero(a);
    let c = UnsafeSlice::new(c);
    parallel_for(m, seq_rows(k * n), |rows: std::ops::Range<usize>| {
        // SAFETY: chunks partition the row space, so these row ranges
        // are disjoint.
        let c_rows = unsafe { c.slice_mut(rows.start * n, rows.len() * n) };
        for (ri, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c_rows[ri * n..(ri + 1) * n];
            if sparse {
                for (kk, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += aik * bj;
                    }
                }
            } else {
                for (kk, &aik) in a_row.iter().enumerate() {
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += aik * bj;
                    }
                }
            }
        }
    });
}

/// C[m,k] += A[m,n] * B[k,n]^T  (i.e. A · Bᵀ)
pub(crate) fn mm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    let c = UnsafeSlice::new(c);
    parallel_for(m, seq_rows(n * k), |rows: std::ops::Range<usize>| {
        // SAFETY: disjoint row ranges per chunk.
        let c_rows = unsafe { c.slice_mut(rows.start * k, rows.len() * k) };
        for (ri, i) in rows.enumerate() {
            let a_row = &a[i * n..(i + 1) * n];
            for j in 0..k {
                let b_row = &b[j * n..(j + 1) * n];
                // 4-way partial sums so the reduction can vectorize.
                let mut acc = [0.0f32; 4];
                let chunks = n / 4;
                for q in 0..chunks {
                    let p = q * 4;
                    acc[0] += a_row[p] * b_row[p];
                    acc[1] += a_row[p + 1] * b_row[p + 1];
                    acc[2] += a_row[p + 2] * b_row[p + 2];
                    acc[3] += a_row[p + 3] * b_row[p + 3];
                }
                let mut tail = 0.0f32;
                for p in chunks * 4..n {
                    tail += a_row[p] * b_row[p];
                }
                c_rows[ri * k + j] += acc[0] + acc[1] + acc[2] + acc[3] + tail;
            }
        }
    });
}

/// C[k,n] += A[m,k]^T * B[m,n]  (i.e. Aᵀ · B)
///
/// Parallelized over output rows (columns of A): each `kk` accumulates
/// over `i` in ascending order, matching the sequential kernel's
/// floating-point order exactly.
pub(crate) fn mm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let sparse = mostly_zero(a);
    let c = UnsafeSlice::new(c);
    parallel_for(k, seq_rows(m * n), |rows: std::ops::Range<usize>| {
        // SAFETY: disjoint row ranges per chunk.
        let c_rows = unsafe { c.slice_mut(rows.start * n, rows.len() * n) };
        for (ri, kk) in rows.enumerate() {
            let c_row = &mut c_rows[ri * n..(ri + 1) * n];
            if sparse {
                for i in 0..m {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[i * n..(i + 1) * n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += aik * bj;
                    }
                }
            } else {
                for i in 0..m {
                    let aik = a[i * k + kk];
                    let b_row = &b[i * n..(i + 1) * n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += aik * bj;
                    }
                }
            }
        }
    });
}

impl Tensor {
    /// 2-D matrix product `self[m,k] @ other[k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner
    /// dimensions on the same device.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let device = same_device(self, other);
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2, got {}", self.shape());
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2, got {}", other.shape());
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul inner dims differ: {} vs {}", self.shape(), other.shape());

        let mut c = vec![0.0f32; m * n];
        {
            let a = self.inner.storage.read();
            let b = other.inner.storage.read();
            mm_nn(&a, &b, &mut c, m, k, n);
        }

        let (a_t, b_t) = (self.clone(), other.clone());
        Tensor::make_result(c, [m, n], device, &[self.clone(), other.clone()], move |go| {
            let a = a_t.inner.storage.read();
            let b = b_t.inner.storage.read();
            // dA = dC · Bᵀ ; dB = Aᵀ · dC
            let mut ga = vec![0.0f32; m * k];
            mm_nt(go, &b, &mut ga, m, n, k);
            let mut gb = vec![0.0f32; k * n];
            mm_tn(&a, go, &mut gb, m, k, n);
            vec![Some(ga), Some(gb)]
        })
    }

    /// Batched matrix product `self[b,m,k] @ other[b,k,n] -> [b,m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-3 with matching batch and
    /// inner dimensions on the same device.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        let device = same_device(self, other);
        assert_eq!(self.rank(), 3, "bmm lhs must be rank-3, got {}", self.shape());
        assert_eq!(other.rank(), 3, "bmm rhs must be rank-3, got {}", other.shape());
        let (bs, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (bs2, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(bs, bs2, "bmm batch dims differ");
        assert_eq!(k, k2, "bmm inner dims differ");

        let mut c = vec![0.0f32; bs * m * n];
        {
            let a = self.inner.storage.read();
            let b = other.inner.storage.read();
            let c_sl = UnsafeSlice::new(&mut c);
            parallel_for(bs, seq_rows(m * k * n), |batches: std::ops::Range<usize>| {
                for i in batches {
                    // SAFETY: each batch owns its own output slice.
                    let ci = unsafe { c_sl.slice_mut(i * m * n, m * n) };
                    mm_nn(
                        &a[i * m * k..(i + 1) * m * k],
                        &b[i * k * n..(i + 1) * k * n],
                        ci,
                        m,
                        k,
                        n,
                    );
                }
            });
        }

        let (a_t, b_t) = (self.clone(), other.clone());
        Tensor::make_result(
            c,
            [bs, m, n],
            device,
            &[self.clone(), other.clone()],
            move |go| {
                let a = a_t.inner.storage.read();
                let b = b_t.inner.storage.read();
                let mut ga = vec![0.0f32; bs * m * k];
                let mut gb = vec![0.0f32; bs * k * n];
                {
                    let ga_sl = UnsafeSlice::new(&mut ga);
                    let gb_sl = UnsafeSlice::new(&mut gb);
                    parallel_for(bs, seq_rows(m * k * n), |batches: std::ops::Range<usize>| {
                        for i in batches {
                            // SAFETY: each batch owns its own gradient slices.
                            let (gai, gbi) = unsafe {
                                (
                                    ga_sl.slice_mut(i * m * k, m * k),
                                    gb_sl.slice_mut(i * k * n, k * n),
                                )
                            };
                            mm_nt(
                                &go[i * m * n..(i + 1) * m * n],
                                &b[i * k * n..(i + 1) * k * n],
                                gai,
                                m,
                                n,
                                k,
                            );
                            mm_tn(
                                &a[i * m * k..(i + 1) * m * k],
                                &go[i * m * n..(i + 1) * m * n],
                                gbi,
                                m,
                                k,
                                n,
                            );
                        }
                    });
                }
                vec![Some(ga), Some(gb)]
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // [1,3] x [3,2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], [3, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![4.0, 5.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2.0, -1.0, 0.5, 3.0], [2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        Tensor::zeros([2, 3]).matmul(&Tensor::zeros([4, 2]));
    }

    #[test]
    fn matmul_gradcheck_lhs() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [2, 3]).requires_grad(true);
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 0.0, 1.5], [3, 2]);
        check_gradient(&a, |t| t.matmul(&b).sum_all(), 1e-2);
    }

    #[test]
    fn matmul_gradcheck_rhs() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 0.0, 1.5], [3, 2]).requires_grad(true);
        check_gradient(&b, |t| a.matmul(t).sum_all(), 1e-2);
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32 * 0.5).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| v as f32 * 0.25 - 1.0).collect(), [2, 3, 2]);
        let out = a.bmm(&b);
        let a0 = Tensor::from_vec(a.to_vec()[..6].to_vec(), [2, 3]);
        let b0 = Tensor::from_vec(b.to_vec()[..6].to_vec(), [3, 2]);
        assert_close(&out.to_vec()[..4], &a0.matmul(&b0).to_vec(), 1e-5);
    }

    #[test]
    fn large_matmul_matches_naive() {
        // 70×60 @ 60×50 = 210k multiply-adds — large enough to cross
        // the sequential threshold and exercise the pool.
        let (m, k, n) = (70, 60, 50);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.01).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 % 97) as f32 - 48.0) * 0.01).collect();
        let got = Tensor::from_vec(a.clone(), [m, k])
            .matmul(&Tensor::from_vec(b.clone(), [k, n]))
            .to_vec();
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    want[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        assert_close(&got, &want, 1e-4);
    }

    #[test]
    fn bmm_gradcheck() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], [1, 2, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], [1, 2, 2]);
        check_gradient(&a, |t| t.bmm(&b).sum_all(), 1e-2);
    }
}
