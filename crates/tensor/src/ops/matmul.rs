//! Matrix multiplication (2-D and batched).
//!
//! The 2-D kernels live in [`crate::ops::gemm`]: cache-blocked,
//! output-row-partitioned, and bitwise invariant across thread counts.
//! `bmm` partitions batches instead (nested kernel calls run inline on
//! pool workers). Output and gradient buffers are drawn from the
//! tensor pool (`take_zeroed`: the kernels accumulate with `+=`).

use tgl_runtime::{parallel_for, UnsafeSlice};

use crate::ops::gemm::{mm_nn, mm_nt, mm_tn, seq_rows};
use crate::ops::same_device;
use crate::pool;
use crate::Tensor;

impl Tensor {
    /// 2-D matrix product `self[m,k] @ other[k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner
    /// dimensions on the same device.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let device = same_device(self, other);
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2, got {}", self.shape());
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2, got {}", other.shape());
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul inner dims differ: {} vs {}", self.shape(), other.shape());

        let _prof = tgl_obs::profile::op("matmul")
            .flops(2 * (m * k * n) as u64)
            .io(4 * (m * k + k * n) as u64, 4 * (m * n) as u64)
            .shape(&[&[m, k], &[k, n]])
            // Backward runs two GEMMs (dC·Bᵀ and Aᵀ·dC).
            .backward_cost(
                4 * (m * k * n) as u64,
                4 * (m * n + m * k + k * n) as u64,
                4 * (m * k + k * n) as u64,
            );
        let mut c = pool::take_zeroed(m * n, device);
        {
            let a = self.inner.storage.read();
            let b = other.inner.storage.read();
            mm_nn(&a, &b, &mut c, m, k, n);
        }

        let (a_t, b_t) = (self.clone(), other.clone());
        Tensor::make_result(c, [m, n], device, &[self.clone(), other.clone()], move |go| {
            let a = a_t.inner.storage.read();
            let b = b_t.inner.storage.read();
            // dA = dC · Bᵀ ; dB = Aᵀ · dC
            let mut ga = pool::take_zeroed(m * k, a_t.device());
            mm_nt(go, &b, &mut ga, m, n, k);
            let mut gb = pool::take_zeroed(k * n, b_t.device());
            mm_tn(&a, go, &mut gb, m, k, n);
            vec![Some(ga), Some(gb)]
        })
    }

    /// Batched matrix product `self[b,m,k] @ other[b,k,n] -> [b,m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-3 with matching batch and
    /// inner dimensions on the same device.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        let device = same_device(self, other);
        assert_eq!(self.rank(), 3, "bmm lhs must be rank-3, got {}", self.shape());
        assert_eq!(other.rank(), 3, "bmm rhs must be rank-3, got {}", other.shape());
        let (bs, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (bs2, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(bs, bs2, "bmm batch dims differ");
        assert_eq!(k, k2, "bmm inner dims differ");

        let _prof = tgl_obs::profile::op("bmm")
            .flops(2 * (bs * m * k * n) as u64)
            .io(4 * (bs * (m * k + k * n)) as u64, 4 * (bs * m * n) as u64)
            .shape(&[&[bs, m, k], &[bs, k, n]])
            .backward_cost(
                4 * (bs * m * k * n) as u64,
                4 * (bs * (m * n + m * k + k * n)) as u64,
                4 * (bs * (m * k + k * n)) as u64,
            );
        let mut c = pool::take_zeroed(bs * m * n, device);
        {
            let a = self.inner.storage.read();
            let b = other.inner.storage.read();
            let c_sl = UnsafeSlice::new(&mut c);
            parallel_for(bs, seq_rows(m * k * n), |batches: std::ops::Range<usize>| {
                for i in batches {
                    // SAFETY: each batch owns its own output slice.
                    let ci = unsafe { c_sl.slice_mut(i * m * n, m * n) };
                    mm_nn(
                        &a[i * m * k..(i + 1) * m * k],
                        &b[i * k * n..(i + 1) * k * n],
                        ci,
                        m,
                        k,
                        n,
                    );
                }
            });
        }

        let (a_t, b_t) = (self.clone(), other.clone());
        Tensor::make_result(
            c,
            [bs, m, n],
            device,
            &[self.clone(), other.clone()],
            move |go| {
                let a = a_t.inner.storage.read();
                let b = b_t.inner.storage.read();
                let mut ga = pool::take_zeroed(bs * m * k, a_t.device());
                let mut gb = pool::take_zeroed(bs * k * n, b_t.device());
                {
                    let ga_sl = UnsafeSlice::new(&mut ga);
                    let gb_sl = UnsafeSlice::new(&mut gb);
                    parallel_for(bs, seq_rows(m * k * n), |batches: std::ops::Range<usize>| {
                        for i in batches {
                            // SAFETY: each batch owns its own gradient slices.
                            let (gai, gbi) = unsafe {
                                (
                                    ga_sl.slice_mut(i * m * k, m * k),
                                    gb_sl.slice_mut(i * k * n, k * n),
                                )
                            };
                            mm_nt(
                                &go[i * m * n..(i + 1) * m * n],
                                &b[i * k * n..(i + 1) * k * n],
                                gai,
                                m,
                                n,
                                k,
                            );
                            mm_tn(
                                &a[i * m * k..(i + 1) * m * k],
                                &go[i * m * n..(i + 1) * m * n],
                                gbi,
                                m,
                                k,
                                n,
                            );
                        }
                    });
                }
                vec![Some(ga), Some(gb)]
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // [1,3] x [3,2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], [3, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![4.0, 5.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2.0, -1.0, 0.5, 3.0], [2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        Tensor::zeros([2, 3]).matmul(&Tensor::zeros([4, 2]));
    }

    #[test]
    fn matmul_gradcheck_lhs() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [2, 3]).requires_grad(true);
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 0.0, 1.5], [3, 2]);
        check_gradient(&a, |t| t.matmul(&b).sum_all(), 1e-2);
    }

    #[test]
    fn matmul_gradcheck_rhs() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 0.0, 1.5], [3, 2]).requires_grad(true);
        check_gradient(&b, |t| a.matmul(t).sum_all(), 1e-2);
    }

    #[test]
    fn matmul_gradcheck_straddles_kc_panel() {
        // k = 257 is one element past the blocked kernel's KC=256 panel,
        // so the packed forward and the nt/tn backward kernels all walk
        // a partial trailing panel. The analytic gradients must still
        // match central differences there.
        let k = 257;
        let fill = |len: usize, salt: usize| -> Vec<f32> {
            (0..len).map(|i| ((i * 37 + salt) % 101) as f32 / 101.0 - 0.5).collect()
        };
        let a = Tensor::from_vec(fill(2 * k, 3), [2, k]).requires_grad(true);
        let b = Tensor::from_vec(fill(k * 2, 11), [k, 2]);
        check_gradient(&a, |t| t.matmul(&b).sum_all(), 1e-2);
        let a = Tensor::from_vec(fill(2 * k, 3), [2, k]);
        let b = Tensor::from_vec(fill(k * 2, 11), [k, 2]).requires_grad(true);
        check_gradient(&b, |t| a.matmul(t).sum_all(), 1e-2);
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32 * 0.5).collect(), [2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| v as f32 * 0.25 - 1.0).collect(), [2, 3, 2]);
        let out = a.bmm(&b);
        let a0 = Tensor::from_vec(a.to_vec()[..6].to_vec(), [2, 3]);
        let b0 = Tensor::from_vec(b.to_vec()[..6].to_vec(), [3, 2]);
        assert_close(&out.to_vec()[..4], &a0.matmul(&b0).to_vec(), 1e-5);
    }

    #[test]
    fn large_matmul_matches_naive() {
        // 70×60 @ 60×50 = 210k multiply-adds — large enough to cross
        // the sequential threshold and exercise the pool.
        let (m, k, n) = (70, 60, 50);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.01).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 53 % 97) as f32 - 48.0) * 0.01).collect();
        let got = Tensor::from_vec(a.clone(), [m, k])
            .matmul(&Tensor::from_vec(b.clone(), [k, n]))
            .to_vec();
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    want[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        assert_close(&got, &want, 1e-4);
    }

    #[test]
    fn bmm_gradcheck() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], [1, 2, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], [1, 2, 2]);
        check_gradient(&a, |t| t.bmm(&b).sum_all(), 1e-2);
    }
}
