//! Row indexing, gathering, scattering, slicing, and concatenation.

use crate::shape::Shape;
use crate::Tensor;

impl Tensor {
    /// Gathers rows (dimension 0) by index: `out[i] = self[idx[i]]`.
    ///
    /// The workhorse of feature lookup (node/edge feature gathering in
    /// TGLite blocks). Differentiable: the gradient scatter-adds back,
    /// so repeated indices accumulate.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or the tensor is rank-0.
    pub fn index_select(&self, idx: &[usize]) -> Tensor {
        assert!(self.rank() >= 1, "index_select needs rank >= 1");
        let rows = self.dim(0);
        let row_len: usize = self.dims()[1..].iter().product();
        let moved = 4 * (idx.len() * row_len) as u64;
        let _prof = tgl_obs::profile::op("index_select")
            .io(moved, moved)
            .shape(&[self.dims(), &[idx.len()]])
            .backward_cost((idx.len() * row_len) as u64, moved, 4 * self.numel() as u64);
        let data = self.inner.storage.read();
        let mut out = Vec::with_capacity(idx.len() * row_len);
        for &i in idx {
            assert!(i < rows, "index {i} out of bounds for {rows} rows");
            out.extend_from_slice(&data[i * row_len..(i + 1) * row_len]);
        }
        drop(data);
        let mut out_dims = self.dims().to_vec();
        out_dims[0] = idx.len();
        let idx_owned = idx.to_vec();
        let n = self.numel();
        Tensor::make_result(out, out_dims, self.device(), std::slice::from_ref(self), move |go| {
            let mut g = vec![0.0f32; n];
            for (k, &i) in idx_owned.iter().enumerate() {
                for j in 0..row_len {
                    g[i * row_len + j] += go[k * row_len + j];
                }
            }
            vec![Some(g)]
        })
    }

    /// Copies rows `[start, start+len)` along dimension 0.
    pub fn narrow_rows(&self, start: usize, len: usize) -> Tensor {
        let idx: Vec<usize> = (start..start + len).collect();
        self.index_select(&idx)
    }

    /// Returns a new tensor equal to `self` but with `rows[i]` replaced
    /// by `src[i]` (non-differentiable bulk row write used for cache
    /// population and memory updates outside the autograd graph).
    ///
    /// # Panics
    ///
    /// Panics on row index out of bounds or row-length mismatch.
    pub fn rows_written(&self, rows: &[usize], src: &Tensor) -> Tensor {
        let row_len: usize = self.dims()[1..].iter().product();
        let _prof = tgl_obs::profile::op("rows_written")
            .io(4 * (self.numel() + src.numel()) as u64, 4 * self.numel() as u64)
            .shape(&[self.dims(), src.dims()]);
        assert_eq!(
            src.numel(),
            rows.len() * row_len,
            "rows_written source size mismatch"
        );
        let mut data = self.to_vec();
        let s = src.inner.storage.read();
        for (k, &r) in rows.iter().enumerate() {
            assert!(r < self.dim(0), "row {r} out of bounds");
            data[r * row_len..(r + 1) * row_len]
                .copy_from_slice(&s[k * row_len..(k + 1) * row_len]);
        }
        drop(s);
        Tensor::from_vec_on(data, self.shape().clone(), self.device())
    }
}

/// Concatenates tensors along dimension `dim`.
///
/// All inputs must share rank, every non-`dim` dimension, and device.
/// Differentiable: gradients are split back per input.
///
/// # Panics
///
/// Panics on empty input, mismatched shapes, or mixed devices.
///
/// # Examples
///
/// ```
/// use tgl_tensor::{ops::cat, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
/// let b = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
/// assert_eq!(cat(&[a.clone(), b.clone()], 0).dims(), &[2, 2]);
/// assert_eq!(cat(&[a, b], 1).dims(), &[1, 4]);
/// ```
pub fn cat(tensors: &[Tensor], dim: usize) -> Tensor {
    assert!(!tensors.is_empty(), "cat of zero tensors");
    let first = &tensors[0];
    let rank = first.rank();
    assert!(dim < rank, "cat dim {dim} out of range for rank {rank}");
    for t in tensors {
        assert_eq!(t.rank(), rank, "cat rank mismatch");
        assert_eq!(t.device(), first.device(), "cat device mismatch");
        for d in 0..rank {
            if d != dim {
                assert_eq!(
                    t.dim(d),
                    first.dim(d),
                    "cat non-concat dim {d} mismatch: {} vs {}",
                    t.shape(),
                    first.shape()
                );
            }
        }
    }

    let outer: usize = first.dims()[..dim].iter().product();
    let inner: usize = first.dims()[dim + 1..].iter().product();
    let cat_sizes: Vec<usize> = tensors.iter().map(|t| t.dim(dim)).collect();
    let total_cat: usize = cat_sizes.iter().sum();

    let moved = 4 * (outer * total_cat * inner) as u64;
    let _prof = tgl_obs::profile::op("cat")
        .io(moved, moved)
        .shape(&[first.dims(), &[tensors.len()]])
        .backward_cost(0, moved, moved);

    let mut out_dims = first.dims().to_vec();
    out_dims[dim] = total_cat;
    let out_shape = Shape::new(out_dims);
    let mut out = vec![0.0f32; out_shape.numel()];

    // For each input, copy its contiguous (mid*inner) chunks into place.
    let mut offset = 0;
    for (t, &sz) in tensors.iter().zip(&cat_sizes) {
        let data = t.inner.storage.read();
        let chunk = sz * inner;
        for o in 0..outer {
            let dst = o * total_cat * inner + offset * inner;
            out[dst..dst + chunk].copy_from_slice(&data[o * chunk..(o + 1) * chunk]);
        }
        offset += sz;
    }

    let sizes = cat_sizes.clone();
    let numels: Vec<usize> = tensors.iter().map(Tensor::numel).collect();
    Tensor::make_result(out, out_shape, first.device(), tensors, move |go| {
        let mut grads: Vec<Option<Vec<f32>>> =
            numels.iter().map(|&n| Some(vec![0.0f32; n])).collect();
        let mut offset = 0;
        for (gi, &sz) in sizes.iter().enumerate() {
            let g = grads[gi].as_mut().expect("grad buffer exists");
            let chunk = sz * inner;
            for o in 0..outer {
                let src = o * total_cat * inner + offset * inner;
                g[o * chunk..(o + 1) * chunk].copy_from_slice(&go[src..src + chunk]);
            }
            offset += sz;
        }
        grads
    })
}

/// Stacks rank-`r` tensors into a rank-`r+1` tensor along a new
/// leading dimension.
///
/// # Panics
///
/// Panics on empty input or mismatched shapes/devices.
pub fn stack(tensors: &[Tensor]) -> Tensor {
    assert!(!tensors.is_empty(), "stack of zero tensors");
    let unsqueezed: Vec<Tensor> = tensors.iter().map(|t| t.unsqueeze(0)).collect();
    cat(&unsqueezed, 0)
}

#[cfg(test)]
mod tests {
    use super::{cat, stack};
    use crate::testing::check_gradient;
    use crate::Tensor;

    #[test]
    fn index_select_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let s = t.index_select(&[2, 0, 2]);
        assert_eq!(s.dims(), &[3, 2]);
        assert_eq!(s.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn index_select_grad_accumulates_duplicates() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).requires_grad(true);
        let s = t.index_select(&[1, 1, 2]);
        s.sum_all().backward();
        assert_eq!(t.grad().unwrap(), vec![0.0, 2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_select_oob_panics() {
        Tensor::zeros([2, 2]).index_select(&[5]);
    }

    #[test]
    fn narrow_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        assert_eq!(t.narrow_rows(1, 2).to_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn rows_written_replaces() {
        let t = Tensor::zeros([3, 2]);
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let w = t.rows_written(&[2, 0], &src);
        assert_eq!(w.to_vec(), vec![3.0, 4.0, 0.0, 0.0, 1.0, 2.0]);
        // original untouched
        assert_eq!(t.to_vec(), vec![0.0; 6]);
    }

    #[test]
    fn cat_dim0() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], [2, 2]);
        let c = cat(&[a, b], 0);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn cat_dim1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], [2, 1]);
        let c = cat(&[a, b], 1);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn cat_grad_splits() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![3.0, 4.0], [1, 2]).requires_grad(true);
        cat(&[a.clone(), b.clone()], 1)
            .mul(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]))
            .sum_all()
            .backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 2.0]);
        assert_eq!(b.grad().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn cat_gradcheck_dim1() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], [2, 2]).requires_grad(true);
        let b = Tensor::from_vec(vec![1.0, -2.0], [2, 1]);
        check_gradient(
            &a,
            |t| cat(&[t.clone(), b.clone()], 1).mul_scalar(2.0).sum_all(),
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "non-concat dim")]
    fn cat_shape_mismatch_panics() {
        cat(&[Tensor::zeros([1, 2]), Tensor::zeros([1, 3])], 0);
    }

    #[test]
    fn stack_creates_new_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [2]);
        let s = stack(&[a, b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_gradient_splits() {
        let a = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        let b = Tensor::from_vec(vec![2.0], [1]).requires_grad(true);
        stack(&[a.clone(), b.clone()]).mul_scalar(3.0).sum_all().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0]);
        assert_eq!(b.grad().unwrap(), vec![3.0]);
    }

    #[test]
    fn index_select_gradcheck() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [3, 2]).requires_grad(true);
        check_gradient(
            &t,
            |x| x.index_select(&[0, 2, 2]).mul_scalar(1.5).sum_all(),
            1e-2,
        );
    }
}
