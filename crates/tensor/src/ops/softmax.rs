//! Numerically-stable softmax over the last dimension.

use tgl_runtime::{parallel_for, UnsafeSlice};

use crate::kernel;
use crate::ops::rows_threshold;
use crate::pool::{self, PooledBuf};
use crate::Tensor;

/// AVX2 forward for one row: vector max / `exp256` / sum / normalize.
/// Fast-only — the horizontal reductions and polynomial exp change
/// low-order bits vs the scalar reference (still thread-invariant: the
/// arithmetic is a function of the row alone).
///
/// # Safety
///
/// Requires AVX2+FMA; `yrow.len() == row.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn softmax_row_avx2(row: &[f32], yrow: &mut [f32]) {
    use std::arch::x86_64::*;

    use crate::kernel::x86::{exp256, hmax, hsum};
    let n = row.len();
    let chunks = n / 8;
    let mut m = f32::NEG_INFINITY;
    if chunks > 0 {
        let mut vm = _mm256_loadu_ps(row.as_ptr());
        for q in 1..chunks {
            vm = _mm256_max_ps(vm, _mm256_loadu_ps(row.as_ptr().add(q * 8)));
        }
        m = hmax(vm);
    }
    for p in chunks * 8..n {
        m = m.max(*row.get_unchecked(p));
    }
    let mv = _mm256_set1_ps(m);
    let mut vsum = _mm256_setzero_ps();
    for q in 0..chunks {
        let e = exp256(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(q * 8)), mv));
        _mm256_storeu_ps(yrow.as_mut_ptr().add(q * 8), e);
        vsum = _mm256_add_ps(vsum, e);
    }
    let mut sum = hsum(vsum);
    for p in chunks * 8..n {
        let e = (row.get_unchecked(p) - m).exp();
        *yrow.get_unchecked_mut(p) = e;
        sum += e;
    }
    let sv = _mm256_set1_ps(sum);
    for q in 0..chunks {
        let v = _mm256_div_ps(_mm256_loadu_ps(yrow.as_ptr().add(q * 8)), sv);
        _mm256_storeu_ps(yrow.as_mut_ptr().add(q * 8), v);
    }
    for p in chunks * 8..n {
        *yrow.get_unchecked_mut(p) /= sum;
    }
}

/// AVX2 backward for one row: `out = (go - <go, y>) * y`. Fast-only
/// (8-lane FMA dot).
///
/// # Safety
///
/// Requires AVX2+FMA; all slices have equal length.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn softmax_grad_row_avx2(go: &[f32], y: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;

    use crate::kernel::x86::dot_fast;
    let dot = dot_fast(go, y);
    let n = go.len();
    let chunks = n / 8;
    let dv = _mm256_set1_ps(dot);
    for q in 0..chunks {
        let p = q * 8;
        let g = _mm256_loadu_ps(go.as_ptr().add(p));
        let yv = _mm256_loadu_ps(y.as_ptr().add(p));
        _mm256_storeu_ps(out.as_mut_ptr().add(p), _mm256_mul_ps(_mm256_sub_ps(g, dv), yv));
    }
    for p in chunks * 8..n {
        *out.get_unchecked_mut(p) = (go.get_unchecked(p) - dot) * y.get_unchecked(p);
    }
}

impl Tensor {
    /// Softmax over the last dimension.
    ///
    /// Rows are processed independently with max-subtraction for
    /// numerical stability; row blocks are partitioned across the pool
    /// (each row's arithmetic is self-contained, so results are
    /// thread-count invariant).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors.
    pub fn softmax_last(&self) -> Tensor {
        assert!(self.rank() >= 1, "softmax needs rank >= 1");
        let cols = self.dim(self.rank() - 1);
        let rows = self.numel() / cols;
        let device = self.device();
        let n = self.numel() as u64;
        let _prof = tgl_obs::profile::op("softmax_last")
            // max-subtract, exp, divide ≈ 5 flops/elem (exp dominates).
            .flops(5 * n)
            .io(4 * n, 8 * n)
            .shape(&[self.dims()])
            .backward_cost(4 * n, 8 * n, 4 * n);
        let fast_simd = kernel::fast() && kernel::avx2();
        #[cfg(not(target_arch = "x86_64"))]
        let _ = fast_simd;
        let x = self.inner.storage.read();
        // Fully overwritten row by row — recycled memory needs no zeroing.
        let mut y = pool::take_uninit(x.len(), device);
        {
            let y_sl = UnsafeSlice::new(&mut y);
            let x = &x;
            parallel_for(rows, rows_threshold(cols), |rs: std::ops::Range<usize>| {
                // SAFETY: row ranges are disjoint across chunks.
                let out = unsafe { y_sl.slice_mut(rs.start * cols, rs.len() * cols) };
                for (k, r) in rs.enumerate() {
                    let row = &x[r * cols..(r + 1) * cols];
                    let yrow = &mut out[k * cols..(k + 1) * cols];
                    #[cfg(target_arch = "x86_64")]
                    if fast_simd {
                        // SAFETY: `fast_simd` implies `kernel::avx2()`.
                        unsafe { softmax_row_avx2(row, yrow) };
                        continue;
                    }
                    let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for (o, &v) in yrow.iter_mut().zip(row) {
                        let e = (v - m).exp();
                        *o = e;
                        sum += e;
                    }
                    for o in yrow.iter_mut() {
                        *o /= sum;
                    }
                }
            });
        }
        drop(x);
        // Backward needs the normalized output; keep a pooled copy that
        // recycles when the graph drops.
        let y_copy = {
            let mut c = pool::take_uninit(y.len(), device);
            c.copy_from_slice(&y);
            PooledBuf::new(c, device)
        };
        Tensor::make_result(
            y,
            self.shape().clone(),
            self.device(),
            std::slice::from_ref(self),
            move |go| {
                // dx = (go - sum(go*y)) * y, per row
                let mut g = pool::take_uninit(y_copy.len(), device);
                {
                    let g_sl = UnsafeSlice::new(&mut g);
                    let (go, y_copy) = (&go, &y_copy);
                    parallel_for(rows, rows_threshold(cols), |rs: std::ops::Range<usize>| {
                        // SAFETY: row ranges are disjoint across chunks.
                        let out = unsafe { g_sl.slice_mut(rs.start * cols, rs.len() * cols) };
                        for (k, r) in rs.enumerate() {
                            let base = r * cols;
                            #[cfg(target_arch = "x86_64")]
                            if fast_simd {
                                // SAFETY: `fast_simd` implies avx2.
                                unsafe {
                                    softmax_grad_row_avx2(
                                        &go[base..base + cols],
                                        &y_copy[base..base + cols],
                                        &mut out[k * cols..(k + 1) * cols],
                                    )
                                };
                                continue;
                            }
                            let dot: f32 =
                                (0..cols).map(|j| go[base + j] * y_copy[base + j]).sum();
                            for j in 0..cols {
                                out[k * cols + j] = (go[base + j] - dot) * y_copy[base + j];
                            }
                        }
                    });
                }
                vec![Some(g)]
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]);
        let s = t.softmax_last();
        let v = s.to_vec();
        assert_close(&[v[0] + v[1] + v[2], v[3] + v[4] + v[5]], &[1.0, 1.0], 1e-6);
    }

    #[test]
    fn uniform_input_uniform_output() {
        let t = Tensor::zeros([1, 4]);
        assert_close(&t.softmax_last().to_vec(), &[0.25; 4], 1e-6);
    }

    #[test]
    fn stable_with_large_values() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], [2]);
        let v = t.softmax_last().to_vec();
        assert!(v.iter().all(|x| x.is_finite()));
        assert_close(&[v[0] + v[1]], &[1.0], 1e-6);
    }

    #[test]
    fn monotone_in_logits() {
        let t = Tensor::from_vec(vec![0.0, 1.0, 2.0], [3]);
        let v = t.softmax_last().to_vec();
        assert!(v[0] < v[1] && v[1] < v[2]);
    }

    #[test]
    fn gradcheck() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], [2, 3]).requires_grad(true);
        let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 2.0, 1.0, -1.0], [2, 3]);
        check_gradient(&t, |x| x.softmax_last().mul(&w).sum_all(), 1e-2);
    }
}
