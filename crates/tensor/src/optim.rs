//! Gradient-descent optimizers.

use std::collections::HashMap;

use crate::Tensor;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: HashMap<u64, Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Sgd {
        Sgd {
            params,
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Sgd {
        self.momentum = momentum;
        self
    }

    /// Applies one update step using accumulated gradients.
    pub fn step(&mut self) {
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| vec![0.0; g.len()]);
                p.with_data_mut(|data| {
                    for ((d, gi), vi) in data.iter_mut().zip(&g).zip(v.iter_mut()) {
                        *vi = self.momentum * *vi + gi;
                        *d -= self.lr * *vi;
                    }
                });
            } else {
                p.with_data_mut(|data| {
                    for (d, gi) in data.iter_mut().zip(&g) {
                        *d -= self.lr * gi;
                    }
                });
            }
        }
    }

    /// Clears gradients on all parameters.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Rescales accumulated gradients so their global L2 norm is at most
/// `max_norm`; returns the norm before clipping. Standard stabilizer
/// for RNN/GRU-based temporal models (JODIE/TGN memory updaters).
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params {
        if let Some(g) = p.grad() {
            sq += g.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
        }
    }
    let norm = (sq.sqrt()) as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(mut g) = p.grad() {
                for v in g.iter_mut() {
                    *v *= scale;
                }
                p.zero_grad();
                p.accumulate_grad_public(&g);
            }
        }
    }
    norm
}

/// Adam optimizer (Kingma & Ba), the paper models' default.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    state: HashMap<u64, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Adam {
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Applies one update step using accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let (m, v) = self
                .state
                .entry(p.id())
                .or_insert_with(|| (vec![0.0; g.len()], vec![0.0; g.len()]));
            p.with_data_mut(|data| {
                for i in 0..g.len() {
                    m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                    v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                    let m_hat = m[i] / bc1;
                    let v_hat = v[i] / bc2;
                    data[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            });
        }
    }

    /// Clears gradients on all parameters.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Number of parameter tensors under management.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Minimizing (x - 3)^2 should converge to x = 3.
    fn quadratic_loss(x: &Tensor) -> Tensor {
        let d = x.add_scalar(-3.0);
        d.mul(&d).sum_all()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let x = Tensor::from_vec(vec![0.0], [1]).requires_grad(true);
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        for _ in 0..100 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.to_vec()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_minimizes_quadratic() {
        let x = Tensor::from_vec(vec![0.0], [1]).requires_grad(true);
        let mut opt = Sgd::new(vec![x.clone()], 0.05).with_momentum(0.9);
        for _ in 0..200 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.to_vec()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let x = Tensor::from_vec(vec![-5.0, 10.0], [2]).requires_grad(true);
        let mut opt = Adam::new(vec![x.clone()], 0.3);
        for _ in 0..300 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        for v in x.to_vec() {
            assert!((v - 3.0).abs() < 1e-2, "got {v}");
        }
    }

    #[test]
    fn step_without_grad_is_noop() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step();
        assert_eq!(x.to_vec(), vec![1.0]);
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let x = Tensor::from_vec(vec![3.0, 4.0], [2]).requires_grad(true);
        // grad = [3, 4] after d/dx of 0.5*x^2 summed
        x.mul(&x).mul_scalar(0.5).sum_all().backward();
        let before = clip_grad_norm(std::slice::from_ref(&x), 1.0);
        assert!((before - 5.0).abs() < 1e-4);
        let g = x.grad().unwrap();
        let norm: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "clipped norm {norm}");
    }

    #[test]
    fn clip_grad_norm_noop_when_small() {
        let x = Tensor::from_vec(vec![0.1], [1]).requires_grad(true);
        x.mul_scalar(1.0).sum_all().backward();
        let before = clip_grad_norm(std::slice::from_ref(&x), 10.0);
        assert!((before - 1.0).abs() < 1e-5);
        assert_eq!(x.grad().unwrap(), vec![1.0], "untouched below max");
    }

    #[test]
    fn zero_grad_clears() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        quadratic_loss(&x).backward();
        assert!(x.grad().is_some());
        let opt = Adam::new(vec![x.clone()], 0.1);
        opt.zero_grad();
        assert!(x.grad().is_none());
    }
}
