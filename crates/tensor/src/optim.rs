//! Gradient-descent optimizers.
//!
//! Steady-state steps perform **zero tensor allocations**: optimizer
//! state lives in plain tensors allocated once per parameter, gradients
//! are read in place through [`Tensor::with_grad`], and updates run as
//! fused in-place kernels ([`Tensor::adam_step_`],
//! [`Tensor::add_scaled_`]).

use std::collections::HashMap;

use crate::ops::AdamStep;
use crate::Tensor;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Sgd {
        Sgd {
            params,
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Sgd {
        self.momentum = momentum;
        self
    }

    /// Applies one update step using accumulated gradients.
    pub fn step(&mut self) {
        for p in &self.params {
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros_on(p.dims().to_vec(), p.device()));
                let momentum = self.momentum;
                let lr = self.lr;
                p.with_grad(|g| {
                    let Some(g) = g else { return };
                    // v = momentum*v + g; p -= lr*v — fused per element.
                    v.with_data_mut(|vd| {
                        p.with_data_mut(|data| {
                            for ((d, gi), vi) in data.iter_mut().zip(g).zip(vd.iter_mut()) {
                                *vi = momentum * *vi + gi;
                                *d -= lr * *vi;
                            }
                        });
                    });
                });
            } else {
                let lr = self.lr;
                p.with_grad(|g| {
                    if let Some(g) = g {
                        p.add_scaled_(g, -lr);
                    }
                });
            }
        }
    }

    /// Clears gradients on all parameters.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Rescales accumulated gradients so their global L2 norm is at most
/// `max_norm`; returns the norm before clipping. Standard stabilizer
/// for RNN/GRU-based temporal models (JODIE/TGN memory updaters).
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params {
        p.with_grad(|g| {
            if let Some(g) = g {
                sq += g.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
            }
        });
    }
    let norm = (sq.sqrt()) as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.with_grad_mut(|g| {
                if let Some(g) = g {
                    for v in g.iter_mut() {
                        *v *= scale;
                    }
                }
            });
        }
    }
    norm
}

/// Adam optimizer (Kingma & Ba), the paper models' default.
///
/// Moment state is a pair of tensors per parameter, allocated lazily on
/// the first step a gradient appears; every subsequent step is one
/// fused in-place pass over (param, grad, m, v).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    state: HashMap<u64, (Tensor, Tensor)>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Adam {
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Applies one update step using accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let step = AdamStep {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            bc1: 1.0 - self.beta1.powi(self.t as i32),
            bc2: 1.0 - self.beta2.powi(self.t as i32),
        };
        for p in &self.params {
            let (m, v) = self.state.entry(p.id()).or_insert_with(|| {
                (
                    Tensor::zeros_on(p.dims().to_vec(), p.device()),
                    Tensor::zeros_on(p.dims().to_vec(), p.device()),
                )
            });
            p.with_grad(|g| {
                if let Some(g) = g {
                    p.adam_step_(g, m, v, step);
                }
            });
        }
    }

    /// Clears gradients on all parameters.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Number of parameter tensors under management.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Minimizing (x - 3)^2 should converge to x = 3.
    fn quadratic_loss(x: &Tensor) -> Tensor {
        let d = x.add_scalar(-3.0);
        d.mul(&d).sum_all()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let x = Tensor::from_vec(vec![0.0], [1]).requires_grad(true);
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        for _ in 0..100 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.to_vec()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_minimizes_quadratic() {
        let x = Tensor::from_vec(vec![0.0], [1]).requires_grad(true);
        let mut opt = Sgd::new(vec![x.clone()], 0.05).with_momentum(0.9);
        for _ in 0..200 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.to_vec()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let x = Tensor::from_vec(vec![-5.0, 10.0], [2]).requires_grad(true);
        let mut opt = Adam::new(vec![x.clone()], 0.3);
        for _ in 0..300 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        for v in x.to_vec() {
            assert!((v - 3.0).abs() < 1e-2, "got {v}");
        }
    }

    #[test]
    fn adam_fused_matches_reference_formulation() {
        // One step of the fused kernel against the textbook three-pass
        // update, from a cold state.
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], [3]).requires_grad(true);
        x.mul(&x).sum_all().backward(); // g = 2x
        let g = x.grad().unwrap();
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step();

        let (beta1, beta2, lr, eps) = (0.9f32, 0.999f32, 0.1f32, 1e-8f32);
        let (bc1, bc2) = (1.0 - beta1, 1.0 - beta2);
        let mut want = vec![1.0f32, -2.0, 0.5];
        for i in 0..3 {
            let m = (1.0 - beta1) * g[i];
            let v = (1.0 - beta2) * g[i] * g[i];
            want[i] -= lr * (m / bc1) / ((v / bc2).sqrt() + eps);
        }
        crate::testing::assert_close(&x.to_vec(), &want, 1e-6);
    }

    #[test]
    fn step_without_grad_is_noop() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step();
        assert_eq!(x.to_vec(), vec![1.0]);
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let x = Tensor::from_vec(vec![3.0, 4.0], [2]).requires_grad(true);
        // grad = [3, 4] after d/dx of 0.5*x^2 summed
        x.mul(&x).mul_scalar(0.5).sum_all().backward();
        let before = clip_grad_norm(std::slice::from_ref(&x), 1.0);
        assert!((before - 5.0).abs() < 1e-4);
        let g = x.grad().unwrap();
        let norm: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "clipped norm {norm}");
    }

    #[test]
    fn clip_grad_norm_noop_when_small() {
        let x = Tensor::from_vec(vec![0.1], [1]).requires_grad(true);
        x.mul_scalar(1.0).sum_all().backward();
        let before = clip_grad_norm(std::slice::from_ref(&x), 10.0);
        assert!((before - 1.0).abs() < 1e-5);
        assert_eq!(x.grad().unwrap(), vec![1.0], "untouched below max");
    }

    #[test]
    fn zero_grad_clears() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        quadratic_loss(&x).backward();
        assert!(x.grad().is_some());
        let opt = Adam::new(vec![x.clone()], 0.1);
        opt.zero_grad();
        assert!(x.grad().is_none());
    }
}
