//! A pure-Rust dense tensor library with reverse-mode automatic
//! differentiation, built as the deep-learning substrate for the TGLite
//! reproduction (substituting for PyTorch, which the paper pairs TGLite
//! with).
//!
//! Features:
//!
//! * dense, contiguous, row-major `f32` tensors of arbitrary rank,
//!   tagged with a simulated [`Device`] tier (see `tgl-device`);
//! * broadcasting elementwise ops, matrix multiplication, reductions,
//!   row indexing/gather/scatter, concatenation, softmax, and the
//!   *segmented* operators (segment sum/mean/max/softmax) that TGLite's
//!   edge-wise block operators are built on;
//! * tape-based reverse-mode autograd with a custom-operator extension
//!   API ([`Tensor::custom_op`]);
//! * neural-network modules ([`nn::Linear`], [`nn::GruCell`],
//!   [`nn::RnnCell`], [`nn::Mlp`]) and optimizers ([`optim::Adam`],
//!   [`optim::Sgd`]);
//! * binary-cross-entropy-with-logits loss for temporal link prediction.
//!
//! # Examples
//!
//! ```
//! use tgl_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad(true);
//! let b = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], [2, 2]);
//! let loss = a.matmul(&b).sum_all();
//! loss.backward();
//! assert_eq!(a.grad().unwrap(), vec![1.0, 1.0, 1.0, 1.0]);
//! ```

mod autograd;
mod init;
pub mod kernel;
mod loss;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod pool;
mod serialize;
mod shape;
mod storage;
mod tensor;

pub use autograd::{no_grad, NoGradGuard};
pub use init::{kaiming_uniform, uniform, xavier_uniform, zeros_init};
pub use loss::{bce_with_logits, bce_with_logits_sum};
pub use serialize::{load_params, save_params};
pub use shape::Shape;
pub use tensor::{DeviceOom, Tensor};

pub use tgl_device::Device;

#[cfg(test)]
mod testing {
    //! Shared helpers for unit tests across modules.

    use crate::Tensor;

    /// Asserts two float slices are elementwise within `tol`.
    pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol,
                "index {i}: {x} vs {y} (tol {tol})\nleft:  {a:?}\nright: {b:?}"
            );
        }
    }

    /// Numerically estimates d(f)/d(input) via central differences and
    /// compares against the autograd gradient.
    ///
    /// `f` must be a deterministic function producing a scalar tensor.
    pub fn check_gradient<F>(input: &Tensor, f: F, tol: f32)
    where
        F: Fn(&Tensor) -> Tensor,
    {
        let out = f(input);
        assert_eq!(out.numel(), 1, "check_gradient needs a scalar output");
        input.zero_grad();
        out.backward();
        let analytic = input.grad().expect("input should have a gradient");

        let eps = 1e-2f32;
        let base = input.to_vec();
        let mut numeric = vec![0.0f32; base.len()];
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let fp = f(&Tensor::from_vec(plus, input.shape().dims().to_vec())).to_vec()[0];
            let fm = f(&Tensor::from_vec(minus, input.shape().dims().to_vec())).to_vec()[0];
            numeric[i] = (fp - fm) / (2.0 * eps);
        }
        assert_close(&analytic, &numeric, tol);
    }
}
