//! Device-tracked tensor storage.

use tgl_runtime::sync::RwLock;
use tgl_device::Device;

use crate::tensor::DeviceOom;

/// Reference-counted, device-tagged buffer of `f32`s.
///
/// Multiple tensors (e.g. a tensor and its reshaped views) may share one
/// storage. Allocation is registered with the `tgl-device` tracker on
/// creation and released on drop, so the simulated device-memory
/// accounting reflects live tensor data.
#[derive(Debug)]
pub(crate) struct Storage {
    data: RwLock<Vec<f32>>,
    device: Device,
    bytes: u64,
}

impl Storage {
    /// Creates storage on `device`, registering the allocation.
    ///
    /// # Panics
    ///
    /// Panics with a [`DeviceOom`] payload if the simulated device is
    /// over capacity (mirrors a CUDA OOM abort; catch with
    /// `std::panic::catch_unwind` and downcast to [`DeviceOom`]).
    pub fn new(data: Vec<f32>, device: Device) -> Self {
        let bytes = (data.len() * std::mem::size_of::<f32>()) as u64;
        // Zero-byte tensors (empty batches, rank-0 edge cases) hold no
        // device memory; registering them would only add noise to
        // `host_used_bytes` and the allocation counts.
        if bytes > 0 {
            if let Err(e) = tgl_device::alloc(device, bytes) {
                std::panic::panic_any(DeviceOom(e));
            }
        }
        Storage {
            data: RwLock::new(data),
            device,
            bytes,
        }
    }

    pub fn device(&self) -> Device {
        self.device
    }

    pub fn read(&self) -> tgl_runtime::sync::RwLockReadGuard<'_, Vec<f32>> {
        self.data.read()
    }

    pub fn write(&self) -> tgl_runtime::sync::RwLockWriteGuard<'_, Vec<f32>> {
        self.data.write()
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        // Release the device accounting *before* donating the buffer:
        // pool-held buffers are unaccounted, so `tgl_device::stats()`
        // reports exactly the bytes held by live tensors.
        if self.bytes > 0 {
            tgl_device::free(self.device, self.bytes);
        }
        crate::pool::give(std::mem::take(self.data.get_mut()), self.device);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_tracks_device_bytes() {
        let before = tgl_device::stats().host_used_bytes;
        let s = Storage::new(vec![0.0; 256], Device::Host);
        assert_eq!(s.read().len(), 256);
        let during = tgl_device::stats().host_used_bytes;
        assert!(during >= before + 1024);
        drop(s);
    }

    #[test]
    fn storage_read_write() {
        let s = Storage::new(vec![1.0, 2.0], Device::Host);
        s.write()[0] = 5.0;
        assert_eq!(*s.read(), vec![5.0, 2.0]);
    }
}
