//! Parameter initialization schemes.

use tgl_runtime::rng::Rng;

use crate::{Shape, Tensor};

/// Xavier/Glorot uniform init: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Standard for linear layers.
pub fn xavier_uniform(fan_out: usize, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform([fan_out, fan_in], -a, a, rng).requires_grad(true)
}

/// Kaiming/He uniform init for ReLU networks: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(fan_out: usize, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    Tensor::rand_uniform([fan_out, fan_in], -a, a, rng).requires_grad(true)
}

/// Uniform init over an arbitrary shape.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::rand_uniform(shape, lo, hi, rng).requires_grad(true)
}

/// Zero init (e.g. biases).
pub fn zeros_init(shape: impl Into<Shape>) -> Tensor {
    Tensor::zeros(shape).requires_grad(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(w.to_vec().iter().all(|v| v.abs() <= a));
        assert!(w.requires_grad_flag());
        assert_eq!(w.dims(), &[10, 20]);
    }

    #[test]
    fn kaiming_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_uniform(4, 6, &mut rng);
        let a = 1.0f32;
        assert!(w.to_vec().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn zeros_init_requires_grad() {
        let b = zeros_init([5]);
        assert!(b.requires_grad_flag());
        assert_eq!(b.to_vec(), vec![0.0; 5]);
    }
}
