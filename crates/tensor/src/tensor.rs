//! The [`Tensor`] type: a reference-counted, device-tagged, dense,
//! row-major `f32` array participating in reverse-mode autograd.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tgl_runtime::sync::Mutex;
use tgl_runtime::rng::Rng;
use tgl_device::{Device, DeviceError, PinnedPool, TransferKind};

use crate::autograd::{grad_enabled, Node};
use crate::shape::Shape;
use crate::storage::Storage;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh tensor id (creation-ordered, used by autograd).
pub(crate) fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Panic payload raised when a simulated device allocation fails.
///
/// Mirrors a CUDA out-of-memory abort. Recoverable via
/// `std::panic::catch_unwind` + `payload.downcast_ref::<DeviceOom>()`,
/// which is how the large-scale benchmark reports the paper's Table 7
/// "OOM" entries.
#[derive(Debug, Clone)]
pub struct DeviceOom(pub DeviceError);

pub(crate) struct TensorInner {
    pub(crate) id: u64,
    pub(crate) storage: Arc<Storage>,
    pub(crate) shape: Shape,
    pub(crate) requires_grad: bool,
    pub(crate) grad: Mutex<Option<Vec<f32>>>,
    pub(crate) grad_fn: Option<Arc<Node>>,
}

/// A dense `f32` tensor.
///
/// Cloning is cheap (reference-counted); clones share storage and
/// gradient state. All tensors are contiguous and row-major.
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Arc<TensorInner>,
}

impl Tensor {
    // ---------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------

    /// Creates a host tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        Tensor::from_vec_on(data, shape, Device::Host)
    }

    /// Creates a tensor from raw data on the given device tier.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` mismatches the shape, or with a
    /// [`DeviceOom`] payload if the device is over capacity.
    pub fn from_vec_on(data: Vec<f32>, shape: impl Into<Shape>, device: Device) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor::leaf(Arc::new(Storage::new(data, device)), shape, false)
    }

    /// Creates a scalar (rank-0) host tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_vec(vec![value], Shape::scalar())
    }

    /// Creates a zero-filled host tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        Tensor::zeros_on(shape, Device::Host)
    }

    /// Creates a zero-filled tensor on `device`.
    pub fn zeros_on(shape: impl Into<Shape>, device: Device) -> Tensor {
        let shape = shape.into();
        Tensor::from_vec_on(crate::pool::take_zeroed(shape.numel(), device), shape, device)
    }

    /// Creates a one-filled host tensor.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Creates a constant-filled host tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        let mut data = crate::pool::take_uninit(shape.numel(), Device::Host);
        data.fill(value);
        Tensor::from_vec(data, shape)
    }

    /// Creates a host tensor with elements drawn uniformly from
    /// `[lo, hi)` using the supplied RNG (callers control determinism).
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Creates a host tensor with standard-normal elements
    /// (Box–Muller over the supplied RNG).
    pub fn randn(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor::from_vec(data, shape)
    }

    fn leaf(storage: Arc<Storage>, shape: Shape, requires_grad: bool) -> Tensor {
        Tensor {
            inner: Arc::new(TensorInner {
                id: next_id(),
                storage,
                shape,
                requires_grad,
                grad: Mutex::new(None),
                grad_fn: None,
            }),
        }
    }

    /// Builds an op result, attaching a backward node when gradient
    /// tracking is active and any input requires grad.
    ///
    /// The backward closure receives the output gradient and must return
    /// one optional gradient buffer per input (in order, with the
    /// input's own element count).
    pub(crate) fn make_result<F>(
        data: Vec<f32>,
        shape: impl Into<Shape>,
        device: Device,
        inputs: &[Tensor],
        backward: F,
    ) -> Tensor
    where
        F: Fn(&[f32]) -> Vec<Option<Vec<f32>>> + Send + Sync + 'static,
    {
        let shape = shape.into();
        assert_eq!(data.len(), shape.numel(), "op produced wrong element count");
        let track = grad_enabled() && inputs.iter().any(|t| t.inner.requires_grad);
        let grad_fn = track.then(|| {
            // The profiler's innermost frame (if any) names the op that
            // is building this node and carries its declared backward
            // cost; consuming it here keys the backward sweep's
            // `{op}.bwd` attribution.
            let (op, bwd_flops, bwd_read, bwd_write) = tgl_obs::profile::node_info();
            Arc::new(Node {
                inputs: inputs.to_vec(),
                backward: Box::new(backward),
                op,
                bwd_flops,
                bwd_read,
                bwd_write,
            })
        });
        Tensor {
            inner: Arc::new(TensorInner {
                id: next_id(),
                storage: Arc::new(Storage::new(data, device)),
                shape,
                requires_grad: track,
                grad: Mutex::new(None),
                grad_fn,
            }),
        }
    }

    /// Defines a differentiable custom operator.
    ///
    /// `data`/`shape` give the forward result (placed on the first
    /// input's device, or host when `inputs` is empty). `backward` maps
    /// the output gradient to one optional gradient per input. This is
    /// the extension point the TGLite core crate uses to define
    /// block-structured operators (segmented softmax etc.) without
    /// forking the tensor library.
    ///
    /// # Examples
    ///
    /// ```
    /// use tgl_tensor::Tensor;
    ///
    /// // y = 2x as a custom op.
    /// let x = Tensor::from_vec(vec![1.0, 2.0], [2]).requires_grad(true);
    /// let data = x.to_vec().iter().map(|v| 2.0 * v).collect();
    /// let y = Tensor::custom_op(&[x.clone()], data, [2], |g| {
    ///     vec![Some(g.iter().map(|v| 2.0 * v).collect())]
    /// });
    /// y.sum_all().backward();
    /// assert_eq!(x.grad().unwrap(), vec![2.0, 2.0]);
    /// ```
    pub fn custom_op<F>(
        inputs: &[Tensor],
        data: Vec<f32>,
        shape: impl Into<Shape>,
        backward: F,
    ) -> Tensor
    where
        F: Fn(&[f32]) -> Vec<Option<Vec<f32>>> + Send + Sync + 'static,
    {
        let device = inputs.first().map_or(Device::Host, |t| t.device());
        Tensor::make_result(data, shape, device, inputs, backward)
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    /// Size of dimension `d`.
    pub fn dim(&self, d: usize) -> usize {
        self.inner.shape.dim(d)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.inner.shape.rank()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.inner.shape.numel()
    }

    /// The memory tier this tensor's storage lives on.
    pub fn device(&self) -> Device {
        self.inner.storage.device()
    }

    /// Whether gradients flow to/through this tensor.
    pub fn requires_grad_flag(&self) -> bool {
        self.inner.requires_grad
    }

    /// A unique, monotonically increasing identifier (creation order).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Copies the tensor's data into a `Vec`.
    ///
    /// This is a raw read used for inspection and by CPU kernels; it is
    /// *not* a metered device transfer (use [`Tensor::to`] to cross
    /// tiers).
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.storage.read().clone()
    }

    /// Returns the single element of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if `numel() != 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a one-element tensor");
        self.inner.storage.read()[0]
    }

    /// Runs `f` over an immutable view of the raw data without copying.
    pub fn with_data<R>(&self, f: impl FnOnce(&[f32]) -> R) -> R {
        f(&self.inner.storage.read())
    }

    /// Overwrites this tensor's data in place (no autograd tracking —
    /// intended for optimizer updates and state resets).
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != numel()`.
    pub fn copy_from_slice(&self, src: &[f32]) {
        let mut w = self.inner.storage.write();
        assert_eq!(src.len(), w.len(), "copy_from_slice length mismatch");
        w.copy_from_slice(src);
    }

    /// Mutates raw data in place via `f` (no autograd tracking).
    pub fn with_data_mut<R>(&self, f: impl FnOnce(&mut [f32]) -> R) -> R {
        f(&mut self.inner.storage.write())
    }

    // ---------------------------------------------------------------
    // Grad management
    // ---------------------------------------------------------------

    /// Returns a tensor sharing this storage with the requires-grad flag
    /// set. Intended for marking freshly created leaves as parameters.
    pub fn requires_grad(&self, flag: bool) -> Tensor {
        Tensor {
            inner: Arc::new(TensorInner {
                id: next_id(),
                storage: Arc::clone(&self.inner.storage),
                shape: self.inner.shape.clone(),
                requires_grad: flag,
                grad: Mutex::new(None),
                grad_fn: self.inner.grad_fn.clone(),
            }),
        }
    }

    /// Returns a leaf tensor sharing this storage, detached from the
    /// autograd graph.
    pub fn detach(&self) -> Tensor {
        Tensor::leaf(
            Arc::clone(&self.inner.storage),
            self.inner.shape.clone(),
            false,
        )
    }

    /// The accumulated gradient of a leaf tensor, if any (copied; the
    /// zero-copy [`Tensor::with_grad`] is preferred on hot paths).
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.grad.lock().clone()
    }

    /// Runs `f` over the accumulated gradient without copying it.
    pub fn with_grad<R>(&self, f: impl FnOnce(Option<&[f32]>) -> R) -> R {
        f(self.inner.grad.lock().as_deref())
    }

    /// Runs `f` over a mutable view of the accumulated gradient without
    /// copying (used by gradient clipping; no autograd tracking).
    pub fn with_grad_mut<R>(&self, f: impl FnOnce(Option<&mut [f32]>) -> R) -> R {
        f(self.inner.grad.lock().as_deref_mut())
    }

    /// Clears the accumulated gradient (the buffer is recycled).
    pub fn zero_grad(&self) {
        if let Some(g) = self.inner.grad.lock().take() {
            crate::pool::give(g, self.device());
        }
    }

    /// Adds `g` into the accumulated gradient (used by gradient
    /// clipping and custom training loops).
    ///
    /// # Panics
    ///
    /// Panics if `g.len() != numel()` when a gradient already exists.
    pub fn accumulate_grad_public(&self, g: &[f32]) {
        self.accumulate_grad(g);
    }

    /// Like [`Tensor::accumulate_grad`] but takes ownership: the buffer
    /// becomes the gradient directly (first accumulation) or is
    /// recycled after being added in.
    pub(crate) fn accumulate_grad_owned(&self, g: Vec<f32>) {
        let mut lock = self.inner.grad.lock();
        match lock.as_mut() {
            Some(acc) => {
                for (a, b) in acc.iter_mut().zip(&g) {
                    *a += b;
                }
                drop(lock);
                crate::pool::give(g, self.device());
            }
            None => *lock = Some(g),
        }
    }

    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        let mut lock = self.inner.grad.lock();
        match lock.as_mut() {
            Some(acc) => {
                for (a, b) in acc.iter_mut().zip(g) {
                    *a += b;
                }
            }
            None => {
                let mut buf = crate::pool::take_uninit(g.len(), self.device());
                buf.copy_from_slice(g);
                *lock = Some(buf);
            }
        }
    }

    // ---------------------------------------------------------------
    // Device movement (the metered boundary)
    // ---------------------------------------------------------------

    /// Moves the tensor to `device` through the pageable (slow) path,
    /// metering the simulated transfer. Same-device moves are free
    /// handle clones. The result is detached from the autograd graph.
    pub fn to(&self, device: Device) -> Tensor {
        self.transfer_to(device, false, None)
    }

    /// Moves the tensor host→accelerator through a pinned staging buffer
    /// from `pool` (the fast path used by TGLite's `preload()`).
    pub fn to_pinned(&self, device: Device, pool: &PinnedPool) -> Tensor {
        self.transfer_to(device, true, Some(pool))
    }

    fn transfer_to(&self, device: Device, pinned: bool, pool: Option<&PinnedPool>) -> Tensor {
        if device == self.device() {
            return self.clone();
        }
        let bytes = (self.numel() * std::mem::size_of::<f32>()) as u64;
        let kind = match (self.device(), device) {
            (Device::Host, Device::Accel) if pinned => TransferKind::HostToAccelPinned,
            (Device::Host, Device::Accel) => TransferKind::HostToAccelPageable,
            (Device::Accel, Device::Host) => TransferKind::AccelToHost,
            _ => unreachable!("same-device handled above"),
        };
        let op_name = match kind {
            TransferKind::HostToAccelPinned => "transfer.h2d_pinned",
            TransferKind::HostToAccelPageable => "transfer.h2d",
            TransferKind::AccelToHost => "transfer.d2h",
        };
        // Pure data movement: the staging copy reads and writes every
        // byte once; the metered device transfer itself lands on this
        // frame via `note_transfer` from tgl-device.
        let _prof = tgl_obs::profile::op(op_name)
            .io(bytes, bytes)
            .shape(&[self.dims()]);
        let data = if let (Some(pool), true) = (pool, pinned) {
            // Stage through a reusable pinned buffer: copy into the
            // pinned buffer, transfer, then recycle it.
            let mut staged = pool.acquire(self.numel());
            staged.copy_from_slice(&self.inner.storage.read());
            tgl_device::transfer(bytes, kind);
            let mut out = crate::pool::take_uninit(staged.len(), device);
            out.copy_from_slice(&staged);
            pool.release(staged);
            out
        } else {
            // Pageable path: the driver performs an extra staging copy,
            // which we also physically perform.
            let mut staged = crate::pool::take_uninit(self.numel(), device);
            staged.copy_from_slice(&self.inner.storage.read());
            tgl_device::transfer(bytes, kind);
            staged
        };
        Tensor::from_vec_on(data, self.inner.shape.clone(), device)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.inner.storage.read();
        let preview: Vec<f32> = data.iter().take(8).copied().collect();
        let ellipsis = if data.len() > 8 { ", ..." } else { "" };
        write!(
            f,
            "Tensor(shape={}, device={}, requires_grad={}, data={preview:?}{ellipsis})",
            self.inner.shape,
            self.device(),
            self.inner.requires_grad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(t.dims(), &[3]);
        assert_eq!(t.device(), Device::Host);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_shape_mismatch_panics() {
        Tensor::from_vec(vec![1.0, 2.0], [3]);
    }

    #[test]
    fn zeros_ones_full_scalar() {
        assert_eq!(Tensor::zeros([2, 2]).to_vec(), vec![0.0; 4]);
        assert_eq!(Tensor::ones([3]).to_vec(), vec![1.0; 3]);
        assert_eq!(Tensor::full([2], 7.5).to_vec(), vec![7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Tensor::rand_uniform([10], -1.0, 1.0, &mut r1);
        let b = Tensor::rand_uniform([10], -1.0, 1.0, &mut r2);
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(a.to_vec().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn randn_mean_near_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([10_000], &mut rng);
        let mean: f32 = t.to_vec().iter().sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn clone_shares_storage() {
        let a = Tensor::from_vec(vec![1.0], [1]);
        let b = a.clone();
        a.copy_from_slice(&[9.0]);
        assert_eq!(b.to_vec(), vec![9.0]);
    }

    #[test]
    fn item_panics_on_non_scalar() {
        let t = Tensor::zeros([2]);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.item())).is_err());
    }

    #[test]
    fn detach_shares_data_but_no_grad() {
        let a = Tensor::from_vec(vec![1.0], [1]).requires_grad(true);
        let d = a.detach();
        assert!(!d.requires_grad_flag());
        assert_eq!(d.to_vec(), vec![1.0]);
    }

    #[test]
    fn to_same_device_is_free() {
        let before = tgl_device::stats().transfer_count;
        let a = Tensor::zeros([4]);
        let b = a.to(Device::Host);
        assert_eq!(tgl_device::stats().transfer_count, before);
        assert_eq!(b.to_vec(), a.to_vec());
    }

    #[test]
    fn to_accel_meters_transfer() {
        let before = tgl_device::stats();
        let a = Tensor::zeros([16]);
        let b = a.to(Device::Accel);
        let after = tgl_device::stats();
        assert_eq!(b.device(), Device::Accel);
        assert!(after.h2d_bytes >= before.h2d_bytes + 64);
        assert!(after.transfer_count > before.transfer_count);
    }

    #[test]
    fn pinned_transfer_roundtrip() {
        let pool = PinnedPool::new();
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let b = a.to_pinned(Device::Accel, &pool);
        assert_eq!(b.device(), Device::Accel);
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 3.0]);
        let c = b.to(Device::Host);
        assert_eq!(c.device(), Device::Host);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn oom_panic_is_catchable() {
        tgl_device::set_capacity(Device::Accel, Some(16));
        let result = std::panic::catch_unwind(|| {
            let _t = Tensor::zeros_on([1024], Device::Accel);
        });
        tgl_device::set_capacity(Device::Accel, None);
        let payload = result.unwrap_err();
        assert!(payload.downcast_ref::<DeviceOom>().is_some());
    }

    #[test]
    fn debug_format_is_nonempty() {
        let t = Tensor::zeros([3]);
        let s = format!("{t:?}");
        assert!(s.contains("shape=[3]"));
        assert!(s.contains("host"));
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
