//! Loss functions for temporal link prediction.

use crate::Tensor;

/// Binary cross-entropy with logits, mean-reduced.
///
/// Computes `mean(max(x, 0) − x·y + ln(1 + e^{−|x|}))` — the numerically
/// stable form — with the closed-form gradient `(σ(x) − y) / N`.
/// This is the training loss of all four paper models (positive edges
/// vs sampled negative edges).
///
/// # Panics
///
/// Panics if shapes differ.
///
/// # Examples
///
/// ```
/// use tgl_tensor::{bce_with_logits, Tensor};
///
/// let logits = Tensor::from_vec(vec![10.0, -10.0], [2]);
/// let targets = Tensor::from_vec(vec![1.0, 0.0], [2]);
/// assert!(bce_with_logits(&logits, &targets).item() < 1e-3);
/// ```
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> Tensor {
    bce_impl(logits, targets, true)
}

/// Binary cross-entropy with logits, sum-reduced.
pub fn bce_with_logits_sum(logits: &Tensor, targets: &Tensor) -> Tensor {
    bce_impl(logits, targets, false)
}

fn bce_impl(logits: &Tensor, targets: &Tensor, mean: bool) -> Tensor {
    assert_eq!(
        logits.dims(),
        targets.dims(),
        "bce shape mismatch: {} vs {}",
        logits.shape(),
        targets.shape()
    );
    let x = logits.to_vec();
    let y = targets.to_vec();
    let n = x.len() as f32;
    let scale = if mean { 1.0 / n } else { 1.0 };
    let total: f32 = x
        .iter()
        .zip(&y)
        .map(|(&x, &y)| x.max(0.0) - x * y + (-(x.abs())).exp().ln_1p())
        .sum::<f32>()
        * scale;
    let (x_c, y_c) = (x, y);
    Tensor::make_result(
        vec![total],
        crate::Shape::scalar(),
        logits.device(),
        &[logits.clone(), targets.clone()],
        move |go| {
            let g = go[0] * scale;
            let dx = x_c
                .iter()
                .zip(&y_c)
                .map(|(&x, &y)| {
                    let sig = 1.0 / (1.0 + (-x).exp());
                    g * (sig - y)
                })
                .collect();
            vec![Some(dx), None]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::check_gradient;

    #[test]
    fn perfect_predictions_near_zero_loss() {
        let logits = Tensor::from_vec(vec![20.0, -20.0, 20.0], [3]);
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0], [3]);
        assert!(bce_with_logits(&logits, &targets).item() < 1e-4);
    }

    #[test]
    fn wrong_predictions_high_loss() {
        let logits = Tensor::from_vec(vec![10.0], [1]);
        let targets = Tensor::from_vec(vec![0.0], [1]);
        assert!(bce_with_logits(&logits, &targets).item() > 5.0);
    }

    #[test]
    fn uninformative_logits_give_ln2() {
        let logits = Tensor::zeros([4]);
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], [4]);
        let l = bce_with_logits(&logits, &targets).item();
        assert!((l - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn sum_is_n_times_mean() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.1], [3]);
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0], [3]);
        let m = bce_with_logits(&logits, &targets).item();
        let s = bce_with_logits_sum(&logits, &targets).item();
        assert!((s - 3.0 * m).abs() < 1e-5);
    }

    #[test]
    fn stable_for_large_magnitude_logits() {
        let logits = Tensor::from_vec(vec![500.0, -500.0], [2]);
        let targets = Tensor::from_vec(vec![0.0, 1.0], [2]);
        let l = bce_with_logits(&logits, &targets).item();
        assert!(l.is_finite());
        assert!((l - 500.0).abs() < 1.0);
    }

    #[test]
    fn gradcheck() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0], [3]).requires_grad(true);
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0], [3]);
        check_gradient(&logits, |x| bce_with_logits(x, &targets), 1e-2);
    }

    #[test]
    fn gradient_is_sigmoid_minus_target() {
        let logits = Tensor::from_vec(vec![0.0], [1]).requires_grad(true);
        let targets = Tensor::from_vec(vec![1.0], [1]);
        bce_with_logits(&logits, &targets).backward();
        // sigmoid(0) - 1 = -0.5
        assert!((logits.grad().unwrap()[0] + 0.5).abs() < 1e-6);
    }
}
