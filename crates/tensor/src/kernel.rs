//! Kernel execution contract: `exact` vs `fast`, plus SIMD dispatch.
//!
//! Every tensor kernel in this crate has a scalar reference
//! implementation whose floating-point order defines the *exact*
//! contract: results are bitwise identical across thread counts and
//! across hosts. SIMD paths (x86-64 AVX2/FMA, runtime-detected) come in
//! two flavors:
//!
//! * **Exact-safe SIMD** performs the *same* IEEE operations per output
//!   element in the same order as the scalar kernel — lane-wise
//!   `mul`/`add`/`div`/`sqrt`/`max` over independent output elements.
//!   These run in both modes and stay bitwise identical to the scalar
//!   reference.
//! * **Fast-only SIMD** reassociates (horizontal reductions, wider
//!   partial-sum fans) or contracts multiply-adds into FMAs, or swaps
//!   libm `exp` for a vectorized polynomial. These change low-order
//!   bits and run only under [`KernelMode::Fast`], with tolerances
//!   documented in `DESIGN.md` ("Kernel contract") and enforced by the
//!   parity suite.
//!
//! Both modes remain **thread-count invariant**: reduction orders are a
//! function of the problem shape only, never of which thread ran a
//! chunk. What `fast` gives up is bitwise equality with the scalar
//! reference (and therefore with non-AVX2 hosts).
//!
//! The mode defaults to `exact`, is initialized from the `TGL_KERNEL`
//! environment variable, and can be overridden at runtime with
//! [`set_mode`] (the `--kernel` CLI flag). SIMD can be forced off with
//! `TGL_SIMD=off` or [`set_simd`] — the parity suite uses this to
//! compare scalar and SIMD outputs in-process.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which floating-point contract kernels honor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Bitwise identical to the scalar reference kernels, on every
    /// host, at every thread count. The default.
    Exact,
    /// FMA contraction, wider reduction fans, and polynomial `exp`
    /// allowed; results carry documented tolerances but are still
    /// thread-count invariant.
    Fast,
}

impl KernelMode {
    /// Stable lowercase name (`exact` / `fast`) used by the CLI, the
    /// bench artifacts, and run-report metadata.
    pub fn label(self) -> &'static str {
        match self {
            KernelMode::Exact => "exact",
            KernelMode::Fast => "fast",
        }
    }
}

/// Parses a mode name as accepted by `--kernel` and `TGL_KERNEL`.
pub fn parse(s: &str) -> Option<KernelMode> {
    match s.trim().to_ascii_lowercase().as_str() {
        "exact" => Some(KernelMode::Exact),
        "fast" => Some(KernelMode::Fast),
        _ => None,
    }
}

/// 0 = uninitialized, 1 = exact, 2 = fast.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The active kernel mode (initialized from `TGL_KERNEL` on first use;
/// unknown values fall back to `exact` with a warning).
pub fn mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Exact,
        2 => KernelMode::Fast,
        _ => {
            let m = match std::env::var("TGL_KERNEL") {
                Ok(v) => parse(&v).unwrap_or_else(|| {
                    eprintln!("TGL_KERNEL={v:?} not recognized (try exact/fast); using exact");
                    KernelMode::Exact
                }),
                Err(_) => KernelMode::Exact,
            };
            // Racing initializers read the same environment.
            set_mode(m);
            m
        }
    }
}

/// Overrides the kernel mode for subsequent kernel invocations.
pub fn set_mode(m: KernelMode) {
    MODE.store(
        match m {
            KernelMode::Exact => 1,
            KernelMode::Fast => 2,
        },
        Ordering::Relaxed,
    );
}

/// True when fast-only SIMD paths may run.
pub fn fast() -> bool {
    mode() == KernelMode::Fast
}

/// 0 = uninitialized, 1 = scalar, 2 = avx2+fma.
static SIMD: AtomicU8 = AtomicU8::new(0);

fn detect_simd() -> u8 {
    if matches!(
        std::env::var("TGL_SIMD").as_deref(),
        Ok("off") | Ok("0") | Ok("scalar")
    ) {
        return 1;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            return 2;
        }
    }
    1
}

/// Whether the AVX2/FMA kernel paths are active on this host.
pub fn avx2() -> bool {
    match SIMD.load(Ordering::Relaxed) {
        0 => {
            let level = detect_simd();
            SIMD.store(level, Ordering::Relaxed);
            level == 2
        }
        level => level == 2,
    }
}

/// Forces SIMD dispatch off (`false`) or re-detects it (`true`). The
/// scalar-vs-SIMD parity suite flips this to produce both outputs in
/// one process; production code never needs it.
pub fn set_simd(enabled: bool) {
    SIMD.store(if enabled { detect_simd() } else { 1 }, Ordering::Relaxed);
}

/// Human-readable SIMD level for bench artifacts and reports.
pub fn simd_label() -> &'static str {
    if avx2() {
        "avx2-fma"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------
// Shared AVX2 primitives
// ---------------------------------------------------------------------
//
// The `*_avx2` functions are `#[target_feature]`-gated and unsafe to
// call; the safe `*_dispatch` wrappers check [`avx2`] and fall back to
// the scalar loop. Exact-safe primitives (`add_assign`, `add_div`, the
// non-FMA `axpy`) perform identical lane-wise IEEE arithmetic to their
// scalar fallbacks and may run in either mode; `FMA=true` instantiations
// and the reduction/exp helpers are fast-only.

/// `y[i] += x[i]` — exact-safe in both modes.
pub(crate) fn add_assign_dispatch(y: &mut [f32], x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: avx2() verified the CPU supports AVX2+FMA.
        unsafe { add_assign_avx2(y, x) };
        return;
    }
    for (a, b) in y.iter_mut().zip(x) {
        *a += b;
    }
}

/// `y[i] += x[i] / d` — exact-safe (lane-wise IEEE div then add, the
/// same two roundings as the scalar loop).
pub(crate) fn add_div_dispatch(y: &mut [f32], x: &[f32], d: f32) {
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: avx2() verified the CPU supports AVX2+FMA.
        unsafe { add_div_avx2(y, x, d) };
        return;
    }
    for (a, b) in y.iter_mut().zip(x) {
        *a += b / d;
    }
}

/// `y[i] += a * x[i]`. With `fma=false` this is exact-safe (lane-wise
/// mul then add); with `fma=true` the multiply-add contracts, which is
/// fast-only.
pub(crate) fn axpy_dispatch(y: &mut [f32], x: &[f32], a: f32, fma: bool) {
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: avx2() verified the CPU supports AVX2+FMA.
        unsafe {
            if fma {
                axpy_avx2::<true>(y, x, a);
            } else {
                axpy_avx2::<false>(y, x, a);
            }
        }
        return;
    }
    let _ = fma; // scalar fallback has nothing to contract
    for (o, &v) in y.iter_mut().zip(x) {
        *o += a * v;
    }
}

/// `y[i] *= s` — exact-safe (one lane-wise IEEE multiply).
pub(crate) fn scale_dispatch(y: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: avx2() verified the CPU supports AVX2+FMA.
        unsafe { scale_avx2(y, s) };
        return;
    }
    for v in y.iter_mut() {
        *v *= s;
    }
}

/// `y[i] += s * a[i] * b[i]` with the scalar's left-associated product
/// order. With `fma=false` exact-safe; with `fma=true` the final
/// multiply-add contracts (fast-only).
pub(crate) fn addcmul_dispatch(y: &mut [f32], a: &[f32], b: &[f32], s: f32, fma: bool) {
    #[cfg(target_arch = "x86_64")]
    if avx2() {
        // SAFETY: avx2() verified the CPU supports AVX2+FMA.
        unsafe {
            if fma {
                addcmul_avx2::<true>(y, a, b, s);
            } else {
                addcmul_avx2::<false>(y, a, b, s);
            }
        }
        return;
    }
    let _ = fma;
    for i in 0..y.len() {
        y[i] += s * a[i] * b[i];
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    //! Raw AVX2/FMA building blocks shared by the op kernels.
    use std::arch::x86_64::*;

    /// Horizontal sum of all 8 lanes (fast-only: reassociates).
    ///
    /// # Safety
    ///
    /// Requires AVX2 support (checked by [`super::avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// Horizontal max of all 8 lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2 support (checked by [`super::avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn hmax(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_max_ps(lo, hi);
        let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// Vectorized `exp` (Cephes-style degree-5 polynomial over the
    /// range-reduced argument, then exponent reassembly). Accurate to a
    /// few ulp over the clamped range; fast-only.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA support (checked by [`super::avx2`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn exp256(x: __m256) -> __m256 {
        // Clamp: below -87.3 the result underflows toward zero (we
        // return exactly 2^-126-ish, close enough for softmax weights);
        // above 88.7 it would overflow to inf.
        let x = _mm256_min_ps(x, _mm256_set1_ps(88.376_26));
        let x = _mm256_max_ps(x, _mm256_set1_ps(-87.336_54));
        // n = round(x / ln 2)
        let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
        let n = _mm256_round_ps(
            _mm256_mul_ps(x, log2e),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        // r = x - n·ln2 in two pieces for extra bits.
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(0.693_359_4), x);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(-2.121_944_4e-4), r);
        // exp(r) ≈ 1 + r + r²·p(r)
        let mut p = _mm256_set1_ps(1.987_569_1e-4);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.398_199_9e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.333_452e-3));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.166_579_6e-2));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.666_666_6e-1));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0e-1));
        let r2 = _mm256_mul_ps(r, r);
        let y = _mm256_fmadd_ps(p, r2, _mm256_add_ps(r, _mm256_set1_ps(1.0)));
        // Scale by 2^n through the exponent field.
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(0x7f)),
            23,
        ));
        _mm256_mul_ps(y, pow2n)
    }

    /// 8-lane FMA dot product with horizontal sum (fast-only): the
    /// reduction fan depends only on `a.len()`, so it is thread-count
    /// invariant but not bitwise equal to the scalar 4-lane reference.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA support (checked by [`super::avx2`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for q in 0..chunks {
            let av = _mm256_loadu_ps(a.as_ptr().add(q * 8));
            let bv = _mm256_loadu_ps(b.as_ptr().add(q * 8));
            acc = _mm256_fmadd_ps(av, bv, acc);
        }
        let mut tail = 0.0f32;
        for p in chunks * 8..n {
            tail += a.get_unchecked(p) * b.get_unchecked(p);
        }
        hsum(acc) + tail
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn add_assign_avx2(y: &mut [f32], x: &[f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let chunks = n / 8;
    for q in 0..chunks {
        let p = q * 8;
        let v = _mm256_add_ps(
            _mm256_loadu_ps(y.as_ptr().add(p)),
            _mm256_loadu_ps(x.as_ptr().add(p)),
        );
        _mm256_storeu_ps(y.as_mut_ptr().add(p), v);
    }
    for p in chunks * 8..n {
        *y.get_unchecked_mut(p) += x.get_unchecked(p);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn add_div_avx2(y: &mut [f32], x: &[f32], d: f32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let chunks = n / 8;
    let dv = _mm256_set1_ps(d);
    for q in 0..chunks {
        let p = q * 8;
        let v = _mm256_add_ps(
            _mm256_loadu_ps(y.as_ptr().add(p)),
            _mm256_div_ps(_mm256_loadu_ps(x.as_ptr().add(p)), dv),
        );
        _mm256_storeu_ps(y.as_mut_ptr().add(p), v);
    }
    for p in chunks * 8..n {
        *y.get_unchecked_mut(p) += x.get_unchecked(p) / d;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn scale_avx2(y: &mut [f32], s: f32) {
    use std::arch::x86_64::*;
    let n = y.len();
    let chunks = n / 8;
    let sv = _mm256_set1_ps(s);
    for q in 0..chunks {
        let p = q * 8;
        let v = _mm256_mul_ps(_mm256_loadu_ps(y.as_ptr().add(p)), sv);
        _mm256_storeu_ps(y.as_mut_ptr().add(p), v);
    }
    for p in chunks * 8..n {
        *y.get_unchecked_mut(p) *= s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn addcmul_avx2<const FMA: bool>(y: &mut [f32], a: &[f32], b: &[f32], s: f32) {
    use std::arch::x86_64::*;
    debug_assert!(a.len() >= y.len() && b.len() >= y.len());
    let n = y.len();
    let chunks = n / 8;
    let sv = _mm256_set1_ps(s);
    for q in 0..chunks {
        let p = q * 8;
        // (s * a) * b, left-associated like the scalar loop.
        let sa = _mm256_mul_ps(sv, _mm256_loadu_ps(a.as_ptr().add(p)));
        let bv = _mm256_loadu_ps(b.as_ptr().add(p));
        let yv = _mm256_loadu_ps(y.as_ptr().add(p));
        let v = if FMA {
            _mm256_fmadd_ps(sa, bv, yv)
        } else {
            _mm256_add_ps(yv, _mm256_mul_ps(sa, bv))
        };
        _mm256_storeu_ps(y.as_mut_ptr().add(p), v);
    }
    // Tail rounding must match the vector body per element: if a
    // caller ever hands this a chunk of a range-partitioned buffer,
    // tail membership depends on the split, and a body/tail rounding
    // difference would break thread-count invariance in fast mode.
    for p in chunks * 8..n {
        let t = s * a.get_unchecked(p);
        *y.get_unchecked_mut(p) = if FMA {
            t.mul_add(*b.get_unchecked(p), *y.get_unchecked(p))
        } else {
            *y.get_unchecked(p) + t * b.get_unchecked(p)
        };
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2<const FMA: bool>(y: &mut [f32], x: &[f32], a: f32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let chunks = n / 8;
    let av = _mm256_set1_ps(a);
    for q in 0..chunks {
        let p = q * 8;
        let xv = _mm256_loadu_ps(x.as_ptr().add(p));
        let yv = _mm256_loadu_ps(y.as_ptr().add(p));
        let v = if FMA {
            _mm256_fmadd_ps(av, xv, yv)
        } else {
            _mm256_add_ps(yv, _mm256_mul_ps(av, xv))
        };
        _mm256_storeu_ps(y.as_mut_ptr().add(p), v);
    }
    // Same body/tail rounding rule as `addcmul_avx2`.
    for p in chunks * 8..n {
        *y.get_unchecked_mut(p) = if FMA {
            a.mul_add(*x.get_unchecked(p), *y.get_unchecked(p))
        } else {
            *y.get_unchecked(p) + a * x.get_unchecked(p)
        };
    }
}

/// Serializes tests (crate-wide) that flip or depend on the global
/// mode/SIMD switches.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_serial as serial;

    #[test]
    fn mode_parse_round_trips() {
        assert_eq!(parse("exact"), Some(KernelMode::Exact));
        assert_eq!(parse("FAST"), Some(KernelMode::Fast));
        assert_eq!(parse(" fast "), Some(KernelMode::Fast));
        assert_eq!(parse("loose"), None);
        assert_eq!(KernelMode::Exact.label(), "exact");
        assert_eq!(KernelMode::Fast.label(), "fast");
    }

    #[test]
    fn set_mode_overrides() {
        let _guard = serial();
        let before = mode();
        set_mode(KernelMode::Fast);
        assert!(fast());
        set_mode(KernelMode::Exact);
        assert!(!fast());
        set_mode(before);
    }

    #[test]
    fn simd_force_off_and_redetect() {
        let _guard = serial();
        set_simd(false);
        assert!(!avx2());
        assert_eq!(simd_label(), "scalar");
        set_simd(true);
        // Whatever the host supports, the label is consistent with it.
        assert_eq!(simd_label(), if avx2() { "avx2-fma" } else { "scalar" });
    }

    #[test]
    fn exact_safe_primitives_match_scalar_bitwise() {
        let _guard = serial();
        let mk = |salt: u32| -> Vec<f32> {
            (0..37u32)
                .map(|i| ((i * 31 + salt) % 97) as f32 * 0.037 - 1.5)
                .collect()
        };
        for enabled in [false, true] {
            set_simd(enabled);
            let x = mk(5);
            let mut add = mk(9);
            add_assign_dispatch(&mut add, &x);
            let mut div = mk(9);
            add_div_dispatch(&mut div, &x, 3.0);
            let mut ax = mk(9);
            axpy_dispatch(&mut ax, &x, -0.75, false);
            let mut sc = mk(9);
            scale_dispatch(&mut sc, 1.25);
            let z = mk(13);
            let mut acm = mk(9);
            addcmul_dispatch(&mut acm, &x, &z, 0.5, false);
            let want_add: Vec<f32> = mk(9).iter().zip(&x).map(|(a, b)| a + b).collect();
            let want_div: Vec<f32> = mk(9).iter().zip(&x).map(|(a, b)| a + b / 3.0).collect();
            let want_ax: Vec<f32> = mk(9).iter().zip(&x).map(|(a, b)| a + -0.75 * b).collect();
            let want_sc: Vec<f32> = mk(9).iter().map(|a| a * 1.25).collect();
            let want_acm: Vec<f32> = mk(9)
                .iter()
                .zip(x.iter().zip(&z))
                .map(|(a, (b, c))| a + 0.5 * b * c)
                .collect();
            assert_eq!(add, want_add, "add_assign simd={enabled}");
            assert_eq!(div, want_div, "add_div simd={enabled}");
            assert_eq!(ax, want_ax, "axpy simd={enabled}");
            assert_eq!(sc, want_sc, "scale simd={enabled}");
            assert_eq!(acm, want_acm, "addcmul simd={enabled}");
        }
        set_simd(true);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn exp256_close_to_libm() {
        let _guard = serial();
        if !avx2() {
            return;
        }
        let xs: Vec<f32> = (-80..=8).map(|i| i as f32 * 1.09).collect();
        for chunk in xs.chunks(8) {
            let mut buf = [0.0f32; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            let mut out = [0.0f32; 8];
            unsafe {
                let v = x86::exp256(std::arch::x86_64::_mm256_loadu_ps(buf.as_ptr()));
                std::arch::x86_64::_mm256_storeu_ps(out.as_mut_ptr(), v);
            }
            for (i, &x) in chunk.iter().enumerate() {
                let want = x.exp();
                let got = out[i];
                let rel = if want > 1e-30 { (got - want).abs() / want } else { (got - want).abs() };
                assert!(rel < 1e-5, "exp({x}) = {got}, want {want} (rel {rel})");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn dot_fast_close_to_scalar() {
        let _guard = serial();
        if !avx2() {
            return;
        }
        let a: Vec<f32> = (0..531).map(|i| ((i * 37) % 101) as f32 * 0.02 - 1.0).collect();
        let b: Vec<f32> = (0..531).map(|i| ((i * 53) % 97) as f32 * 0.02 - 1.0).collect();
        let want: f64 = a.iter().zip(&b).map(|(x, y)| (*x as f64) * (*y as f64)).sum();
        let got = unsafe { x86::dot_fast(&a, &b) };
        assert!(
            (got as f64 - want).abs() < 1e-3 * want.abs().max(1.0),
            "dot {got} vs {want}"
        );
    }
}
