//! Gated recurrent unit cell (TGN's node-memory update function).

use tgl_runtime::rng::Rng;

use crate::init::{xavier_uniform, zeros_init};
use crate::nn::Module;
use crate::ops::cat;
use crate::Tensor;

/// A GRU cell: `h' = GRUCell(x, h)`.
///
/// Follows the standard formulation:
/// `r = σ(W_ir x + b_ir + W_hr h + b_hr)`,
/// `z = σ(W_iz x + b_iz + W_hz h + b_hz)`,
/// `n = tanh(W_in x + b_in + r ⊙ (W_hn h + b_hn))`,
/// `h' = (1 − z) ⊙ n + z ⊙ h`.
#[derive(Debug, Clone)]
pub struct GruCell {
    // Stacked [3*hidden, in] and [3*hidden, hidden] weights (r, z, n).
    w_ih: Tensor,
    w_hh: Tensor,
    b_ih: Tensor,
    b_hh: Tensor,
    hidden: usize,
}

impl GruCell {
    /// Creates a cell mapping `input_size` inputs to `hidden_size`
    /// state.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut impl Rng) -> GruCell {
        GruCell {
            w_ih: xavier_uniform(3 * hidden_size, input_size, rng),
            w_hh: xavier_uniform(3 * hidden_size, hidden_size, rng),
            b_ih: zeros_init([3 * hidden_size]),
            b_hh: zeros_init([3 * hidden_size]),
            hidden: hidden_size,
        }
    }

    /// Computes the next hidden state for a batch:
    /// `x: [N, input]`, `h: [N, hidden]` → `[N, hidden]`.
    pub fn forward(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let n_rows = x.dim(0);
        assert_eq!(h.dims(), &[n_rows, self.hidden], "hidden state shape mismatch");
        let gi = x.matmul(&self.w_ih.transpose()).add(&self.b_ih); // [N, 3H]
        let gh = h.matmul(&self.w_hh.transpose()).add(&self.b_hh); // [N, 3H]
        let hsz = self.hidden;
        let split = |t: &Tensor, k: usize| -> Tensor {
            // Column slice [N, 3H] -> [N, H] for gate k: viewing each
            // 3H row as 3 consecutive H rows, gate k of row r is
            // sub-row r*3 + k.
            t.reshape([n_rows * 3, hsz])
                .index_select(
                    &(0..n_rows)
                        .map(|r| r * 3 + k)
                        .collect::<Vec<_>>(),
                )
                .reshape([n_rows, hsz])
        };
        let (i_r, i_z, i_n) = (split(&gi, 0), split(&gi, 1), split(&gi, 2));
        let (h_r, h_z, h_n) = (split(&gh, 0), split(&gh, 1), split(&gh, 2));
        let r = i_r.add(&h_r).sigmoid();
        let z = i_z.add(&h_z).sigmoid();
        let n = i_n.add(&r.mul(&h_n)).tanh();
        // h' = (1 - z) * n + z * h, fused as n + z ⊙ (h − n): two ops
        // and one output buffer instead of the five-op chain.
        n.addcmul(&z, &h.sub(&n), 1.0)
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Returns a copy of this cell with parameters on `device`.
    pub fn to_device(&self, device: tgl_device::Device) -> GruCell {
        GruCell {
            w_ih: self.w_ih.to(device).requires_grad(true),
            w_hh: self.w_hh.to(device).requires_grad(true),
            b_ih: self.b_ih.to(device).requires_grad(true),
            b_hh: self.b_hh.to(device).requires_grad(true),
            hidden: self.hidden,
        }
    }
}

impl Module for GruCell {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.w_ih.clone(),
            self.w_hh.clone(),
            self.b_ih.clone(),
            self.b_hh.clone(),
        ]
    }
}

/// Convenience: concatenates inputs then applies the cell (the paper's
/// TGN concatenates mail and time features before its GRU).
pub fn gru_forward_cat(cell: &GruCell, parts: &[Tensor], h: &Tensor) -> Tensor {
    cell.forward(&cat(parts, 1), h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn output_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let cell = GruCell::new(3, 4, &mut rng);
        let x = Tensor::randn([5, 3], &mut rng);
        let h = Tensor::zeros([5, 4]);
        let h2 = cell.forward(&x, &h);
        assert_eq!(h2.dims(), &[5, 4]);
        // GRU output is a convex combination of tanh(...) and h, so
        // bounded by (-1, 1) when h is zero.
        assert!(h2.to_vec().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_state_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let cell = GruCell::new(2, 2, &mut rng);
        let h = cell.forward(&Tensor::zeros([1, 2]), &Tensor::zeros([1, 2]));
        assert!(h.to_vec().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let cell = GruCell::new(2, 3, &mut rng);
        let x = Tensor::randn([4, 2], &mut rng);
        let h = Tensor::randn([4, 3], &mut rng);
        cell.forward(&x, &h).sum_all().backward();
        for p in cell.parameters() {
            assert!(p.grad().is_some(), "missing grad");
        }
    }

    #[test]
    fn state_carries_information() {
        // Different initial states must give different outputs.
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(2, 2, &mut rng);
        let x = Tensor::ones([1, 2]);
        let a = cell.forward(&x, &Tensor::zeros([1, 2])).to_vec();
        let b = cell.forward(&x, &Tensor::ones([1, 2])).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn gru_forward_cat_matches_manual_cat() {
        let mut rng = StdRng::seed_from_u64(4);
        let cell = GruCell::new(4, 2, &mut rng);
        let a = Tensor::randn([2, 3], &mut rng);
        let b = Tensor::randn([2, 1], &mut rng);
        let h = Tensor::zeros([2, 2]);
        let via_helper = gru_forward_cat(&cell, &[a.clone(), b.clone()], &h);
        let manual = cell.forward(&cat(&[a, b], 1), &h);
        assert_eq!(via_helper.to_vec(), manual.to_vec());
    }
}
