//! Neural-network building blocks.
//!
//! These mirror the PyTorch modules used by the paper's model
//! implementations: `nn.Linear`, `nn.GRUCell` (TGN's memory updater),
//! `nn.RNNCell` (JODIE's memory updater), and small feed-forward MLPs
//! (the FFN in temporal attention and the edge predictor).

mod dropout;
mod gru;
mod linear;
mod mlp;
mod norm;
mod rnn;

pub use dropout::Dropout;
pub use gru::{gru_forward_cat, GruCell};
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
pub use rnn::RnnCell;

use crate::Tensor;

/// A trainable component exposing its parameters to optimizers.
pub trait Module {
    /// All trainable parameter tensors (leaves with `requires_grad`).
    fn parameters(&self) -> Vec<Tensor>;

    /// Stable `(name, tensor)` pairs for every parameter, in the same
    /// order as [`parameters`](Module::parameters). The default names
    /// positionally (`param0`, `param1`, ...); structured modules
    /// override to thread real names (`weight`, `fc1.bias`) through so
    /// introspection can attribute stats to a specific layer.
    fn named_parameters(&self) -> Vec<(String, Tensor)> {
        self.parameters()
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("param{i}"), p))
            .collect()
    }

    /// Total scalar parameter count.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Tensor::numel).sum()
    }
}

/// Reports a post-ReLU activation's zero fraction to the insight layer
/// (no-op — one relaxed load — unless an insight bag is active on this
/// thread *and* an activation scope is open). Exact zeros are what ReLU
/// produces for clamped inputs, so `v == 0.0` is the dead-unit test.
pub fn observe_relu_zeros(t: &Tensor) {
    if !tgl_obs::insight::active() {
        return;
    }
    let zeros = t.with_data(|d| d.iter().filter(|&&v| v == 0.0).count());
    tgl_obs::insight::observe_activation(zeros as u64, t.numel() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn num_parameters_counts_scalars() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(3, 2, &mut rng);
        assert_eq!(lin.num_parameters(), 3 * 2 + 2);
    }
}
