//! Neural-network building blocks.
//!
//! These mirror the PyTorch modules used by the paper's model
//! implementations: `nn.Linear`, `nn.GRUCell` (TGN's memory updater),
//! `nn.RNNCell` (JODIE's memory updater), and small feed-forward MLPs
//! (the FFN in temporal attention and the edge predictor).

mod dropout;
mod gru;
mod linear;
mod mlp;
mod norm;
mod rnn;

pub use dropout::Dropout;
pub use gru::{gru_forward_cat, GruCell};
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
pub use rnn::RnnCell;

use crate::Tensor;

/// A trainable component exposing its parameters to optimizers.
pub trait Module {
    /// All trainable parameter tensors (leaves with `requires_grad`).
    fn parameters(&self) -> Vec<Tensor>;

    /// Total scalar parameter count.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Tensor::numel).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn num_parameters_counts_scalars() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(3, 2, &mut rng);
        assert_eq!(lin.num_parameters(), 3 * 2 + 2);
    }
}
