//! Layer normalization.

use crate::nn::Module;
use crate::Tensor;

/// Layer normalization over the last dimension with learnable scale
/// and shift (used by transformer-style TGNN variants).
///
/// `y = (x − μ) / √(σ² + ε) · γ + β`, per row.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Creates a layer-norm over `dim`-wide rows (γ=1, β=0).
    pub fn new(dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: Tensor::ones([dim]).requires_grad(true),
            beta: Tensor::zeros([dim]).requires_grad(true),
            eps: 1e-5,
            dim,
        }
    }

    /// Moves parameters to `device`.
    pub fn to_device(&self, device: tgl_device::Device) -> LayerNorm {
        LayerNorm {
            gamma: self.gamma.to(device).requires_grad(true),
            beta: self.beta.to(device).requires_grad(true),
            eps: self.eps,
            dim: self.dim,
        }
    }

    /// Normalizes `x: [N, dim]` per row.
    ///
    /// # Panics
    ///
    /// Panics if the last dimension is not `dim`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.dim(x.rank() - 1),
            self.dim,
            "layer-norm width mismatch"
        );
        let n = x.dim(0);
        let mean = x.mean_dim(1).reshape([n, 1]);
        let centered = x.sub(&mean);
        let var = centered.mul(&centered).mean_dim(1).reshape([n, 1]);
        let normed = centered.div(&var.add_scalar(self.eps).sqrt());
        normed.mul(&self.gamma).add(&self.beta)
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_standardized() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], [2, 4]);
        let y = ln.forward(&x);
        let v = y.to_vec();
        for row in v.chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row var {var}");
        }
    }

    #[test]
    fn scale_shift_applied() {
        let ln = LayerNorm::new(2);
        ln.gamma.copy_from_slice(&[2.0, 2.0]);
        ln.beta.copy_from_slice(&[5.0, 5.0]);
        let y = ln.forward(&Tensor::from_vec(vec![-1.0, 1.0], [1, 2]));
        let v = y.to_vec();
        assert!((v[0] - (5.0 - 2.0)).abs() < 1e-2, "{v:?}");
        assert!((v[1] - (5.0 + 2.0)).abs() < 1e-2, "{v:?}");
    }

    #[test]
    fn grads_reach_gamma_beta() {
        let ln = LayerNorm::new(3);
        let mut rng = <tgl_runtime::rng::StdRng as tgl_runtime::rng::SeedableRng>::seed_from_u64(0);
        let x = Tensor::randn([4, 3], &mut rng).requires_grad(true);
        ln.forward(&x).sum_all().backward();
        assert!(ln.gamma.grad().is_some());
        assert!(ln.beta.grad().is_some());
        assert!(x.grad().is_some());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        LayerNorm::new(3).forward(&Tensor::zeros([2, 4]));
    }
}
