//! Vanilla RNN cell (JODIE's node-memory update function).

use tgl_runtime::rng::Rng;

use crate::init::{xavier_uniform, zeros_init};
use crate::nn::Module;
use crate::Tensor;

/// `h' = tanh(W_ih x + b_ih + W_hh h + b_hh)`.
#[derive(Debug, Clone)]
pub struct RnnCell {
    w_ih: Tensor,
    w_hh: Tensor,
    b_ih: Tensor,
    b_hh: Tensor,
    hidden: usize,
}

impl RnnCell {
    /// Creates a cell mapping `input_size` inputs to `hidden_size`
    /// state.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut impl Rng) -> RnnCell {
        RnnCell {
            w_ih: xavier_uniform(hidden_size, input_size, rng),
            w_hh: xavier_uniform(hidden_size, hidden_size, rng),
            b_ih: zeros_init([hidden_size]),
            b_hh: zeros_init([hidden_size]),
            hidden: hidden_size,
        }
    }

    /// Computes the next hidden state: `x: [N, in]`, `h: [N, hidden]`.
    pub fn forward(&self, x: &Tensor, h: &Tensor) -> Tensor {
        assert_eq!(h.dim(1), self.hidden, "hidden state width mismatch");
        x.matmul(&self.w_ih.transpose())
            .add(&self.b_ih)
            .add(&h.matmul(&self.w_hh.transpose()).add(&self.b_hh))
            .tanh()
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Returns a copy of this cell with parameters on `device`.
    pub fn to_device(&self, device: tgl_device::Device) -> RnnCell {
        RnnCell {
            w_ih: self.w_ih.to(device).requires_grad(true),
            w_hh: self.w_hh.to(device).requires_grad(true),
            b_ih: self.b_ih.to(device).requires_grad(true),
            b_hh: self.b_hh.to(device).requires_grad(true),
            hidden: self.hidden,
        }
    }
}

impl Module for RnnCell {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.w_ih.clone(),
            self.w_hh.clone(),
            self.b_ih.clone(),
            self.b_hh.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn output_bounded_by_tanh() {
        let mut rng = StdRng::seed_from_u64(0);
        let cell = RnnCell::new(3, 2, &mut rng);
        let x = Tensor::randn([4, 3], &mut rng).mul_scalar(10.0);
        let h = Tensor::zeros([4, 2]);
        let out = cell.forward(&x, &h);
        assert_eq!(out.dims(), &[4, 2]);
        assert!(out.to_vec().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn grads_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let cell = RnnCell::new(2, 2, &mut rng);
        let x = Tensor::randn([3, 2], &mut rng);
        let h = Tensor::randn([3, 2], &mut rng);
        cell.forward(&x, &h).sum_all().backward();
        assert_eq!(cell.parameters().len(), 4);
        for p in cell.parameters() {
            assert!(p.grad().is_some());
        }
    }
}
