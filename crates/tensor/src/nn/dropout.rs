//! Inverted dropout.

use tgl_runtime::sync::Mutex;
use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::{Rng, SeedableRng};

use crate::Tensor;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference
/// (identity) needs no rescaling. The paper's models default to
/// dropout 0.1 in TGL's configs.
///
/// The mask RNG is owned and seeded, so training runs remain
/// reproducible.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: Mutex<StdRng>,
}

impl Dropout {
    /// Creates dropout with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            training: true,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Switches train/eval mode (eval = identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Applies dropout. Differentiable: the gradient uses the same
    /// mask.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = {
            let mut rng = self.rng.lock();
            (0..x.numel())
                .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
                .collect()
        };
        let mask_t = Tensor::from_vec_on(mask, x.shape().clone(), x.device());
        x.mul(&mask_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(d.forward(&x).to_vec(), x.to_vec());
    }

    #[test]
    fn p_zero_is_identity() {
        let d = Dropout::new(0.0, 0);
        let x = Tensor::ones([4]);
        assert_eq!(d.forward(&x).to_vec(), vec![1.0; 4]);
    }

    #[test]
    fn training_zeroes_and_scales() {
        let d = Dropout::new(0.5, 7);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x).to_vec();
        let zeros = y.iter().filter(|&&v| v == 0.0).count();
        let kept = y.iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + kept, 10_000, "values must be 0 or 1/keep");
        assert!((4_000..6_000).contains(&zeros), "drop rate off: {zeros}");
        // Expectation preserved.
        let mean: f32 = y.iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gradient_respects_mask() {
        let d = Dropout::new(0.5, 1);
        let x = Tensor::ones([100]).requires_grad(true);
        let y = d.forward(&x);
        let out = y.to_vec();
        y.sum_all().backward();
        let g = x.grad().unwrap();
        for (gi, yi) in g.iter().zip(&out) {
            assert_eq!(*gi, *yi, "grad must equal mask scale");
        }
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn invalid_p_panics() {
        Dropout::new(1.0, 0);
    }
}
