//! Small feed-forward networks (attention FFNs, edge predictors).

use tgl_runtime::rng::Rng;

use crate::nn::{Linear, Module};
use crate::Tensor;

/// A two-layer perceptron: `Linear → ReLU → Linear`.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Creates an MLP `in → hidden → out`.
    pub fn new(in_features: usize, hidden: usize, out_features: usize, rng: &mut impl Rng) -> Mlp {
        Mlp {
            fc1: Linear::new(in_features, hidden, rng),
            fc2: Linear::new(hidden, out_features, rng),
        }
    }

    /// Applies the network to `x: [N, in]` (hidden layer uses the fused
    /// add+ReLU kernel).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.fc2.forward(&self.fc1.forward_relu(x))
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.fc2.out_features()
    }

    /// Returns a copy of this network with parameters on `device`.
    pub fn to_device(&self, device: tgl_device::Device) -> Mlp {
        Mlp {
            fc1: self.fc1.to_device(device),
            fc2: self.fc2.to_device(device),
        }
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.fc1.parameters();
        p.extend(self.fc2.parameters());
        p
    }

    fn named_parameters(&self) -> Vec<(String, Tensor)> {
        let mut p: Vec<(String, Tensor)> = self
            .fc1
            .named_parameters()
            .into_iter()
            .map(|(n, t)| (format!("fc1.{n}"), t))
            .collect();
        p.extend(
            self.fc2
                .named_parameters()
                .into_iter()
                .map(|(n, t)| (format!("fc2.{n}"), t)),
        );
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(4, 8, 2, &mut rng);
        let y = mlp.forward(&Tensor::zeros([3, 4]));
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(mlp.num_parameters(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn grads_flow_through_relu() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(2, 4, 1, &mut rng);
        let x = Tensor::ones([5, 2]);
        mlp.forward(&x).sum_all().backward();
        assert!(mlp.parameters().iter().any(|p| p
            .grad()
            .map(|g| g.iter().any(|v| *v != 0.0))
            .unwrap_or(false)));
    }
}
