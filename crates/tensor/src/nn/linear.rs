//! Fully-connected affine layer.

use tgl_runtime::rng::Rng;

use crate::init::{xavier_uniform, zeros_init};
use crate::nn::Module;
use crate::Tensor;

/// `y = x · Wᵀ + b` with `W: [out, in]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weight and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Linear {
        Linear {
            weight: xavier_uniform(out_features, in_features, rng),
            bias: Some(zeros_init([out_features])),
        }
    }

    /// Creates a layer without a bias term.
    pub fn new_no_bias(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Linear {
        Linear {
            weight: xavier_uniform(out_features, in_features, rng),
            bias: None,
        }
    }

    /// Applies the layer to `x: [N, in]`, producing `[N, out]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2 with `in` columns.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let y = x.matmul(&self.weight.transpose());
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Applies the layer followed by ReLU in one fused kernel
    /// (`relu(x·Wᵀ + b)`), saving the intermediate sum tensor that
    /// `forward(x).relu()` would allocate and capture for backward.
    pub fn forward_relu(&self, x: &Tensor) -> Tensor {
        let y = x.matmul(&self.weight.transpose());
        let out = match &self.bias {
            Some(b) => y.add_relu(b),
            None => y.relu(),
        };
        crate::nn::observe_relu_zeros(&out);
        out
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dim(1)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dim(0)
    }

    /// The weight tensor (`[out, in]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Returns a copy of this layer with parameters on `device`
    /// (a one-time metered transfer; the new parameters are fresh
    /// trainable leaves).
    pub fn to_device(&self, device: tgl_device::Device) -> Linear {
        Linear {
            weight: self.weight.to(device).requires_grad(true),
            bias: self.bias.as_ref().map(|b| b.to(device).requires_grad(true)),
        }
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }

    fn named_parameters(&self) -> Vec<(String, Tensor)> {
        let mut p = vec![("weight".to_string(), self.weight.clone())];
        if let Some(b) = &self.bias {
            p.push(("bias".to_string(), b.clone()));
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_runtime::rng::StdRng;
    use tgl_runtime::rng::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(4, 3, &mut rng);
        let x = Tensor::zeros([5, 4]);
        let y = lin.forward(&x);
        assert_eq!(y.dims(), &[5, 3]);
        // zero input + zero bias = zero output
        assert_eq!(y.to_vec(), vec![0.0; 15]);
    }

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(2, 1, &mut rng);
        lin.weight.copy_from_slice(&[2.0, 3.0]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 0.5, 2.0], [2, 2]);
        let y = lin.forward(&x);
        assert_eq!(y.to_vec(), vec![5.0, 7.0]);
    }

    #[test]
    fn gradient_reaches_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones([3, 2]);
        lin.forward(&x).sum_all().backward();
        for p in lin.parameters() {
            let g = p.grad().expect("param should have grad");
            assert!(g.iter().any(|v| *v != 0.0), "grad all zero for {p:?}");
        }
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new_no_bias(3, 2, &mut rng);
        assert_eq!(lin.parameters().len(), 1);
        assert_eq!(lin.in_features(), 3);
        assert_eq!(lin.out_features(), 2);
    }
}
