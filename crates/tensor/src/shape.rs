//! Tensor shapes and broadcasting rules.

use std::fmt;

/// The dimensions of a tensor, row-major.
///
/// A rank-0 shape (`[]`) denotes a scalar with one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Returns a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (s, d) in strides.iter_mut().zip(self.0.iter()).rev() {
            *s = acc;
            acc *= d;
        }
        strides
    }

    /// Computes the broadcast shape of `self` and `other` following
    /// NumPy right-aligned rules, or `None` if they are incompatible.
    pub fn broadcast_with(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for (i, o) in out.iter_mut().enumerate() {
            let a = dim_from_right(&self.0, rank - 1 - i);
            let b = dim_from_right(&other.0, rank - 1 - i);
            *o = match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => return None,
            };
        }
        Some(Shape(out))
    }

    /// Returns the shape with dimension `d` removed (for reductions
    /// without keepdim). Removing the only dimension yields a scalar.
    pub fn without_dim(&self, d: usize) -> Shape {
        let mut dims = self.0.clone();
        dims.remove(d);
        Shape(dims)
    }
}

/// Size of the dimension at `offset` positions from the right; missing
/// (padded) dimensions count as 1.
fn dim_from_right(dims: &[usize], offset: usize) -> usize {
    if offset < dims.len() {
        dims[dims.len() - 1 - offset]
    } else {
        1
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

/// Iterates all output coordinates of `out_shape`, yielding for each the
/// flat index into two broadcast-input buffers with shapes `a` and `b`.
///
/// Used by the broadcasting elementwise kernels and their backward
/// passes. Dimensions of size 1 in an input get stride 0.
pub(crate) fn broadcast_index_iter<'s>(
    a: &Shape,
    b: &Shape,
    out: &'s Shape,
) -> impl Iterator<Item = (usize, usize)> + 's {
    let rank = out.rank();
    let pad = |s: &Shape| -> Vec<usize> {
        let mut dims = vec![1; rank - s.rank()];
        dims.extend_from_slice(s.dims());
        dims
    };
    let a_dims = pad(a);
    let b_dims = pad(b);
    let a_strides_full = Shape(a_dims.clone()).strides();
    let b_strides_full = Shape(b_dims.clone()).strides();
    let a_strides: Vec<usize> = a_dims
        .iter()
        .zip(&a_strides_full)
        .map(|(&d, &s)| if d == 1 { 0 } else { s })
        .collect();
    let b_strides: Vec<usize> = b_dims
        .iter()
        .zip(&b_strides_full)
        .map(|(&d, &s)| if d == 1 { 0 } else { s })
        .collect();
    let out_dims = out.dims().to_vec();
    let numel = out.numel();

    let mut coord = vec![0usize; rank];
    let mut first = true;
    (0..numel).map(move |_| {
        if first {
            first = false;
        } else {
            for d in (0..rank).rev() {
                coord[d] += 1;
                if coord[d] < out_dims[d] {
                    break;
                }
                coord[d] = 0;
            }
        }
        let ai: usize = coord.iter().zip(&a_strides).map(|(&c, &s)| c * s).sum();
        let bi: usize = coord.iter().zip(&b_strides).map(|(&c, &s)| c * s).sum();
        (ai, bi)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn broadcast_same_shape() {
        let a = Shape::new([2, 3]);
        assert_eq!(a.broadcast_with(&a), Some(a.clone()));
    }

    #[test]
    fn broadcast_scalar_vs_matrix() {
        let a = Shape::scalar();
        let b = Shape::new([4, 5]);
        assert_eq!(a.broadcast_with(&b), Some(b.clone()));
        assert_eq!(b.broadcast_with(&a), Some(b));
    }

    #[test]
    fn broadcast_column_times_row() {
        let a = Shape::new([3, 1]);
        let b = Shape::new([4]);
        assert_eq!(a.broadcast_with(&b), Some(Shape::new([3, 4])));
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new([3, 2]);
        let b = Shape::new([4]);
        assert_eq!(a.broadcast_with(&b), None);
    }

    #[test]
    fn without_dim() {
        assert_eq!(Shape::new([2, 3, 4]).without_dim(1), Shape::new([2, 4]));
        assert_eq!(Shape::new([5]).without_dim(0), Shape::scalar());
    }

    #[test]
    fn broadcast_iter_column_row() {
        let a = Shape::new([2, 1]);
        let b = Shape::new([3]);
        let out = a.broadcast_with(&b).unwrap();
        let pairs: Vec<_> = broadcast_index_iter(&a, &b, &out).collect();
        assert_eq!(
            pairs,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
