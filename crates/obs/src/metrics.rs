//! Global counter registry.
//!
//! Subsystems meter themselves with named monotonic counters:
//! `tgl_obs::counter!("cache.hits").add(n)`. The macro interns the name
//! in a process-global registry once per call site, so steady-state
//! cost is one relaxed atomic load (the enable gate) plus one relaxed
//! `fetch_add`. [`snapshot`] returns every registered counter for run
//! reports; [`reset`] zeroes them between measured runs.
//!
//! Naming scheme: `<subsystem>.<quantity>[.<qualifier>]`, all
//! lowercase, e.g. `cache.hits`, `transfer.h2d_bytes`,
//! `pool.busy_ns.t3`. Byte counts end in `_bytes`, nanosecond totals in
//! `_ns`; everything else is an event count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Whether counters record increments. Enabled by default: a counter
/// site is a relaxed `fetch_add` at batch granularity, which is noise.
/// Disable for the strictest overhead measurements.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns metering on or off globally (counters keep their values).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metering is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A named monotonic counter. Obtain via [`counter`] or the
/// `counter!` macro; instances live for the life of the process.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op when metering is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if ENABLED.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op when metering is disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Registered counters: a `HashMap` keyed by interned name for O(1)
/// registration-time lookup (per-worker `counter_owned` sites used to
/// pay an O(n) scan per call) plus a `Vec` preserving registration
/// order so iteration stays stable. Entries are leaked intentionally:
/// counters are process-lifetime statics.
struct Registry {
    by_name: HashMap<&'static str, &'static Counter>,
    in_order: Vec<&'static Counter>,
}

impl Registry {
    fn insert(&mut self, name: &'static str) -> &'static Counter {
        let c: &'static Counter = Box::leak(Box::new(Counter::new(name)));
        self.by_name.insert(name, c);
        self.in_order.push(c);
        c
    }
}

static REGISTRY: std::sync::LazyLock<Mutex<Registry>> = std::sync::LazyLock::new(|| {
    Mutex::new(Registry {
        by_name: HashMap::new(),
        in_order: Vec::new(),
    })
});

/// Returns the counter registered under `name`, creating it on first
/// use. Prefer the `counter!` macro at instrumentation sites — it
/// caches this lookup in a per-site `OnceLock`.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = reg.by_name.get(name) {
        return c;
    }
    reg.insert(name)
}

/// Registers a counter under a runtime-constructed name (e.g.
/// per-worker `pool.busy_ns.t3`). The name string is interned (leaked)
/// on first registration; repeat registrations of an existing name
/// allocate nothing.
pub fn counter_owned(name: String) -> &'static Counter {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = reg.by_name.get(name.as_str()) {
        return c;
    }
    let name: &'static str = Box::leak(name.into_boxed_str());
    reg.insert(name)
}

/// Current value of the counter named `name` (0 if never registered).
pub fn get(name: &str) -> u64 {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.by_name.get(name).map_or(0, |c| c.get())
}

/// Snapshot of every registered counter as `(name, value)`, sorted by
/// name for stable report output.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<_> = reg.in_order.iter().map(|c| (c.name, c.get())).collect();
    v.sort_unstable_by_key(|&(n, _)| n);
    v
}

/// Zeroes every registered counter (registrations persist).
pub fn reset() {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for c in reg.in_order.iter() {
        c.value.store(0, Ordering::Relaxed);
    }
}

/// Interns a counter at the call site: resolves the registry lookup
/// once, then returns the cached `&'static Counter`.
///
/// ```
/// tgl_obs::counter!("example.events").incr();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::counter($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registers_and_accumulates() {
        let c = counter("test.metrics.alpha");
        let before = c.get();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), before + 6);
        // Same name resolves to the same instance.
        assert!(std::ptr::eq(c, counter("test.metrics.alpha")));
        assert!(get("test.metrics.alpha") >= 6);
    }

    #[test]
    fn owned_names_are_interned() {
        let a = counter_owned(format!("test.metrics.t{}", 7));
        let b = counter_owned("test.metrics.t7".to_string());
        assert!(std::ptr::eq(a, b));
        a.incr();
        assert!(get("test.metrics.t7") >= 1);
    }

    #[test]
    fn snapshot_is_sorted_and_contains_registered() {
        counter("test.metrics.zz").incr();
        counter("test.metrics.aa").incr();
        let snap = snapshot();
        assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(snap.iter().any(|&(n, _)| n == "test.metrics.zz"));
    }

    #[test]
    fn disabled_metering_drops_increments() {
        let c = counter("test.metrics.gated");
        set_enabled(false);
        c.add(100);
        let frozen = c.get();
        set_enabled(true);
        c.add(1);
        assert_eq!(c.get(), frozen + 1);
    }

    #[test]
    fn repeat_registration_never_duplicates() {
        for i in 0..50 {
            counter_owned(format!("test.metrics.dup{}", i % 5)).incr();
        }
        let snap = snapshot();
        for i in 0..5 {
            let name = format!("test.metrics.dup{i}");
            assert_eq!(
                snap.iter().filter(|(n, _)| *n == name).count(),
                1,
                "{name} registered more than once"
            );
            assert_eq!(get(&name), 10);
        }
    }

    #[test]
    fn macro_caches_lookup() {
        let a = counter!("test.metrics.macro");
        let b = counter!("test.metrics.macro");
        a.incr();
        b.incr();
        assert!(get("test.metrics.macro") >= 2);
    }
}
