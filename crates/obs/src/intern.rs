//! Small global string interner for dynamically-composed span and op
//! names.
//!
//! The tracer and profiler key everything by `&'static str` so the hot
//! path is a pointer copy, not a `String` clone. Names composed at
//! runtime (e.g. `matmul[128x64,64x256]`) can't be `'static` — unless
//! each distinct spelling is leaked exactly once and reused from then
//! on. The set of distinct op/shape names in a training run is small
//! and bounded (a few hundred), so the total leak is a few KiB, paid
//! once per name rather than per call.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

fn table() -> &'static Mutex<HashSet<&'static str>> {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Returns a `&'static str` equal to `s`, leaking it on first sight
/// and returning the same pointer for every later request.
pub fn intern(s: &str) -> &'static str {
    let mut t = table().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = t.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    t.insert(leaked);
    leaked
}

/// Number of distinct strings interned so far (diagnostics / tests).
pub fn len() -> usize {
    table().lock().unwrap_or_else(|e| e.into_inner()).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_to_one_pointer() {
        let a = intern("intern-test-alpha");
        let b = intern(&format!("intern-test-{}", "alpha"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "same spelling must intern to one allocation");
    }

    #[test]
    fn intern_distinguishes_distinct_strings() {
        let a = intern("intern-test-x");
        let b = intern("intern-test-y");
        assert_ne!(a, b);
    }

    #[test]
    fn len_grows_monotonically() {
        let before = len();
        intern("intern-test-growth-probe");
        assert!(len() >= before);
        let mid = len();
        intern("intern-test-growth-probe");
        assert_eq!(len(), mid, "re-interning must not grow the table");
    }
}
