//! Always-on flight recorder: a fixed-size, lock-free, per-thread ring
//! buffer of the most recent spans and health events.
//!
//! Post-mortems of a panic or a `TGL_HEALTH=fail` trip normally carry
//! nothing about the last moments of execution — the tracer is off by
//! default (it grows without bound) and the profiler only aggregates.
//! The flight recorder fills that gap: every span end and health event
//! is written into a small per-thread ring (256 slots of five `u64`
//! words, allocated once and leaked), cheap enough to stay on all the
//! time within the repo's 2% disabled-overhead budget (see the
//! `obs_overhead` bench). [`to_json`] renders the merged rings as a
//! `tgl-flight/v1` artifact; [`dump_to_dir`] writes `flight-<ts>.json`.
//!
//! On by default; `TGL_FLIGHT=off` (or `0`) disables it, as does
//! [`enable`]`(false)`. Slot writes publish their metadata word last
//! with `Release` ordering and readers load it first with `Acquire`,
//! but a dump taken while other threads are mid-write may still observe
//! a torn slot (fields from two generations). That is acceptable for a
//! crash artifact: the dump is best-effort diagnostics, never an input
//! to computation, and a torn slot at worst misreports one event's
//! name or timing.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Slots per thread ring. 256 events cover several training steps of
/// span traffic — enough context for a post-mortem without measurable
/// memory cost (256 * 40 B per thread).
pub const CAPACITY: usize = 256;

const KIND_NONE: u64 = 0;
const KIND_SPAN: u64 = 1;
const KIND_HEALTH: u64 = 2;

/// 0 = uninitialized (consult `TGL_FLIGHT`), 1 = on, 2 = off.
static STATE: AtomicU32 = AtomicU32::new(0);

#[cold]
fn init_state() -> u32 {
    let on = !matches!(
        std::env::var("TGL_FLIGHT").as_deref(),
        Ok("off") | Ok("0") | Ok("OFF")
    );
    let s = if on { 1 } else { 2 };
    // Racing initializers agree (env is stable), so a plain store is fine.
    STATE.store(s, Ordering::Relaxed);
    s
}

/// Whether the flight recorder is on. First call reads `TGL_FLIGHT`;
/// after that it is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    let s = STATE.load(Ordering::Relaxed);
    if s == 0 {
        return init_state() == 1;
    }
    s == 1
}

/// Force the recorder on or off, overriding `TGL_FLIGHT`.
pub fn enable(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

struct Slot {
    /// Event kind; written last (Release) / read first (Acquire).
    meta: AtomicU64,
    /// Interned name id (span) or source id (health).
    name: AtomicU64,
    /// Event time: offset from the trace epoch, nanoseconds.
    t_ns: AtomicU64,
    /// Span duration in ns, or the health event's sink sequence number.
    dur_ns: AtomicU64,
    /// Spare word: health level for health events, 0 for spans.
    extra: AtomicU64,
}

struct Ring {
    tid: u32,
    /// Total events ever written to this ring; slot = head % CAPACITY.
    head: AtomicU64,
    slots: [Slot; CAPACITY],
}

impl Ring {
    fn write(&self, kind: u64, name: u64, t_ns: u64, dur_ns: u64, extra: u64) {
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(n as usize) % CAPACITY];
        slot.name.store(name, Ordering::Relaxed);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.extra.store(extra, Ordering::Relaxed);
        slot.meta.store(kind, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
    }
}

/// All rings ever created; rings are leaked so dumps from the panic
/// hook can read them after their owning thread has unwound.
static REGISTRY: Mutex<Vec<&'static Ring>> = Mutex::new(Vec::new());

thread_local! {
    static RING: &'static Ring = {
        #[allow(clippy::declare_interior_mutable_const)]
        const SLOT: Slot = Slot {
            meta: AtomicU64::new(KIND_NONE),
            name: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            extra: AtomicU64::new(0),
        };
        let ring: &'static Ring = Box::leak(Box::new(Ring {
            tid: crate::thread_id(),
            head: AtomicU64::new(0),
            slots: [SLOT; CAPACITY],
        }));
        REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).push(ring);
        ring
    };
}

/// Name interning: span names are `&'static str`, so a pointer-keyed
/// thread-local cache makes the steady-state lookup a single HashMap
/// probe with no string hashing.
struct Names {
    by_name: HashMap<&'static str, u64>,
    list: Vec<&'static str>,
}

static NAMES: OnceLock<Mutex<Names>> = OnceLock::new();

fn names() -> &'static Mutex<Names> {
    NAMES.get_or_init(|| {
        Mutex::new(Names {
            by_name: HashMap::new(),
            list: Vec::new(),
        })
    })
}

thread_local! {
    static NAME_CACHE: std::cell::RefCell<HashMap<usize, u64>> =
        std::cell::RefCell::new(HashMap::new());
}

fn name_id(name: &'static str) -> u64 {
    let key = name.as_ptr() as usize;
    NAME_CACHE.with(|c| {
        if let Some(&id) = c.borrow().get(&key) {
            return id;
        }
        let mut tbl = names().lock().unwrap_or_else(|e| e.into_inner());
        let id = match tbl.by_name.get(name) {
            Some(&id) => id,
            None => {
                tbl.list.push(name);
                let id = tbl.list.len() as u64; // ids start at 1
                tbl.by_name.insert(name, id);
                id
            }
        };
        drop(tbl);
        c.borrow_mut().insert(key, id);
        id
    })
}

fn name_for(id: u64) -> &'static str {
    if id == 0 {
        return "?";
    }
    let tbl = names().lock().unwrap_or_else(|e| e.into_inner());
    tbl.list.get(id as usize - 1).copied().unwrap_or("?")
}

/// Records one completed span into the calling thread's ring. Callers
/// must check [`enabled`] first (the `tgl_obs::span` guard does).
pub fn record_span(name: &'static str, start: Instant, dur: Duration) {
    let id = name_id(name);
    let t = crate::trace::offset_ns(start);
    RING.with(|r| r.write(KIND_SPAN, id, t, dur.as_nanos() as u64, 0));
}

/// Records a health event (called from `health::record`; checks
/// [`enabled`] itself so the health sink stays recorder-agnostic).
pub fn note_health(level: crate::health::Level, source: &'static str, seq: u64) {
    if !enabled() {
        return;
    }
    let id = name_id(source);
    let t = crate::trace::now_ns();
    RING.with(|r| r.write(KIND_HEALTH, id, t, seq, level as u64));
}

struct Event {
    kind: u64,
    tid: u32,
    name: &'static str,
    t_ns: u64,
    dur_ns: u64,
    extra: u64,
}

fn collect() -> (Vec<Event>, u64, usize) {
    let rings: Vec<&'static Ring> = REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut events = Vec::new();
    let mut total = 0u64;
    for ring in &rings {
        let head = ring.head.load(Ordering::Acquire);
        total += head;
        let live = head.min(CAPACITY as u64) as usize;
        for k in 0..live {
            let idx = ((head - live as u64) as usize + k) % CAPACITY;
            let slot = &ring.slots[idx];
            let kind = slot.meta.load(Ordering::Acquire);
            if kind == KIND_NONE {
                continue;
            }
            events.push(Event {
                kind,
                tid: ring.tid,
                name: name_for(slot.name.load(Ordering::Relaxed)),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                extra: slot.extra.load(Ordering::Relaxed),
            });
        }
    }
    events.sort_by_key(|e| (e.t_ns, e.tid));
    (events, total, rings.len())
}

pub(crate) fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn level_label(v: u64) -> &'static str {
    match v {
        0 => "info",
        1 => "warn",
        _ => "fail",
    }
}

/// Renders the merged rings plus counter and health context as a
/// `tgl-flight/v1` JSON artifact. `reason` says why the dump was taken
/// (`"panic"`, `"health-fail"`, `"request"`, ...).
pub fn to_json(reason: &str) -> String {
    let (events, total, threads) = collect();
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\n  \"schema\": \"tgl-flight/v1\",\n  \"reason\": \"");
    esc(reason, &mut out);
    let _ = write!(
        out,
        "\",\n  \"unix_ms\": {unix_ms},\n  \"threads\": {threads},\n  \"capacity\": {CAPACITY},\n  \"recorded_total\": {total},\n  \"events\": ["
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        match e.kind {
            KIND_SPAN => {
                out.push_str("\"kind\": \"span\", \"name\": \"");
                esc(e.name, &mut out);
                let _ = write!(
                    out,
                    "\", \"tid\": {}, \"t_ns\": {}, \"dur_ns\": {}",
                    e.tid, e.t_ns, e.dur_ns
                );
            }
            _ => {
                out.push_str("\"kind\": \"health\", \"source\": \"");
                esc(e.name, &mut out);
                let _ = write!(
                    out,
                    "\", \"tid\": {}, \"t_ns\": {}, \"level\": \"{}\", \"seq\": {}",
                    e.tid,
                    e.t_ns,
                    level_label(e.extra),
                    e.dur_ns
                );
            }
        }
        out.push('}');
    }
    out.push_str("\n  ],\n  \"counters\": {");
    let mut counters = crate::metrics::snapshot();
    counters.sort_by(|a, b| a.0.cmp(b.0));
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        esc(name, &mut out);
        let _ = write!(out, "\": {value}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in crate::hist::gauge_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        esc(name, &mut out);
        out.push_str("\": ");
        crate::timeseries::json_num(*value, &mut out);
    }
    // The trajectory into the failure: the last few points of every
    // retained series, so a post-mortem shows how loss/latency/queue
    // state was moving, not just where it ended.
    out.push_str("\n  },\n  \"timeseries\": {");
    let series = crate::timeseries::snapshot();
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        esc(s.name, &mut out);
        out.push_str("\": [");
        let tail = s.points.len().saturating_sub(TIMESERIES_TAIL);
        for (j, &(idx, value)) in s.points[tail..].iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{idx}, ");
            crate::timeseries::json_num(value, &mut out);
            out.push(']');
        }
        out.push(']');
    }
    // Introspection context: cumulative per-series summaries (steps,
    // last, max), so a post-mortem still attributes a divergence to a
    // parameter group even after the retained tail scrolled past the
    // first bad step.
    out.push_str("\n  },\n  \"insight\": {");
    let _ = write!(out, "\n    \"steps\": {},\n    \"stats\": {{", crate::insight::steps());
    for (i, s) in crate::insight::stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n      \"");
        esc(&s.name, &mut out);
        out.push_str("\": {\"last\": ");
        crate::timeseries::json_num(s.last, &mut out);
        out.push_str(", \"max\": ");
        crate::timeseries::json_num(s.max, &mut out);
        let _ = write!(out, ", \"count\": {}}}", s.count);
    }
    out.push_str("\n    }");
    out.push_str("\n  },\n  \"health\": {");
    let worst = crate::health::worst();
    let _ = write!(
        out,
        "\n    \"worst\": \"{}\",\n    \"events\": {},\n    \"dropped\": {}\n  }}\n}}\n",
        worst.map_or("none", |l| l.label()),
        crate::health::events().len(),
        crate::health::dropped()
    );
    out
}

/// Points per series carried in a flight dump's `timeseries` section.
const TIMESERIES_TAIL: usize = 32;

/// Wall-clock ms of the most recent [`dump_to_dir`] (0 = never).
static LAST_DUMP: AtomicU64 = AtomicU64::new(0);

/// True when a flight dump was written within the last `within_ms`
/// milliseconds — lets the harness panic hook skip a duplicate dump
/// right after an explicit health-fail dump.
pub fn recently_dumped(within_ms: u64) -> bool {
    let last = LAST_DUMP.load(Ordering::Relaxed);
    if last == 0 {
        return false;
    }
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    now.saturating_sub(last) <= within_ms
}

/// Writes `flight-<unix_ms>.json` into `dir` and returns its path.
pub fn dump_to_dir(dir: &std::path::Path, reason: &str) -> std::io::Result<std::path::PathBuf> {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let path = dir.join(format!("flight-{unix_ms}.json"));
    std::fs::write(&path, to_json(reason))?;
    LAST_DUMP.store(unix_ms, Ordering::Relaxed);
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    #[test]
    fn spans_land_in_ring_and_render() {
        let _g = serial();
        enable(true);
        {
            let _s = crate::span("flight-test-span");
        }
        let json = to_json("test");
        assert!(json.contains("\"schema\": \"tgl-flight/v1\""));
        assert!(json.contains("\"reason\": \"test\""));
        assert!(json.contains("\"name\": \"flight-test-span\""));
    }

    #[test]
    fn ring_keeps_only_most_recent_events() {
        let _g = serial();
        enable(true);
        for _ in 0..(CAPACITY + 16) {
            let _s = crate::span("flight-test-flood");
        }
        {
            let _s = crate::span("flight-test-last");
        }
        let (events, total, _) = collect();
        // Tests share the process but each test thread gets its own
        // ring, so filter to this test's event names.
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name == "flight-test-flood" || e.name == "flight-test-last")
            .collect();
        assert!(mine.len() <= CAPACITY, "ring must cap at CAPACITY events");
        assert!(total > CAPACITY as u64);
        assert_eq!(mine.last().unwrap().name, "flight-test-last");
    }

    #[test]
    fn health_events_are_recorded() {
        let _g = serial();
        enable(true);
        let seq =
            crate::health::record(crate::health::Level::Warn, "flight.test", "synthetic".into());
        let json = to_json("test");
        assert!(json.contains("\"kind\": \"health\""));
        assert!(json.contains("\"source\": \"flight.test\""));
        assert!(json.contains(&format!("\"seq\": {seq}")));
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = serial();
        enable(false);
        {
            let _s = crate::span("flight-test-disabled");
        }
        enable(true);
        let json = to_json("test");
        assert!(!json.contains("flight-test-disabled"));
    }

    #[test]
    fn dump_carries_gauges_and_timeseries_trajectory() {
        let _g = serial();
        enable(true);
        crate::metrics::set_enabled(true);
        crate::hist::gauge("flight.test.level").set(3.5);
        crate::timeseries::enable(true);
        crate::timeseries::record("flight.test.series", 0.25);
        let json = to_json("test");
        assert!(json.contains("\"gauges\": {"));
        assert!(json.contains("\"flight.test.level\": 3.5"));
        assert!(json.contains("\"timeseries\": {"));
        assert!(json.contains("\"flight.test.series\": ["));
        // The insight section is always present, empty when off.
        assert!(json.contains("\"insight\": {"));
        crate::timeseries::enable(false);
    }

    #[test]
    fn dump_writes_parseable_file() {
        let _g = serial();
        enable(true);
        {
            let _s = crate::span("flight-test-dump");
        }
        let dir = std::env::temp_dir().join(format!("tgl-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dump_to_dir(&dir, "test").unwrap();
        assert!(recently_dumped(60_000));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema\": \"tgl-flight/v1\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
