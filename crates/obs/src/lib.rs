//! # tgl-obs — observability substrate
//!
//! Std-only (no dependencies, not even on other workspace crates — it
//! sits *below* `tgl-runtime` so even the thread pool can report into
//! it). Three cooperating pieces:
//!
//! * [`metrics`] — a global registry of named atomic [`metrics::Counter`]s.
//!   Instrumentation sites use the [`counter!`] macro, which resolves the
//!   registry lookup once per call site and then costs one relaxed
//!   `fetch_add` per increment (a load + branch when metering is
//!   disabled). Counters are *observational only*: they never influence
//!   computation, so the workspace's bitwise thread-count-invariance
//!   contract is unaffected.
//!
//! * [`trace`] — a cross-thread span tracer. [`span`] returns an RAII
//!   guard; on drop it records `(name, thread id, start, duration)` into
//!   a sharded global sink. [`trace::take`] drains the sink and
//!   [`trace::to_chrome_json`] renders Chrome trace-event JSON loadable
//!   in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! * [`phase`] — a global named-phase duration accumulator (the Fig. 7
//!   per-operation breakdown). Unlike the old thread-local profiler in
//!   `tglite::prof`, phases recorded on *any* thread — including pool
//!   workers — aggregate into the one report the caller drains.
//!
//! * [`hist`] — log2-bucketed atomic [`hist::Histogram`]s (latency
//!   distributions: p50/p90/p99/max via the [`histogram!`] macro) and
//!   last-write-wins [`hist::Gauge`]s ([`gauge!`]), sharing the
//!   counter enable gate.
//!
//! * [`profile`] — a per-operator profiler keyed by `(op, phase)`:
//!   tensor-op dispatch sites open [`profile::op`] guards that record
//!   self time, call counts, analytic FLOPs and bytes, input shapes,
//!   and attributed pool/transfer activity, with span names (via
//!   [`span`]) providing the phase scope. [`intern`] backs the
//!   dynamically-composed names (e.g. `matmul[128x64,64x256]`).
//!
//! * [`health`] — a bounded sink of structured [`health::HealthEvent`]s
//!   (NaN sentinels, divergence warnings) that subsystems record
//!   instead of panicking.
//!
//! * [`expo`] — a std-only (`std::net::TcpListener`) HTTP server
//!   exposing `/metrics` (Prometheus text format), `/healthz`,
//!   `/report.json`, `/critpath.json`, `/flight.json`,
//!   `/timeseries.json`, `/alerts.json`, and the live [`dashboard`]
//!   page for scraping a running process; requests are handled by a
//!   small worker pool so a slow render never blocks `/healthz`.
//!
//! * [`flight`] — an always-on flight recorder: fixed-size per-thread
//!   rings of the most recent spans and health events, dumped as a
//!   `tgl-flight/v1` artifact on panic / health-fail / request.
//!
//! * [`critpath`] — critical-path analysis over tracer spans: per-stage
//!   serial vs overlapped time, the critical path itself, and overlap
//!   efficiency (the acceptance instrument for pipelined training).
//!
//! * [`timeseries`] — a retained ring-buffer store over the metric
//!   registries: per-step (or background-cadence) samples of every
//!   counter (delta-encoded), gauge, and histogram p50/p99, plus pushed
//!   series like `train.loss`, with thread-count-invariant snapshots
//!   exported as `tgl-timeseries/v1`.
//!
//! * [`alert`] — declarative SLO rules (`above`/`below`/`trend`/
//!   `nonfinite`/`pegged` with window + `for_n_samples` hysteresis)
//!   evaluated on the store; firings route through [`health`], land in
//!   flight dumps, and export as `tgl-alerts/v1`.
//!
//! * [`dashboard`] — the `/dashboard` HTML page: inline-JS SVG
//!   sparklines over `/timeseries.json`, alert banner, health badge,
//!   zero external assets.
//!
//! * [`insight`] — model & data introspection: per-parameter-group
//!   gradient/weight/update stats, dead-ReLU fractions, and
//!   temporal-data quality (memory staleness, neighbor time-deltas,
//!   negative-sampling collisions, dedup effectiveness, mailbox depth)
//!   collected into a per-batch bag and flushed as deterministic
//!   `insight.*` series plus a `tgl-insight/v1` artifact.
//!
//! A single [`span`] guard feeds all sinks: phase aggregation when
//! profiling is enabled, span events when tracing is enabled, and the
//! flight recorder's ring (on by default; `TGL_FLIGHT=off` disables).
//! When everything is off a guard does a few relaxed atomic loads.
//!
//! # Examples
//!
//! ```
//! tgl_obs::phase::enable(true);
//! {
//!     let _g = tgl_obs::span("attention");
//!     // ... work, possibly fanned out to worker threads ...
//! }
//! let report = tgl_obs::phase::take();
//! assert!(report.iter().any(|(name, _)| *name == "attention"));
//! tgl_obs::phase::enable(false);
//!
//! tgl_obs::counter!("demo.hits").add(3);
//! assert!(tgl_obs::metrics::get("demo.hits") >= 3);
//! ```

pub mod alert;
pub mod critpath;
pub mod dashboard;
pub mod expo;
pub mod flight;
pub mod health;
pub mod hist;
pub mod insight;
pub mod intern;
pub mod metrics;
pub mod phase;
pub mod profile;
pub mod timeseries;
pub mod trace;

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Starts a span named `name`: an RAII guard that, on drop, adds its
/// wall time to the [`phase`] accumulator (when profiling is enabled),
/// records a trace event (when tracing is enabled), and appends to the
/// flight recorder's ring (on by default). Near-zero cost when all
/// three are disabled.
pub fn span(name: &'static str) -> SpanGuard {
    let traced = trace::enabled();
    let active = phase::enabled() || traced || flight::enabled();
    // While op profiling is on, spans double as the profiler's phase
    // scope: ops record under the innermost enclosing span name.
    let scoped = profile::enabled();
    if scoped {
        profile::push_phase(name);
    }
    SpanGuard {
        name,
        start: active.then(Instant::now),
        scoped,
        phase: true,
        trace_id: if traced { trace::begin_span() } else { 0 },
    }
}

/// Starts a *container region* (`step`, `forward`, `epoch`, ...): like
/// [`span`] it records into the tracer and flight recorder, but it does
/// NOT feed the [`phase`] accumulator or scope the op profiler — the
/// Fig. 7 phase breakdown and `(op, phase)` keys stay exactly as the
/// fine-grained phase spans define them, while the critical-path
/// analyzer gets the step/epoch structure it needs.
pub fn region(name: &'static str) -> SpanGuard {
    let traced = trace::enabled();
    let active = traced || flight::enabled();
    SpanGuard {
        name,
        start: active.then(Instant::now),
        scoped: false,
        phase: false,
        trace_id: if traced { trace::begin_span() } else { 0 },
    }
}

/// RAII guard produced by [`span`] and [`region`].
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    scoped: bool,
    phase: bool,
    trace_id: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.scoped {
            profile::pop_phase();
        }
        if let Some(start) = self.start {
            let dur = start.elapsed();
            if self.phase && phase::enabled() {
                phase::add(self.name, dur);
            }
            // finish_span must run whenever an id was allocated so the
            // thread-local open-span stack stays balanced, even if
            // tracing was switched off mid-span.
            if self.trace_id != 0 || trace::enabled() {
                trace::finish_span(self.trace_id, self.name, start, dur);
            }
            if flight::enabled() {
                flight::record_span(self.name, start, dur);
            }
        }
    }
}

static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_ID: u32 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread (0, 1, 2, … in first-use
/// order), used as the `tid` of trace events and for per-worker
/// counters. Stable for the thread's lifetime.
pub fn thread_id() -> u32 {
    THREAD_ID.with(|id| *id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the global enable flags.
    pub(crate) fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn thread_ids_are_distinct_and_stable() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = serial();
        phase::enable(false);
        trace::enable(false);
        phase::take();
        {
            let _s = span("obs-disabled-probe");
        }
        assert!(!phase::take().iter().any(|(n, _)| *n == "obs-disabled-probe"));
    }

    #[test]
    fn region_traces_but_skips_phase_accumulator() {
        let _g = serial();
        phase::enable(true);
        trace::enable(true);
        phase::take();
        trace::take();
        {
            let _r = region("obs-region-probe");
            let _s = span("obs-inner-probe");
        }
        let phases = phase::take();
        let spans = trace::take();
        phase::enable(false);
        trace::enable(false);
        assert!(
            !phases.iter().any(|(n, _)| *n == "obs-region-probe"),
            "regions must not pollute the Fig-7 phase breakdown"
        );
        assert!(phases.iter().any(|(n, _)| *n == "obs-inner-probe"));
        let outer = spans.iter().find(|s| s.name == "obs-region-probe").unwrap();
        let inner = spans.iter().find(|s| s.name == "obs-inner-probe").unwrap();
        assert_eq!(inner.parent(), outer.id);
    }

    #[test]
    fn span_feeds_both_sinks() {
        let _g = serial();
        phase::enable(true);
        trace::enable(true);
        phase::take();
        trace::take();
        {
            let _s = span("obs-both-probe");
        }
        let phases = phase::take();
        let spans = trace::take();
        phase::enable(false);
        trace::enable(false);
        assert!(phases.iter().any(|(n, _)| *n == "obs-both-probe"));
        assert!(spans.iter().any(|s| s.name == "obs-both-probe"));
    }
}
