//! Retained telemetry time-series: a lock-light ring-buffer store over
//! the counter / gauge / histogram registries.
//!
//! `/metrics` and `/report.json` are point-in-time snapshots — latency
//! drift, loss plateaus, and throughput regressions are invisible in
//! them until a human diffs artifacts. This module keeps *history*:
//! every registered counter (delta-encoded per sample), gauge (raw),
//! and histogram (p50/p99 quantile series) is sampled into a fixed-size
//! ring per series, either from the harness's per-step hook
//! ([`sample_tick`]) or from a background sampler thread
//! ([`start_sampler`]) while a live server holds the process open.
//! Subsystems can also push values directly ([`record`] — the trainer
//! records `train.loss` per step and `val.ap` per epoch), which is what
//! the SLO rules in [`alert`](crate::alert) evaluate against.
//!
//! # Determinism contract
//!
//! Each point is `(idx, value)` where `idx` is the series' own
//! monotonic sequence number — no wall clock is stored per point, so a
//! series built from deterministic inputs is **bitwise identical at any
//! thread count and pipeline depth**. That covers pushed series
//! (`train.loss`, `val.ap`) and counter-delta series of the
//! work counters when sampling is driven per step. Timing series
//! (`*_ns` quantiles, per-worker `pool.busy_ns.tN` deltas) measure wall
//! time and are exempt, exactly like the rest of the repo's
//! thread-count-invariance contract. The background sampler adds
//! wall-clock-cadenced points for live serving; determinism-sensitive
//! runs simply don't start it (the per-step hook needs no thread).
//!
//! Counter series are *primed* on first observation (the first sample
//! records no point, only the baseline), so every stored point is a
//! true per-interval delta rather than a lifetime total.
//!
//! Disabled (the default) the [`record`] / [`sample_tick`] sites cost
//! one relaxed atomic load — they stay inside the repo's 2% disabled
//! observability budget (see the `obs_overhead` bench). Enable with
//! [`enable`], `TGL_TIMESERIES=on`, or implicitly via `--slo` /
//! `--serve-metrics` in the CLI and quickstart. Retention defaults to
//! [`DEFAULT_RETAIN`] points per series (`TGL_TS_RETAIN` overrides).

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Default points retained per series.
pub const DEFAULT_RETAIN: usize = 512;

/// 0 = uninitialized (consult `TGL_TIMESERIES`), 1 = on, 2 = off.
static STATE: AtomicU32 = AtomicU32::new(0);

#[cold]
fn init_state() -> u32 {
    let on = matches!(
        std::env::var("TGL_TIMESERIES").as_deref(),
        Ok("on") | Ok("1") | Ok("ON")
    );
    let s = if on { 1 } else { 2 };
    STATE.store(s, Ordering::Relaxed);
    s
}

/// Whether the store records anything. First call reads
/// `TGL_TIMESERIES` (default off); after that a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    let s = STATE.load(Ordering::Relaxed);
    if s == 0 {
        return init_state() == 1;
    }
    s == 1
}

/// Force the store on or off, overriding `TGL_TIMESERIES`.
pub fn enable(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

static RETAIN: AtomicUsize = AtomicUsize::new(0);

/// Points retained per series (`TGL_TS_RETAIN`, default
/// [`DEFAULT_RETAIN`]).
pub fn retain() -> usize {
    match RETAIN.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("TGL_TS_RETAIN")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_RETAIN);
            RETAIN.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the retention (smallest useful value is 2 — trend rules
/// need at least a window).
pub fn set_retain(n: usize) {
    RETAIN.store(n.max(1), Ordering::Relaxed);
}

/// How a series gets its points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Pushed directly by an instrumentation site ([`record`]).
    Push,
    /// Per-sample delta of a monotonic counter.
    CounterDelta,
    /// Raw gauge value at each sample.
    Gauge,
    /// A histogram quantile at each sample (`<hist>.p50` / `<hist>.p99`).
    Quantile,
}

impl Kind {
    /// Lowercase label used in the JSON artifact.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Push => "push",
            Kind::CounterDelta => "counter-delta",
            Kind::Gauge => "gauge",
            Kind::Quantile => "quantile",
        }
    }
}

struct SeriesData {
    /// Points ever appended (`points` keeps the last `retain()`).
    total: u64,
    /// Last observed raw counter value (counter-delta series only).
    last_raw: u64,
    /// True once `last_raw` holds a real observation.
    primed: bool,
    points: VecDeque<(u64, f64)>,
}

/// One named series: a fixed-retention ring of `(idx, value)` points.
/// Instances live for the life of the process (leaked, like the
/// counter/histogram registries).
pub struct Series {
    name: &'static str,
    kind: Kind,
    data: Mutex<SeriesData>,
}

impl Series {
    fn new(name: &'static str, kind: Kind) -> Series {
        Series {
            name,
            kind,
            data: Mutex::new(SeriesData {
                total: 0,
                last_raw: 0,
                primed: false,
                points: VecDeque::with_capacity(retain().min(64)),
            }),
        }
    }

    /// The series' registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The series' kind.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// Appends one point (always records; the global gate is checked by
    /// the callers that sit on hot paths).
    pub fn push(&self, value: f64) {
        let cap = retain();
        let mut d = self.data.lock().unwrap_or_else(|e| e.into_inner());
        let idx = d.total;
        d.total += 1;
        d.points.push_back((idx, value));
        while d.points.len() > cap {
            d.points.pop_front();
        }
    }

    /// Observes a monotonic counter: records `value - last` as the
    /// point and re-bases. The first observation only primes the
    /// baseline (no point), so every stored point is a true interval
    /// delta.
    fn observe_counter(&self, value: u64) {
        let cap = retain();
        let mut d = self.data.lock().unwrap_or_else(|e| e.into_inner());
        if !d.primed {
            d.primed = true;
            d.last_raw = value;
            return;
        }
        let delta = value.saturating_sub(d.last_raw);
        d.last_raw = value;
        let idx = d.total;
        d.total += 1;
        d.points.push_back((idx, delta as f64));
        while d.points.len() > cap {
            d.points.pop_front();
        }
    }

    /// A consistent copy of the ring.
    pub fn snapshot(&self) -> SeriesSnapshot {
        let d = self.data.lock().unwrap_or_else(|e| e.into_inner());
        SeriesSnapshot {
            name: self.name,
            kind: self.kind,
            total: d.total,
            points: d.points.iter().copied().collect(),
        }
    }

    fn clear(&self) {
        let mut d = self.data.lock().unwrap_or_else(|e| e.into_inner());
        d.total = 0;
        d.last_raw = 0;
        d.primed = false;
        d.points.clear();
    }
}

/// A point-in-time copy of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name.
    pub name: &'static str,
    /// Series kind.
    pub kind: Kind,
    /// Points ever appended (points older than the retention are gone).
    pub total: u64,
    /// Retained `(idx, value)` points in chronological order.
    pub points: Vec<(u64, f64)>,
}

struct Store {
    by_name: HashMap<&'static str, &'static Series>,
    in_order: Vec<&'static Series>,
    /// Histogram name → (p50 series, p99 series), so the sampler does
    /// not rebuild quantile-series names every tick.
    qcache: HashMap<&'static str, (&'static Series, &'static Series)>,
}

impl Store {
    fn get_or_insert(&mut self, name: &'static str, kind: Kind) -> &'static Series {
        if let Some(s) = self.by_name.get(name) {
            return s;
        }
        let s: &'static Series = Box::leak(Box::new(Series::new(name, kind)));
        self.by_name.insert(name, s);
        self.in_order.push(s);
        s
    }

    fn get_or_insert_owned(&mut self, name: String, kind: Kind) -> &'static Series {
        if let Some(s) = self.by_name.get(name.as_str()) {
            return s;
        }
        let leaked: &'static str = Box::leak(name.into_boxed_str());
        self.get_or_insert(leaked, kind)
    }
}

static STORE: std::sync::LazyLock<Mutex<Store>> = std::sync::LazyLock::new(|| {
    Mutex::new(Store {
        by_name: HashMap::new(),
        in_order: Vec::new(),
        qcache: HashMap::new(),
    })
});

/// Samples taken ([`sample_tick`] calls) since process start / last
/// [`reset`].
static TICKS: AtomicU64 = AtomicU64::new(0);

/// Returns the series registered under `name` (creating a `Push`
/// series on first use). Prefer [`record`] at instrumentation sites.
pub fn series(name: &'static str) -> &'static Series {
    let mut store = STORE.lock().unwrap_or_else(|e| e.into_inner());
    store.get_or_insert(name, Kind::Push)
}

/// Appends one point to the push series `name`. No-op (one relaxed
/// load) while the store is disabled. Non-finite values are stored as
/// recorded — a NaN loss *is* the signal the `nonfinite` alert rules
/// look for — and render as `null` in the JSON artifact.
#[inline]
pub fn record(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    series(name).push(value);
}

/// Appends one point to the push series `name`, registering the series
/// under an owned (leaked-once) name on first use — for dynamically
/// composed series like the per-parameter-group `insight.*` family.
/// No-op while the store is disabled; an existing registration costs no
/// allocation.
pub fn record_owned(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let s = {
        let mut store = STORE.lock().unwrap_or_else(|e| e.into_inner());
        match store.by_name.get(name) {
            Some(&s) => s,
            None => store.get_or_insert_owned(name.to_string(), Kind::Push),
        }
    };
    s.push(value);
}

/// One sampling pass over every registered counter (delta), gauge
/// (raw), and non-empty histogram (p50/p99 quantile series). No-op
/// while disabled. Called per training step by the harness and on a
/// wall-clock cadence by the background sampler.
pub fn sample_tick() {
    if !enabled() {
        return;
    }
    TICKS.fetch_add(1, Ordering::Relaxed);
    for (name, value) in crate::metrics::snapshot() {
        let s = {
            let mut store = STORE.lock().unwrap_or_else(|e| e.into_inner());
            store.get_or_insert(name, Kind::CounterDelta)
        };
        s.observe_counter(value);
    }
    for (name, value) in crate::hist::gauge_snapshot() {
        let s = {
            let mut store = STORE.lock().unwrap_or_else(|e| e.into_inner());
            store.get_or_insert(name, Kind::Gauge)
        };
        s.push(value);
    }
    for (name, snap) in crate::hist::hist_snapshot() {
        if snap.is_empty() {
            continue;
        }
        let (p50, p99) = {
            let mut store = STORE.lock().unwrap_or_else(|e| e.into_inner());
            match store.qcache.get(name) {
                Some(&pair) => pair,
                None => {
                    let p50 = store.get_or_insert_owned(format!("{name}.p50"), Kind::Quantile);
                    let p99 = store.get_or_insert_owned(format!("{name}.p99"), Kind::Quantile);
                    store.qcache.insert(name, (p50, p99));
                    (p50, p99)
                }
            }
        };
        p50.push(snap.quantile(0.5));
        p99.push(snap.quantile(0.99));
    }
}

/// Number of sampling passes taken.
pub fn ticks() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// Snapshot of the named series, if it exists.
pub fn get(name: &str) -> Option<SeriesSnapshot> {
    let store = STORE.lock().unwrap_or_else(|e| e.into_inner());
    store.by_name.get(name).map(|s| s.snapshot())
}

/// Snapshot of every series, sorted by name for stable output.
pub fn snapshot() -> Vec<SeriesSnapshot> {
    let store = STORE.lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<_> = store.in_order.iter().map(|s| s.snapshot()).collect();
    v.sort_unstable_by_key(|s| s.name);
    v
}

/// Clears every series' data and the tick counter. Registrations
/// persist (handles stay valid); counter baselines re-prime on the
/// next sample.
pub fn reset() {
    let store = STORE.lock().unwrap_or_else(|e| e.into_inner());
    for s in store.in_order.iter() {
        s.clear();
    }
    TICKS.store(0, Ordering::Relaxed);
}

/// Writes `v` as a JSON number, or `null` when non-finite (matching
/// `tgl_data::Json::render` so the artifact always re-parses).
pub(crate) fn json_num(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 9.0e15 {
            let _ = write!(out, "{}", v as i64);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// Renders the whole store as a `tgl-timeseries/v1` artifact (the
/// `/timeseries.json` endpoint body).
pub fn to_json() -> String {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let all = snapshot();
    let mut out = String::with_capacity(16 * 1024);
    let _ = write!(
        out,
        "{{\n  \"schema\": \"tgl-timeseries/v1\",\n  \"unix_ms\": {unix_ms},\n  \"retain\": {},\n  \"ticks\": {},\n  \"series\": [",
        retain(),
        ticks()
    );
    for (i, s) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": \"");
        crate::flight::esc(s.name, &mut out);
        let _ = write!(
            out,
            "\", \"kind\": \"{}\", \"total\": {}, \"points\": [",
            s.kind.label(),
            s.total
        );
        for (j, &(idx, value)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{idx}, ");
            json_num(value, &mut out);
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Background sampler thread (live serving)

static SAMPLER_RUNNING: AtomicBool = AtomicBool::new(false);

/// Starts (at most one) background sampler thread calling
/// [`sample_tick`] every `period_ms` milliseconds while the store is
/// enabled — keeps `/timeseries.json` and `/dashboard` moving during
/// long phases (evaluation, serve-hold) when no per-step hook runs.
/// Returns `false` when a sampler is already running.
///
/// Determinism-sensitive runs should rely on the per-step hook alone:
/// the background cadence adds wall-clock-timed points to the sampled
/// series (pushed series are unaffected).
pub fn start_sampler(period_ms: u64) -> bool {
    if SAMPLER_RUNNING.swap(true, Ordering::SeqCst) {
        return false;
    }
    let period = std::time::Duration::from_millis(period_ms.max(10));
    std::thread::Builder::new()
        .name("tgl-ts-sampler".into())
        .spawn(move || {
            while SAMPLER_RUNNING.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if SAMPLER_RUNNING.load(Ordering::Relaxed) {
                    sample_tick();
                }
            }
        })
        .map(|_| true)
        .unwrap_or_else(|_| {
            SAMPLER_RUNNING.store(false, Ordering::SeqCst);
            false
        })
}

/// Asks the background sampler to stop after its current sleep.
pub fn stop_sampler() {
    SAMPLER_RUNNING.store(false, Ordering::SeqCst);
}

/// Whether a background sampler thread is live.
pub fn sampler_running() -> bool {
    SAMPLER_RUNNING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    #[test]
    fn disabled_store_records_nothing() {
        let _g = serial();
        enable(false);
        record("ts.test.gated", 1.0);
        assert!(get("ts.test.gated").is_none_or(|s| s.points.is_empty()));
        enable(true);
        record("ts.test.gated", 2.0);
        let s = get("ts.test.gated").unwrap();
        assert_eq!(s.points.last(), Some(&(s.total - 1, 2.0)));
        enable(false);
    }

    #[test]
    fn push_series_keeps_idx_value_order_and_retention() {
        let _g = serial();
        enable(true);
        set_retain(8);
        let s = series("ts.test.ring");
        s.clear();
        for i in 0..20u64 {
            s.push(i as f64);
        }
        let snap = s.snapshot();
        assert_eq!(snap.total, 20);
        assert_eq!(snap.points.len(), 8);
        assert_eq!(snap.points.first(), Some(&(12, 12.0)));
        assert_eq!(snap.points.last(), Some(&(19, 19.0)));
        assert!(snap.points.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        set_retain(DEFAULT_RETAIN);
        enable(false);
    }

    #[test]
    fn counter_series_are_primed_then_delta_encoded() {
        let _g = serial();
        enable(true);
        let c = crate::metrics::counter("ts.test.counter");
        c.add(5);
        sample_tick(); // primes the baseline, no point
        c.add(3);
        sample_tick();
        c.add(7);
        sample_tick();
        let snap = get("ts.test.counter").unwrap();
        assert_eq!(snap.kind, Kind::CounterDelta);
        let vals: Vec<f64> = snap.points.iter().rev().take(2).rev().map(|p| p.1).collect();
        assert_eq!(vals, vec![3.0, 7.0]);
        enable(false);
    }

    #[test]
    fn sample_tick_covers_gauges_and_hist_quantiles() {
        let _g = serial();
        enable(true);
        // Gauge writes go through the metrics enable gate.
        crate::metrics::set_enabled(true);
        crate::hist::gauge("ts.test.level").set(2.5);
        crate::hist::histogram("ts.test.lat_ns").record_always(1000);
        sample_tick();
        let g = get("ts.test.level").unwrap();
        assert_eq!(g.kind, Kind::Gauge);
        assert_eq!(g.points.last().map(|p| p.1), Some(2.5));
        let p99 = get("ts.test.lat_ns.p99").unwrap();
        assert_eq!(p99.kind, Kind::Quantile);
        assert!(p99.points.last().map(|p| p.1).unwrap() > 0.0);
        enable(false);
    }

    #[test]
    fn json_artifact_renders_nan_as_null_and_has_schema() {
        let _g = serial();
        enable(true);
        let s = series("ts.test.nan");
        s.clear();
        s.push(1.0);
        s.push(f64::NAN);
        let json = to_json();
        assert!(json.contains("\"schema\": \"tgl-timeseries/v1\""));
        assert!(json.contains("\"name\": \"ts.test.nan\""));
        assert!(json.contains("null"));
        assert!(!json.contains("NaN"));
        enable(false);
    }

    #[test]
    fn reset_clears_points_and_ticks_but_keeps_handles() {
        let _g = serial();
        enable(true);
        let s = series("ts.test.reset");
        s.push(1.0);
        reset();
        assert_eq!(ticks(), 0);
        assert!(s.snapshot().points.is_empty());
        s.push(2.0);
        assert_eq!(s.snapshot().points, vec![(0, 2.0)]);
        enable(false);
    }

    #[test]
    fn sampler_thread_starts_and_stops() {
        let _g = serial();
        enable(true);
        assert!(start_sampler(10));
        assert!(!start_sampler(10), "second sampler must be refused");
        let t0 = ticks();
        std::thread::sleep(std::time::Duration::from_millis(80));
        assert!(ticks() > t0, "sampler took no ticks");
        stop_sampler();
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert!(!sampler_running() || !SAMPLER_RUNNING.load(Ordering::Relaxed));
        enable(false);
    }
}
