//! Per-operator profiler: time / FLOP / byte attribution below phase
//! granularity.
//!
//! Every tensor-op dispatch opens an [`op`] guard; on drop the guard
//! records self time (wall time minus enclosed child ops), call count,
//! analytic FLOPs, bytes read/written, the input-shape signature, and
//! any pool hits/misses or device-transfer bytes that occurred while
//! the op was the innermost active frame. Records are keyed by
//! `(op name, phase scope)` — the innermost enclosing [`crate::span`]
//! name — so the Fig-7 phase breakdown decomposes into operators.
//!
//! Two invariants shape the design:
//!
//! * **Thread-count invariance.** Ops are dispatched on the caller
//!   thread (only kernels fan out via `parallel_for`), so call counts,
//!   FLOPs, and byte totals are identical at 1 and N threads. The
//!   sink is sharded by thread id purely to avoid lock contention;
//!   [`take`] merges shards into one canonical view.
//!
//! * **Near-zero disabled cost.** Profiling is off by default; a
//!   disabled [`op`] site is a single relaxed atomic load returning an
//!   inert guard — no `Instant::now`, no thread-local access. The
//!   obs_overhead bench guards this stays within the ≤2% budget.
//!
//! Attribution frames live in a thread-local stack, so nested ops
//! (e.g. `mean_all` calling `sum_all`) each account their own self
//! time and a parent never double-counts a child.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{intern, trace};

static ENABLED: AtomicBool = AtomicBool::new(false);

const SHARDS: usize = 16;

/// One shard of totals keyed by `(op, phase)`, lazily allocated.
type Shard = Mutex<Option<HashMap<(&'static str, &'static str), OpTotals>>>;

/// Sharded accumulator; sharding mirrors the trace sink so concurrent
/// recorders rarely contend.
static SINK: [Shard; SHARDS] = [const { Mutex::new(None) }; SHARDS];

/// Phase key used when an op runs outside any [`crate::span`] scope.
pub const NO_PHASE: &str = "(no-phase)";

/// Turns op profiling on or off.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether op profiling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[derive(Debug)]
struct Frame {
    op: &'static str,
    phase: &'static str,
    start: Instant,
    /// Nanoseconds spent in ops nested inside this one.
    child_ns: u64,
    flops: u64,
    bytes_read: u64,
    bytes_written: u64,
    pool_hits: u64,
    pool_misses: u64,
    transfer_bytes: u64,
    /// Shape signature, e.g. `2x3,3x4` (empty when not reported).
    shape: &'static str,
    /// Enriched trace-span name, e.g. `matmul[2x3,3x4]`.
    trace_name: &'static str,
    /// Analytic cost of this op's *backward* pass, harvested by
    /// [`node_info`] when an autograd node is attached.
    bwd_flops: u64,
    bwd_read: u64,
    bwd_write: u64,
}

thread_local! {
    /// Stack of in-flight op frames on this thread (innermost last).
    static FRAMES: std::cell::RefCell<Vec<Frame>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Stack of enclosing span names (innermost last), maintained by
    /// [`crate::SpanGuard`] while profiling is enabled.
    static PHASES: std::cell::RefCell<Vec<&'static str>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Pushes a phase-scope name. Called by [`crate::span`]; pair with
/// [`pop_phase`].
pub fn push_phase(name: &'static str) {
    PHASES.with(|p| p.borrow_mut().push(name));
}

/// Pops the innermost phase-scope name.
pub fn pop_phase() {
    PHASES.with(|p| {
        p.borrow_mut().pop();
    });
}

fn current_phase() -> &'static str {
    PHASES.with(|p| p.borrow().last().copied().unwrap_or(NO_PHASE))
}

/// Opens a profiling frame for op `name`. Report analytic costs with
/// the builder methods, then let the guard drop at the end of the op:
///
/// ```
/// tgl_obs::profile::enable(true);
/// {
///     let _g = tgl_obs::profile::op("matmul")
///         .flops(2 * 2 * 3 * 4)
///         .io(4 * (2 * 3 + 3 * 4), 4 * 2 * 4)
///         .shape(&[&[2, 3], &[3, 4]]);
///     // ... kernel work ...
/// }
/// let stats = tgl_obs::profile::take();
/// tgl_obs::profile::enable(false);
/// assert_eq!(stats.iter().find(|s| s.op == "matmul").unwrap().flops, 48);
/// ```
#[inline]
pub fn op(name: &'static str) -> OpGuard {
    if !enabled() {
        return OpGuard { active: false };
    }
    open(name, name, 0, 0, 0)
}

/// Opens a profiling frame for the backward pass of `fwd_op`, named
/// `{fwd_op}.bwd`, pre-charged with the analytic costs the forward op
/// declared via [`OpGuard::backward_cost`].
#[inline]
pub fn op_backward(fwd_op: &'static str, flops: u64, read: u64, write: u64) -> OpGuard {
    if !enabled() {
        return OpGuard { active: false };
    }
    let name = intern::intern(&format!("{fwd_op}.bwd"));
    open(name, name, flops, read, write)
}

fn open(
    op: &'static str,
    trace_name: &'static str,
    flops: u64,
    bytes_read: u64,
    bytes_written: u64,
) -> OpGuard {
    let frame = Frame {
        op,
        phase: current_phase(),
        start: Instant::now(),
        child_ns: 0,
        flops,
        bytes_read,
        bytes_written,
        pool_hits: 0,
        pool_misses: 0,
        transfer_bytes: 0,
        shape: "",
        trace_name,
        bwd_flops: 0,
        bwd_read: 0,
        bwd_write: 0,
    };
    FRAMES.with(|f| f.borrow_mut().push(frame));
    OpGuard { active: true }
}

/// RAII guard produced by [`op`] / [`op_backward`]; records the frame
/// into the sharded sink on drop.
#[derive(Debug)]
pub struct OpGuard {
    active: bool,
}

impl OpGuard {
    fn with_top(&self, f: impl FnOnce(&mut Frame)) {
        if self.active {
            FRAMES.with(|frames| {
                if let Some(top) = frames.borrow_mut().last_mut() {
                    f(top);
                }
            });
        }
    }

    /// Adds analytic floating-point operations for this call.
    #[must_use]
    pub fn flops(self, n: u64) -> Self {
        self.with_top(|t| t.flops += n);
        self
    }

    /// Adds analytic bytes read / written for this call.
    #[must_use]
    pub fn io(self, read: u64, written: u64) -> Self {
        self.with_top(|t| {
            t.bytes_read += read;
            t.bytes_written += written;
        });
        self
    }

    /// Records the input-shape signature (e.g. `&[&[2,3], &[3,4]]` →
    /// `2x3,3x4`) and derives the enriched trace-span name
    /// `op[shapes]`. Formatting and interning only happen while the
    /// profiler is enabled.
    #[must_use]
    pub fn shape(self, shapes: &[&[usize]]) -> Self {
        if self.active {
            let mut sig = String::new();
            for (i, s) in shapes.iter().enumerate() {
                if i > 0 {
                    sig.push(',');
                }
                for (j, d) in s.iter().enumerate() {
                    if j > 0 {
                        sig.push('x');
                    }
                    let _ = write!(sig, "{d}");
                }
            }
            let shape = intern::intern(&sig);
            self.with_top(|t| {
                t.shape = shape;
                t.trace_name = intern::intern(&format!("{}[{}]", t.op, shape));
            });
        }
        self
    }

    /// Declares the analytic cost of this op's backward pass, for
    /// [`node_info`] to stash on the autograd node it is building.
    #[must_use]
    pub fn backward_cost(self, flops: u64, read: u64, written: u64) -> Self {
        self.with_top(|t| {
            t.bwd_flops = flops;
            t.bwd_read = read;
            t.bwd_write = written;
        });
        self
    }
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(frame) = FRAMES.with(|f| f.borrow_mut().pop()) else {
            return;
        };
        let elapsed_ns = frame.start.elapsed().as_nanos() as u64;
        let self_ns = elapsed_ns.saturating_sub(frame.child_ns);
        // A parent op must not re-count time spent inside this one.
        FRAMES.with(|f| {
            if let Some(parent) = f.borrow_mut().last_mut() {
                parent.child_ns += elapsed_ns;
            }
        });
        if trace::enabled() {
            trace::record_with(
                frame.trace_name,
                frame.start,
                frame.start.elapsed(),
                Some(trace::SpanArgs {
                    flops: frame.flops,
                    bytes: frame.bytes_read + frame.bytes_written,
                    shape: frame.shape,
                    ..Default::default()
                }),
            );
        }
        let shard = crate::thread_id() as usize % SHARDS;
        let mut sink = SINK[shard].lock().unwrap_or_else(|e| e.into_inner());
        let totals = sink
            .get_or_insert_with(HashMap::new)
            .entry((frame.op, frame.phase))
            .or_default();
        totals.calls += 1;
        totals.self_ns += self_ns;
        totals.total_ns += elapsed_ns;
        totals.flops += frame.flops;
        totals.bytes_read += frame.bytes_read;
        totals.bytes_written += frame.bytes_written;
        totals.pool_hits += frame.pool_hits;
        totals.pool_misses += frame.pool_misses;
        totals.transfer_bytes += frame.transfer_bytes;
        if !frame.shape.is_empty() {
            totals.shape = frame.shape;
        }
    }
}

/// Reports the op name and declared backward cost of the innermost
/// active frame, for attaching to an autograd node — and *consumes*
/// the backward cost so a second node built inside the same frame
/// cannot double-charge it. Returns `("op", 0, 0, 0)` when profiling
/// is disabled or no op frame is active.
pub fn node_info() -> (&'static str, u64, u64, u64) {
    if !enabled() {
        return ("op", 0, 0, 0);
    }
    FRAMES.with(|f| {
        let mut frames = f.borrow_mut();
        match frames.last_mut() {
            Some(top) => {
                let info = (top.op, top.bwd_flops, top.bwd_read, top.bwd_write);
                top.bwd_flops = 0;
                top.bwd_read = 0;
                top.bwd_write = 0;
                info
            }
            None => ("op", 0, 0, 0),
        }
    })
}

/// Attributes one pool request (hit or miss, `bytes` requested) to the
/// innermost active op frame, if any.
#[inline]
pub fn note_pool(hit: bool, bytes: u64) {
    if !enabled() {
        return;
    }
    let _ = bytes;
    FRAMES.with(|f| {
        if let Some(top) = f.borrow_mut().last_mut() {
            if hit {
                top.pool_hits += 1;
            } else {
                top.pool_misses += 1;
            }
        } else {
            // Attribution arrived outside any op frame (e.g. a pool
            // request from harness bookkeeping). Count the drop so
            // `/metrics` shows how much activity escapes the profiler.
            crate::counter!("profile.dropped").incr();
        }
    });
}

/// Attributes `bytes` of device-transfer traffic to the innermost
/// active op frame, if any.
#[inline]
pub fn note_transfer(bytes: u64) {
    if !enabled() {
        return;
    }
    FRAMES.with(|f| {
        if let Some(top) = f.borrow_mut().last_mut() {
            top.transfer_bytes += bytes;
        } else {
            crate::counter!("profile.dropped").incr();
        }
    });
}

/// Per-`(op, phase)` accumulated totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct OpTotals {
    calls: u64,
    self_ns: u64,
    total_ns: u64,
    flops: u64,
    bytes_read: u64,
    bytes_written: u64,
    pool_hits: u64,
    pool_misses: u64,
    transfer_bytes: u64,
    shape: &'static str,
}

/// One row of the profiler report: totals for an `(op, phase)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStat {
    /// Operator name, e.g. `matmul` or `matmul.bwd`.
    pub op: &'static str,
    /// Innermost enclosing span name, or [`NO_PHASE`].
    pub phase: &'static str,
    /// Number of completed calls.
    pub calls: u64,
    /// Wall nanoseconds excluding nested ops.
    pub self_ns: u64,
    /// Wall nanoseconds including nested ops.
    pub total_ns: u64,
    /// Analytic floating-point operations.
    pub flops: u64,
    /// Analytic bytes read.
    pub bytes_read: u64,
    /// Analytic bytes written.
    pub bytes_written: u64,
    /// Pool requests served from the free list while this op was the
    /// innermost frame.
    pub pool_hits: u64,
    /// Pool requests that fell through to the allocator.
    pub pool_misses: u64,
    /// Metered device-transfer bytes attributed to this op.
    pub transfer_bytes: u64,
    /// Most recent input-shape signature (empty if never reported).
    pub shape: &'static str,
}

fn collect(drain: bool) -> Vec<OpStat> {
    let mut merged: HashMap<(&'static str, &'static str), OpTotals> = HashMap::new();
    for shard in &SINK {
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let iter: Vec<((&'static str, &'static str), OpTotals)> = if drain {
            guard.take().map(HashMap::into_iter).map(Iterator::collect).unwrap_or_default()
        } else {
            guard
                .as_ref()
                .map(|m| m.iter().map(|(k, v)| (*k, v.clone())).collect())
                .unwrap_or_default()
        };
        for (key, t) in iter {
            let e = merged.entry(key).or_default();
            e.calls += t.calls;
            e.self_ns += t.self_ns;
            e.total_ns += t.total_ns;
            e.flops += t.flops;
            e.bytes_read += t.bytes_read;
            e.bytes_written += t.bytes_written;
            e.pool_hits += t.pool_hits;
            e.pool_misses += t.pool_misses;
            e.transfer_bytes += t.transfer_bytes;
            if !t.shape.is_empty() {
                e.shape = t.shape;
            }
        }
    }
    let mut out: Vec<OpStat> = merged
        .into_iter()
        .map(|((op, phase), t)| OpStat {
            op,
            phase,
            calls: t.calls,
            self_ns: t.self_ns,
            total_ns: t.total_ns,
            flops: t.flops,
            bytes_read: t.bytes_read,
            bytes_written: t.bytes_written,
            pool_hits: t.pool_hits,
            pool_misses: t.pool_misses,
            transfer_bytes: t.transfer_bytes,
            shape: t.shape,
        })
        .collect();
    // Heaviest self-time first; (op, phase) tiebreak keeps output
    // deterministic when times collide (e.g. all-zero in tests).
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.op.cmp(b.op)).then(a.phase.cmp(b.phase)));
    out
}

/// Drains every shard, returning merged per-`(op, phase)` stats sorted
/// by self time (heaviest first).
pub fn take() -> Vec<OpStat> {
    collect(true)
}

/// Returns the same merged view as [`take`] without draining — for
/// live scraping (`/profile.json`) while a run is in flight.
pub fn snapshot() -> Vec<OpStat> {
    collect(false)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders stats as a `tgl-profile/v1` JSON document.
pub fn to_json(stats: &[OpStat]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tgl-profile/v1\",\n  \"ops\": [");
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"op\": \"");
        escape_into(&mut out, s.op);
        out.push_str("\", \"phase\": \"");
        escape_into(&mut out, s.phase);
        let _ = write!(
            out,
            "\", \"calls\": {}, \"self_ns\": {}, \"total_ns\": {}, \"flops\": {}, \
             \"bytes_read\": {}, \"bytes_written\": {}, \"pool_hits\": {}, \
             \"pool_misses\": {}, \"transfer_bytes\": {}, \"shape\": \"",
            s.calls,
            s.self_ns,
            s.total_ns,
            s.flops,
            s.bytes_read,
            s.bytes_written,
            s.pool_hits,
            s.pool_misses,
            s.transfer_bytes,
        );
        escape_into(&mut out, s.shape);
        out.push_str("\"}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    #[test]
    fn disabled_op_records_nothing() {
        let _g = serial();
        enable(false);
        take();
        {
            let _op = op("profile-test-disabled").flops(100);
        }
        assert!(!take().iter().any(|s| s.op == "profile-test-disabled"));
    }

    #[test]
    fn op_accumulates_flops_bytes_and_calls() {
        let _g = serial();
        enable(true);
        take();
        for _ in 0..3 {
            let _op = op("profile-test-acc").flops(10).io(64, 32).shape(&[&[2, 8]]);
        }
        let stats = take();
        enable(false);
        let s = stats.iter().find(|s| s.op == "profile-test-acc").unwrap();
        assert_eq!(s.calls, 3);
        assert_eq!(s.flops, 30);
        assert_eq!(s.bytes_read, 192);
        assert_eq!(s.bytes_written, 96);
        assert_eq!(s.shape, "2x8");
        assert_eq!(s.phase, NO_PHASE);
    }

    #[test]
    fn nested_ops_split_self_time() {
        let _g = serial();
        enable(true);
        take();
        {
            let _outer = op("profile-test-outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = op("profile-test-inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let stats = take();
        enable(false);
        let outer = stats.iter().find(|s| s.op == "profile-test-outer").unwrap();
        let inner = stats.iter().find(|s| s.op == "profile-test-inner").unwrap();
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns < inner.self_ns,
            "outer self time ({}) must exclude the longer inner op ({})",
            outer.self_ns,
            inner.self_ns
        );
        assert!(outer.self_ns + inner.total_ns <= outer.total_ns + 1_000_000);
    }

    #[test]
    fn ops_are_keyed_by_enclosing_span_phase() {
        let _g = serial();
        enable(true);
        take();
        {
            let _p = crate::span("profile-test-phase");
            let _op = op("profile-test-scoped");
        }
        let stats = take();
        enable(false);
        let s = stats.iter().find(|s| s.op == "profile-test-scoped").unwrap();
        assert_eq!(s.phase, "profile-test-phase");
    }

    #[test]
    fn node_info_consumes_backward_cost() {
        let _g = serial();
        enable(true);
        take();
        {
            let _op = op("profile-test-bwd").backward_cost(42, 7, 3);
            assert_eq!(node_info(), ("profile-test-bwd", 42, 7, 3));
            // Consumed: a second node inside the same frame gets zeros.
            assert_eq!(node_info(), ("profile-test-bwd", 0, 0, 0));
        }
        enable(false);
        take();
        assert_eq!(node_info(), ("op", 0, 0, 0));
    }

    #[test]
    fn pool_and_transfer_attribute_to_innermost_frame() {
        let _g = serial();
        enable(true);
        take();
        {
            let _op = op("profile-test-attr");
            note_pool(true, 1024);
            note_pool(false, 2048);
            note_transfer(4096);
        }
        // Outside any frame: dropped from op attribution, but counted
        // so `/metrics` can expose the escape rate.
        let dropped0 = crate::metrics::get("profile.dropped");
        note_pool(true, 8);
        note_transfer(8);
        let stats = take();
        enable(false);
        assert_eq!(crate::metrics::get("profile.dropped"), dropped0 + 2);
        let s = stats.iter().find(|s| s.op == "profile-test-attr").unwrap();
        assert_eq!(s.pool_hits, 1);
        assert_eq!(s.pool_misses, 1);
        assert_eq!(s.transfer_bytes, 4096);
    }

    #[test]
    fn backward_guard_uses_interned_bwd_name() {
        let _g = serial();
        enable(true);
        take();
        {
            let _op = op_backward("profile-test-fwd", 12, 8, 4);
        }
        let stats = take();
        enable(false);
        let s = stats.iter().find(|s| s.op == "profile-test-fwd.bwd").unwrap();
        assert_eq!(s.flops, 12);
        assert_eq!(s.bytes_read, 8);
        assert_eq!(s.bytes_written, 4);
    }

    #[test]
    fn snapshot_does_not_drain() {
        let _g = serial();
        enable(true);
        take();
        {
            let _op = op("profile-test-snap");
        }
        assert!(snapshot().iter().any(|s| s.op == "profile-test-snap"));
        assert!(take().iter().any(|s| s.op == "profile-test-snap"));
        enable(false);
    }

    #[test]
    fn json_has_schema_and_rows() {
        let stats = vec![OpStat {
            op: "matmul",
            phase: "attention",
            calls: 2,
            self_ns: 1000,
            total_ns: 1200,
            flops: 48,
            bytes_read: 96,
            bytes_written: 32,
            pool_hits: 1,
            pool_misses: 0,
            transfer_bytes: 0,
            shape: "2x3,3x4",
        }];
        let json = to_json(&stats);
        assert!(json.contains("\"schema\": \"tgl-profile/v1\""));
        assert!(json.contains("\"op\": \"matmul\""));
        assert!(json.contains("\"phase\": \"attention\""));
        assert!(json.contains("\"flops\": 48"));
        assert!(json.contains("\"shape\": \"2x3,3x4\""));
    }
}
