//! Live metrics exposition over HTTP — std-only (`std::net`), no deps.
//!
//! [`start`] binds a `TcpListener` and serves, from a background
//! thread, a read-only snapshot of the process's metrics surface:
//!
//! * `GET /metrics` — Prometheus text exposition format (version
//!   0.0.4): every registered counter (as `_total`), gauge, and
//!   histogram (cumulative `_bucket{le="..."}` series + `_sum` +
//!   `_count`, bounds in nanoseconds matching the `_ns` convention).
//! * `GET /healthz` — `200 {"status":"ok"|"degraded"}` while no `fail`
//!   health event is recorded, `503 {"status":"failing", ...}` after.
//! * `GET /report.json` — the most recently [`publish_report`]ed run
//!   report (the in-progress document while a run is live), `404`
//!   before the first publish.
//! * `GET /profile.json` — a live `tgl-profile/v1` snapshot of the
//!   per-operator profiler (non-draining; empty `ops` array until
//!   profiling is enabled and ops have run).
//! * `GET /critpath.json` — a live `tgl-critpath/v1` critical-path
//!   analysis over the tracer's current spans (non-draining; zeroed
//!   while tracing is off).
//! * `GET /flight.json` — a `tgl-flight/v1` dump of the flight
//!   recorder's recent-event rings, on demand.
//! * `GET /quit` — releases [`wait_for_quit`] so a driver script can
//!   scrape a short-lived process deterministically and then let it
//!   exit.
//!
//! The server is deliberately minimal: HTTP/1.0 semantics, one request
//! per connection, everything rendered from atomics at request time. It
//! never writes to any metric, so scraping cannot perturb a run beyond
//! the snapshot loads themselves.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::{health, hist, metrics};

static REPORT: Mutex<Option<String>> = Mutex::new(None);
static QUIT: Mutex<bool> = Mutex::new(false);
static QUIT_CV: Condvar = Condvar::new();

/// Publishes (replaces) the document served at `/report.json`.
/// Harness reporters call this after every epoch so the endpoint shows
/// the in-progress run, not just the finished one.
pub fn publish_report(json: String) {
    *REPORT.lock().unwrap_or_else(|e| e.into_inner()) = Some(json);
}

/// The most recently published report, if any.
pub fn latest_report() -> Option<String> {
    REPORT.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Blocks until a `/quit` request arrives or `timeout` elapses.
/// Returns `true` when quit was requested.
pub fn wait_for_quit(timeout: Duration) -> bool {
    let guard = QUIT.lock().unwrap_or_else(|e| e.into_inner());
    let (guard, result) = QUIT_CV
        .wait_timeout_while(guard, timeout, |quit| !*quit)
        .unwrap_or_else(|e| e.into_inner());
    drop(guard);
    !result.timed_out()
}

fn signal_quit() {
    *QUIT.lock().unwrap_or_else(|e| e.into_inner()) = true;
    QUIT_CV.notify_all();
}

/// Mangles a dotted metric name into a valid Prometheus metric name:
/// `tensor.pool.hit` → `tgl_tensor_pool_hit`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tgl_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a float the exposition format accepts (no exponent
/// surprises for integral values).
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the full Prometheus text exposition document from the
/// current counter / gauge / histogram registries.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for (name, value) in metrics::snapshot() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {value}\n"));
    }
    for (name, value) in hist::gauge_snapshot() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", prom_num(value)));
    }
    for (name, snap) in hist::hist_snapshot() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} histogram\n"));
        // Cumulative counts up to the highest non-empty bucket, then
        // +Inf. An empty histogram still exposes its +Inf bucket so the
        // family is visible as soon as it is registered.
        let last = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for i in 0..last {
            cum += snap.buckets[i];
            out.push_str(&format!(
                "{p}_bucket{{le=\"{}\"}} {cum}\n",
                hist::bucket_hi(i)
            ));
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        out.push_str(&format!("{p}_sum {}\n", snap.sum));
        out.push_str(&format!("{p}_count {}\n", snap.count));
    }
    out
}

/// Renders the `/healthz` body and whether the process is healthy.
fn render_health() -> (bool, String) {
    let worst = health::worst();
    let status = match worst {
        Some(health::Level::Fail) => "failing",
        Some(health::Level::Warn) => "degraded",
        _ => "ok",
    };
    let events = health::events();
    let body = format!(
        "{{\"status\":\"{status}\",\"events\":{},\"dropped\":{}}}\n",
        events.len(),
        health::dropped()
    );
    (worst != Some(health::Level::Fail), body)
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn handle(mut stream: TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line).is_ok() && line.trim() != "" {
        line.clear();
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
        return;
    }
    match path {
        "/metrics" => {
            let body = render_prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            let (ok, body) = render_health();
            let status = if ok { "200 OK" } else { "503 Service Unavailable" };
            respond(&mut stream, status, "application/json", &body);
        }
        "/profile.json" | "/profile" => {
            let body = crate::profile::to_json(&crate::profile::snapshot());
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/critpath.json" | "/critpath" => {
            // Non-draining: analyzes a snapshot of whatever the tracer
            // currently holds (empty analysis when tracing is off).
            let body = crate::critpath::to_json(&crate::critpath::analyze(&crate::trace::snapshot()));
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/flight.json" | "/flight" => {
            let body = crate::flight::to_json("request");
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/report.json" | "/report" => match latest_report() {
            Some(json) => respond(&mut stream, "200 OK", "application/json", &json),
            None => respond(
                &mut stream,
                "404 Not Found",
                "application/json",
                "{\"error\":\"no report published yet\"}\n",
            ),
        },
        "/quit" => {
            respond(&mut stream, "200 OK", "text/plain", "bye\n");
            signal_quit();
        }
        "/" => respond(
            &mut stream,
            "200 OK",
            "text/plain",
            "tgl metrics server: /metrics /healthz /report.json /profile.json /critpath.json /flight.json /quit\n",
        ),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves the exposition
/// endpoints from a detached background thread for the life of the
/// process. Returns the bound address (useful with port 0).
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn start(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("tgl-metrics-server".into())
        .spawn(move || {
            for stream in listener.incoming() {
                match stream {
                    Ok(s) => handle(s),
                    Err(_) => continue,
                }
            }
        })
        .expect("spawn metrics server thread");
    Ok(bound)
}

/// Starts the server when `TGL_METRICS_ADDR` is set; returns the bound
/// address when it did. Bind failures are reported on stderr, not
/// fatal: metrics exposition must never take a training run down.
pub fn start_from_env() -> Option<SocketAddr> {
    let addr = std::env::var("TGL_METRICS_ADDR").ok()?;
    match start(&addr) {
        Ok(bound) => Some(bound),
        Err(e) => {
            eprintln!("TGL_METRICS_ADDR={addr}: bind failed: {e}");
            None
        }
    }
}

/// Minimal scrape client for the server above (used by `tgl promcheck`
/// and the test suite): sends `GET path` to `addr`, returns
/// `(status_code, body)`.
///
/// # Errors
///
/// Returns connection or protocol errors.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_names_are_legal() {
        assert_eq!(prom_name("tensor.pool.hit"), "tgl_tensor_pool_hit");
        assert_eq!(prom_name("pool.busy_ns.t3"), "tgl_pool_busy_ns_t3");
    }

    #[test]
    fn render_contains_counters_gauges_and_histograms() {
        crate::counter!("test.expo.count").add(3);
        crate::gauge!("test.expo.level").set(1.5);
        crate::histogram!("test.expo.lat_ns").record_always(700);
        let doc = render_prometheus();
        assert!(doc.contains("# TYPE tgl_test_expo_count_total counter"));
        assert!(doc.contains("tgl_test_expo_count_total"));
        assert!(doc.contains("# TYPE tgl_test_expo_level gauge"));
        assert!(doc.contains("tgl_test_expo_level 1.5"));
        assert!(doc.contains("# TYPE tgl_test_expo_lat_ns histogram"));
        assert!(doc.contains("tgl_test_expo_lat_ns_bucket{le=\"+Inf\"}"));
        assert!(doc.contains("tgl_test_expo_lat_ns_sum"));
        assert!(doc.contains("tgl_test_expo_lat_ns_count"));
        // Bucket lines are cumulative and end at the +Inf total.
        let bucket_lines: Vec<u64> = doc
            .lines()
            .filter(|l| l.starts_with("tgl_test_expo_lat_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_lines.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn server_serves_metrics_healthz_report_and_quit() {
        let addr = start("127.0.0.1:0").expect("bind");
        let addr = addr.to_string();

        let (code, body) = http_get(&addr, "/metrics").expect("scrape /metrics");
        assert_eq!(code, 200);
        assert!(body.contains("# TYPE "), "exposition body: {body:?}");

        let (code, body) = http_get(&addr, "/healthz").expect("scrape /healthz");
        assert!(code == 200 || code == 503);
        assert!(body.contains("\"status\""));

        let (code, _) = http_get(&addr, "/nope").expect("scrape 404");
        assert_eq!(code, 404);

        let (code, body) = http_get(&addr, "/profile.json").expect("scrape profile");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-profile/v1\""));

        let (code, body) = http_get(&addr, "/critpath.json").expect("scrape critpath");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-critpath/v1\""));

        let (code, body) = http_get(&addr, "/flight.json").expect("scrape flight");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-flight/v1\""));
        assert!(body.contains("\"reason\": \"request\""));

        publish_report("{\"schema\":\"tgl-run-report/v2\"}".into());
        let (code, body) = http_get(&addr, "/report.json").expect("scrape report");
        assert_eq!(code, 200);
        assert!(body.contains("tgl-run-report"));

        assert!(!wait_for_quit(Duration::from_millis(1)));
        let (code, _) = http_get(&addr, "/quit").expect("quit");
        assert_eq!(code, 200);
        assert!(wait_for_quit(Duration::from_secs(5)));
    }
}
