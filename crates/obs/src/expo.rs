//! Live metrics exposition over HTTP — std-only (`std::net`), no deps.
//!
//! [`start`] binds a `TcpListener` and serves, from a background
//! thread, a read-only snapshot of the process's metrics surface:
//!
//! * `GET /metrics` — Prometheus text exposition format (version
//!   0.0.4): every registered counter (as `_total`), gauge, and
//!   histogram (cumulative `_bucket{le="..."}` series + `_sum` +
//!   `_count`, bounds in nanoseconds matching the `_ns` convention).
//! * `GET /healthz` — `200 {"status":"ok"|"degraded"}` while no `fail`
//!   health event is recorded, `503 {"status":"failing", ...}` after.
//! * `GET /report.json` — the most recently [`publish_report`]ed run
//!   report (the in-progress document while a run is live), `404`
//!   before the first publish.
//! * `GET /profile.json` — a live `tgl-profile/v1` snapshot of the
//!   per-operator profiler (non-draining; empty `ops` array until
//!   profiling is enabled and ops have run).
//! * `GET /critpath.json` — a live `tgl-critpath/v1` critical-path
//!   analysis over the tracer's current spans (non-draining; zeroed
//!   while tracing is off).
//! * `GET /flight.json` — a `tgl-flight/v1` dump of the flight
//!   recorder's recent-event rings, on demand.
//! * `GET /timeseries.json` — the retained telemetry store as a
//!   `tgl-timeseries/v1` artifact (see [`crate::timeseries`]).
//! * `GET /alerts.json` — installed SLO rules, their firing state, and
//!   the transition history as `tgl-alerts/v1` (see [`crate::alert`]).
//! * `GET /insight.json` — the introspection layer's cumulative
//!   per-layer and data-quality summaries as `tgl-insight/v1` (see
//!   [`crate::insight`]; empty `stats` until insight is enabled).
//! * `GET /dashboard` — a self-contained live HTML dashboard (inline
//!   JS + SVG sparklines, zero external assets; see
//!   [`crate::dashboard`]).
//! * `GET /quit` — releases [`wait_for_quit`] so a driver script can
//!   scrape a short-lived process deterministically and then let it
//!   exit.
//!
//! The server is deliberately minimal: HTTP/1.0 semantics, one request
//! per connection, everything rendered from atomics at request time. It
//! never writes to any metric, so scraping cannot perturb a run beyond
//! the snapshot loads themselves. Accepted connections are dispatched
//! to a small worker pool ([`WORKERS`] threads per listener) so one
//! slow render — a big `/dashboard` or `/timeseries.json` body — never
//! blocks a concurrent `/healthz` liveness probe.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::{health, hist, metrics};

static REPORT: Mutex<Option<String>> = Mutex::new(None);
static QUIT: Mutex<bool> = Mutex::new(false);
static QUIT_CV: Condvar = Condvar::new();

/// Publishes (replaces) the document served at `/report.json`.
/// Harness reporters call this after every epoch so the endpoint shows
/// the in-progress run, not just the finished one.
pub fn publish_report(json: String) {
    *REPORT.lock().unwrap_or_else(|e| e.into_inner()) = Some(json);
}

/// The most recently published report, if any.
pub fn latest_report() -> Option<String> {
    REPORT.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Blocks until a `/quit` request arrives or `timeout` elapses.
/// Returns `true` when quit was requested.
pub fn wait_for_quit(timeout: Duration) -> bool {
    let guard = QUIT.lock().unwrap_or_else(|e| e.into_inner());
    let (guard, result) = QUIT_CV
        .wait_timeout_while(guard, timeout, |quit| !*quit)
        .unwrap_or_else(|e| e.into_inner());
    drop(guard);
    !result.timed_out()
}

fn signal_quit() {
    *QUIT.lock().unwrap_or_else(|e| e.into_inner()) = true;
    QUIT_CV.notify_all();
}

/// Mangles a dotted metric name into a valid Prometheus metric name:
/// `tensor.pool.hit` → `tgl_tensor_pool_hit`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tgl_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a float the exposition format accepts (no exponent
/// surprises for integral values).
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the full Prometheus text exposition document from the
/// current counter / gauge / histogram registries.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for (name, value) in metrics::snapshot() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {value}\n"));
    }
    for (name, value) in hist::gauge_snapshot() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", prom_num(value)));
    }
    for (name, snap) in hist::hist_snapshot() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} histogram\n"));
        // Cumulative counts up to the highest non-empty bucket, then
        // +Inf. An empty histogram still exposes its +Inf bucket so the
        // family is visible as soon as it is registered.
        let last = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for i in 0..last {
            cum += snap.buckets[i];
            out.push_str(&format!(
                "{p}_bucket{{le=\"{}\"}} {cum}\n",
                hist::bucket_hi(i)
            ));
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        out.push_str(&format!("{p}_sum {}\n", snap.sum));
        out.push_str(&format!("{p}_count {}\n", snap.count));
    }
    out
}

/// Renders the `/healthz` body and whether the process is healthy.
fn render_health() -> (bool, String) {
    let worst = health::worst();
    let status = match worst {
        Some(health::Level::Fail) => "failing",
        Some(health::Level::Warn) => "degraded",
        _ => "ok",
    };
    let events = health::events();
    let body = format!(
        "{{\"status\":\"{status}\",\"events\":{},\"dropped\":{}}}\n",
        events.len(),
        health::dropped()
    );
    (worst != Some(health::Level::Fail), body)
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn handle(mut stream: TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line).is_ok() && line.trim() != "" {
        line.clear();
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
        return;
    }
    match path {
        "/metrics" => {
            let body = render_prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            let (ok, body) = render_health();
            let status = if ok { "200 OK" } else { "503 Service Unavailable" };
            respond(&mut stream, status, "application/json", &body);
        }
        "/profile.json" | "/profile" => {
            let body = crate::profile::to_json(&crate::profile::snapshot());
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/critpath.json" | "/critpath" => {
            // Non-draining: analyzes a snapshot of whatever the tracer
            // currently holds (empty analysis when tracing is off).
            let body = crate::critpath::to_json(&crate::critpath::analyze(&crate::trace::snapshot()));
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/flight.json" | "/flight" => {
            let body = crate::flight::to_json("request");
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/report.json" | "/report" => match latest_report() {
            Some(json) => respond(&mut stream, "200 OK", "application/json", &json),
            None => respond(
                &mut stream,
                "404 Not Found",
                "application/json",
                "{\"error\":\"no report published yet\"}\n",
            ),
        },
        "/timeseries.json" | "/timeseries" => {
            let body = crate::timeseries::to_json();
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/alerts.json" | "/alerts" => {
            let body = crate::alert::to_json();
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/insight.json" | "/insight" => {
            let body = crate::insight::to_json();
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/dashboard" => {
            let delay = TEST_RENDER_DELAY_MS.load(Ordering::Relaxed);
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            respond(
                &mut stream,
                "200 OK",
                "text/html; charset=utf-8",
                crate::dashboard::html(),
            );
        }
        "/quit" => {
            respond(&mut stream, "200 OK", "text/plain", "bye\n");
            signal_quit();
        }
        "/" => respond(
            &mut stream,
            "200 OK",
            "text/plain",
            "tgl metrics server: /metrics /healthz /report.json /profile.json /critpath.json /flight.json /timeseries.json /alerts.json /insight.json /dashboard /quit\n",
        ),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Artificial delay injected into `/dashboard` rendering, in
/// milliseconds. Test-only hook: the parallel-scrape test uses it to
/// prove a slow render on one worker never blocks `/healthz` on
/// another.
#[doc(hidden)]
pub static TEST_RENDER_DELAY_MS: AtomicU64 = AtomicU64::new(0);

/// Request-handling worker threads per listener. Small on purpose:
/// scrape traffic is a handful of concurrent clients, and the workers
/// only read atomics — the pool exists so one slow response cannot
/// serialize a liveness probe behind it, not for throughput.
pub const WORKERS: usize = 4;

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves the exposition
/// endpoints for the life of the process: one accept thread feeding a
/// bounded hand-off queue drained by [`WORKERS`] handler threads.
/// Returns the bound address (useful with port 0).
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn start(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    type Queue = (Mutex<VecDeque<TcpStream>>, Condvar);
    let queue: Arc<Queue> = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
    for i in 0..WORKERS {
        let queue = Arc::clone(&queue);
        std::thread::Builder::new()
            .name(format!("tgl-metrics-worker-{i}"))
            .spawn(move || loop {
                let stream = {
                    let (lock, cv) = &*queue;
                    let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if let Some(s) = q.pop_front() {
                            break s;
                        }
                        q = cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                };
                handle(stream);
            })
            .expect("spawn metrics worker thread");
    }
    std::thread::Builder::new()
        .name("tgl-metrics-server".into())
        .spawn(move || {
            for stream in listener.incoming() {
                match stream {
                    Ok(s) => {
                        let (lock, cv) = &*queue;
                        let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
                        // Bound the backlog: beyond it, shed the oldest
                        // waiting connection (its client sees a reset)
                        // rather than queueing without limit.
                        if q.len() >= WORKERS * 16 {
                            q.pop_front();
                        }
                        q.push_back(s);
                        cv.notify_one();
                    }
                    Err(_) => continue,
                }
            }
        })
        .expect("spawn metrics server thread");
    Ok(bound)
}

/// Starts the server when `TGL_METRICS_ADDR` is set; returns the bound
/// address when it did. Bind failures are reported on stderr, not
/// fatal: metrics exposition must never take a training run down.
pub fn start_from_env() -> Option<SocketAddr> {
    let addr = std::env::var("TGL_METRICS_ADDR").ok()?;
    match start(&addr) {
        Ok(bound) => Some(bound),
        Err(e) => {
            eprintln!("TGL_METRICS_ADDR={addr}: bind failed: {e}");
            None
        }
    }
}

/// Minimal scrape client for the server above (used by `tgl promcheck`
/// and the test suite): sends `GET path` to `addr`, returns
/// `(status_code, body)`.
///
/// # Errors
///
/// Returns connection or protocol errors.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    http_get_timeout(addr, path, Duration::from_secs(5))
}

/// [`http_get`] with an explicit bound on *every* blocking phase:
/// address resolution aside, connect, write, and read each time out
/// after `timeout` instead of hanging a CI scrape on a half-open
/// listener (the bare `TcpStream::connect` has no deadline at all).
///
/// # Errors
///
/// Returns connection or protocol errors; timeouts surface as
/// `TimedOut`/`WouldBlock` errors naming the phase that stalled.
pub fn http_get_timeout(
    addr: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{addr}: no usable socket address"),
            )
        })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("connect to {addr} failed within {timeout:?}: {e}"),
        )
    })?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_names_are_legal() {
        assert_eq!(prom_name("tensor.pool.hit"), "tgl_tensor_pool_hit");
        assert_eq!(prom_name("pool.busy_ns.t3"), "tgl_pool_busy_ns_t3");
    }

    #[test]
    fn render_contains_counters_gauges_and_histograms() {
        crate::counter!("test.expo.count").add(3);
        crate::gauge!("test.expo.level").set(1.5);
        crate::histogram!("test.expo.lat_ns").record_always(700);
        let doc = render_prometheus();
        assert!(doc.contains("# TYPE tgl_test_expo_count_total counter"));
        assert!(doc.contains("tgl_test_expo_count_total"));
        assert!(doc.contains("# TYPE tgl_test_expo_level gauge"));
        assert!(doc.contains("tgl_test_expo_level 1.5"));
        assert!(doc.contains("# TYPE tgl_test_expo_lat_ns histogram"));
        assert!(doc.contains("tgl_test_expo_lat_ns_bucket{le=\"+Inf\"}"));
        assert!(doc.contains("tgl_test_expo_lat_ns_sum"));
        assert!(doc.contains("tgl_test_expo_lat_ns_count"));
        // Bucket lines are cumulative and end at the +Inf total.
        let bucket_lines: Vec<u64> = doc
            .lines()
            .filter(|l| l.starts_with("tgl_test_expo_lat_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_lines.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn server_serves_metrics_healthz_report_and_quit() {
        let addr = start("127.0.0.1:0").expect("bind");
        let addr = addr.to_string();

        let (code, body) = http_get(&addr, "/metrics").expect("scrape /metrics");
        assert_eq!(code, 200);
        assert!(body.contains("# TYPE "), "exposition body: {body:?}");

        let (code, body) = http_get(&addr, "/healthz").expect("scrape /healthz");
        assert!(code == 200 || code == 503);
        assert!(body.contains("\"status\""));

        let (code, _) = http_get(&addr, "/nope").expect("scrape 404");
        assert_eq!(code, 404);

        let (code, body) = http_get(&addr, "/profile.json").expect("scrape profile");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-profile/v1\""));

        let (code, body) = http_get(&addr, "/critpath.json").expect("scrape critpath");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-critpath/v1\""));

        let (code, body) = http_get(&addr, "/flight.json").expect("scrape flight");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-flight/v1\""));
        assert!(body.contains("\"reason\": \"request\""));

        publish_report("{\"schema\":\"tgl-run-report/v2\"}".into());
        let (code, body) = http_get(&addr, "/report.json").expect("scrape report");
        assert_eq!(code, 200);
        assert!(body.contains("tgl-run-report"));

        let (code, body) = http_get(&addr, "/timeseries.json").expect("scrape timeseries");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-timeseries/v1\""));

        let (code, body) = http_get(&addr, "/alerts.json").expect("scrape alerts");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-alerts/v1\""));

        let (code, body) = http_get(&addr, "/insight.json").expect("scrape insight");
        assert_eq!(code, 200);
        assert!(body.contains("\"schema\": \"tgl-insight/v1\""));

        let (code, body) = http_get(&addr, "/dashboard").expect("scrape dashboard");
        assert_eq!(code, 200);
        assert!(body.starts_with("<!DOCTYPE html>"));
        assert!(body.contains("</html>"));

        assert!(!wait_for_quit(Duration::from_millis(1)));
        let (code, _) = http_get(&addr, "/quit").expect("quit");
        assert_eq!(code, 200);
        assert!(wait_for_quit(Duration::from_secs(5)));
    }

    #[test]
    fn http_get_timeout_names_the_connect_phase() {
        // Nothing listens on the port; the refusal (or timeout) must
        // come back as an error naming the connect phase, not a hang.
        let err = http_get_timeout("127.0.0.1:1", "/metrics", Duration::from_millis(500))
            .expect_err("nothing listens on port 1");
        assert!(
            err.to_string().contains("connect to 127.0.0.1:1"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn slow_dashboard_render_does_not_block_healthz() {
        let addr = start("127.0.0.1:0").expect("bind").to_string();
        TEST_RENDER_DELAY_MS.store(800, Ordering::Relaxed);
        let slow = {
            let addr = addr.clone();
            std::thread::spawn(move || http_get(&addr, "/dashboard").expect("slow dashboard"))
        };
        // Give the slow request time to occupy its worker.
        std::thread::sleep(Duration::from_millis(100));
        let t0 = std::time::Instant::now();
        let (code, _) = http_get(&addr, "/healthz").expect("healthz during slow render");
        let elapsed = t0.elapsed();
        TEST_RENDER_DELAY_MS.store(0, Ordering::Relaxed);
        assert!(code == 200 || code == 503);
        assert!(
            elapsed < Duration::from_millis(600),
            "/healthz waited {elapsed:?} behind a slow /dashboard render"
        );
        let (code, body) = slow.join().expect("join slow scrape");
        assert_eq!(code, 200);
        assert!(body.contains("</html>"));
    }
}
