//! Log2-bucketed latency histograms and gauges.
//!
//! Counters answer "how many"; these answer "how long" and "how much
//! right now". A [`Histogram`] records `u64` samples (nanoseconds by
//! convention — names end in `_ns`) into 64 power-of-two buckets:
//! bucket `i` holds values in `[2^i, 2^(i+1))`, with 0 folded into
//! bucket 0. Everything is a relaxed atomic, so recording from pool
//! workers is wait-free and a [`HistSnapshot`] taken after a parallel
//! region is **thread-count-invariant**: the same multiset of recorded
//! values produces identical `count`/`sum`/bucket vectors regardless of
//! how the recording work was partitioned (asserted in
//! `parallel_determinism.rs`).
//!
//! Quantiles ([`HistSnapshot::quantile`]) interpolate linearly inside
//! the selected bucket, so estimates are exact at bucket boundaries and
//! off by at most the bucket width (a factor of 2) inside one — plenty
//! for "did p99 move an order of magnitude". The true maximum is
//! tracked exactly.
//!
//! A [`Gauge`] is a last-write-wins `f64` (parameter-update ratio,
//! gradient norm, loss trend): `gauge!("health.grad_norm").set(x)`.
//!
//! Both types share the [`metrics`](crate::metrics) enable gate: when
//! metering is disabled, `record`/`set` are a relaxed load + branch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::enabled;

/// Number of log2 buckets (covers the full `u64` range).
pub const NUM_BUCKETS: usize = 64;

/// Bucket index of a recorded value: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// A named log2-bucketed histogram. Obtain via [`histogram`] or the
/// `histogram!` macro; instances live for the life of the process.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Histogram {
    fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample (no-op when metering is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.record_always(v);
        }
    }

    /// Records one sample regardless of the enable gate (used by tests
    /// and by drains that must not lose data).
    pub fn record_always(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Starts a timer that records its elapsed nanoseconds on drop.
    /// When metering is disabled the guard is inert (no clock read).
    #[inline]
    pub fn timer(&'static self) -> HistTimer {
        HistTimer {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }

    /// A consistent copy of the histogram's current state.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Zeroes all state (registration persists).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII timer produced by [`Histogram::timer`].
#[derive(Debug)]
pub struct HistTimer {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

/// A point-in-time copy of one histogram: mergeable, diffable, and the
/// unit run reports and the exposition endpoint consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Per-bucket sample counts.
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) with linear interpolation
    /// inside the selected bucket. Returns 0 for an empty snapshot.
    /// The estimate is clamped to the tracked maximum, so `quantile(1.0)`
    /// is exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let lo = bucket_lo(i) as f64;
                let hi = (bucket_hi(i).min(self.max.max(1))) as f64;
                // Midpoint rule: the j-th of c samples sits at fraction
                // (j - 0.5)/c of the bucket, so a fully consumed bucket
                // lands inside it, not on its upper edge.
                let frac = ((target - cum as f64 - 0.5) / c as f64).clamp(0.0, 1.0);
                return (lo + frac * (hi - lo).max(0.0)).min(self.max as f64);
            }
            cum = next;
        }
        self.max as f64
    }

    /// Element-wise merge of two snapshots (e.g. per-shard histograms).
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
        }
    }

    /// Samples recorded between `earlier` and `self` (saturating, so a
    /// reset between the two snapshots yields zeros rather than wrap).
    /// `max` is carried from `self`: the true per-interval max is not
    /// recoverable from cumulative state, so the lifetime max is the
    /// honest upper bound.
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: std::array::from_fn(|i| {
                self.buckets[i].saturating_sub(earlier.buckets[i])
            }),
        }
    }
}

/// A named last-write-wins `f64` gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge (no-op when metering is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Shared registry shape for histograms and gauges: a `HashMap` for
/// O(1) name lookup plus a `Vec` preserving registration order.
struct Registry<T: 'static> {
    by_name: HashMap<&'static str, &'static T>,
    in_order: Vec<&'static T>,
}

impl<T> Registry<T> {
    fn new() -> Registry<T> {
        Registry {
            by_name: HashMap::new(),
            in_order: Vec::new(),
        }
    }

    fn get_or_insert(&mut self, name: &'static str, make: impl FnOnce(&'static str) -> T) -> &'static T {
        if let Some(v) = self.by_name.get(name) {
            return v;
        }
        let v: &'static T = Box::leak(Box::new(make(name)));
        self.by_name.insert(name, v);
        self.in_order.push(v);
        v
    }
}

static HISTOGRAMS: std::sync::LazyLock<Mutex<Registry<Histogram>>> =
    std::sync::LazyLock::new(|| Mutex::new(Registry::new()));
static GAUGES: std::sync::LazyLock<Mutex<Registry<Gauge>>> =
    std::sync::LazyLock::new(|| Mutex::new(Registry::new()));

/// Returns the histogram registered under `name`, creating it on first
/// use. Prefer the `histogram!` macro at instrumentation sites.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
    reg.get_or_insert(name, Histogram::new)
}

/// Returns the gauge registered under `name`, creating it on first
/// use. Prefer the `gauge!` macro at instrumentation sites.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = GAUGES.lock().unwrap_or_else(|e| e.into_inner());
    reg.get_or_insert(name, Gauge::new)
}

/// Snapshot of every registered histogram as `(name, snapshot)`,
/// sorted by name for stable report output.
pub fn hist_snapshot() -> Vec<(&'static str, HistSnapshot)> {
    let reg = HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<_> = reg.in_order.iter().map(|h| (h.name, h.snapshot())).collect();
    v.sort_unstable_by_key(|&(n, _)| n);
    v
}

/// Snapshot of every registered gauge as `(name, value)`, sorted by
/// name.
pub fn gauge_snapshot() -> Vec<(&'static str, f64)> {
    let reg = GAUGES.lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<_> = reg.in_order.iter().map(|g| (g.name, g.get())).collect();
    v.sort_unstable_by_key(|&(n, _)| n);
    v
}

/// Zeroes every registered histogram (registrations persist).
pub fn reset_histograms() {
    let reg = HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
    for h in reg.in_order.iter() {
        h.reset();
    }
}

/// Interns a histogram at the call site, mirroring `counter!`.
///
/// ```
/// tgl_obs::histogram!("example.latency_ns").record(1500);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::hist::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::hist::histogram($name))
    }};
}

/// Interns a gauge at the call site, mirroring `counter!`.
///
/// ```
/// tgl_obs::gauge!("example.level").set(0.5);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::hist::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::hist::gauge($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i).max(1)), i);
            if i < 63 {
                assert_eq!(bucket_index(bucket_hi(i) - 1), i);
                assert_eq!(bucket_index(bucket_hi(i)), i + 1);
            }
        }
    }

    #[test]
    fn records_land_in_their_buckets() {
        let h = histogram("test.hist.buckets");
        h.reset();
        for v in [0u64, 1, 2, 3, 7, 8, 1000] {
            h.record_always(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1021);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 2); // 0, 1
        assert_eq!(s.buckets[1], 2); // 2, 3
        assert_eq!(s.buckets[2], 1); // 7
        assert_eq!(s.buckets[3], 1); // 8
        assert_eq!(s.buckets[9], 1); // 1000
    }

    #[test]
    fn quantiles_on_known_uniform_distribution() {
        let h = histogram("test.hist.quantiles");
        h.reset();
        // 1..=1024 once each: the true q-quantile is ~1024q; log2
        // buckets bound the estimate within a factor of 2.
        for v in 1..=1024u64 {
            h.record_always(v);
        }
        let s = h.snapshot();
        for (q, truth) in [(0.5, 512.0), (0.9, 922.0), (0.99, 1014.0)] {
            let est = s.quantile(q);
            assert!(
                est >= truth / 2.0 && est <= truth * 2.0,
                "q={q}: estimate {est} not within 2x of {truth}"
            );
        }
        assert_eq!(s.quantile(1.0), 1024.0, "p100 is the exact max");
        assert_eq!(s.quantile(0.0), 1.0);
    }

    #[test]
    fn quantile_is_exact_for_single_valued_distributions() {
        let h = histogram("test.hist.constant");
        h.reset();
        for _ in 0..100 {
            h.record_always(4096);
        }
        let s = h.snapshot();
        // All mass in one bucket whose hi is clamped to the max.
        assert_eq!(s.quantile(0.5), 4096.0);
        assert_eq!(s.quantile(0.99), 4096.0);
    }

    #[test]
    fn concurrent_recording_merges_exactly() {
        let h = histogram("test.hist.concurrent");
        h.reset();
        let threads = 8;
        let per = 1000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..per {
                        h.record_always(t * per + i + 1);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        // Sum of 1..=8000
        assert_eq!(s.sum, (threads * per) * (threads * per + 1) / 2);
        assert_eq!(s.max, threads * per);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn snapshot_merge_and_diff_are_inverse() {
        let h = histogram("test.hist.diff");
        h.reset();
        h.record_always(10);
        h.record_always(100);
        let early = h.snapshot();
        h.record_always(1000);
        let late = h.snapshot();
        let delta = late.diff(&early);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.sum, 1000);
        assert_eq!(early.merge(&delta).count, late.count);
        assert_eq!(early.merge(&delta).sum, late.sum);
        assert_eq!(early.merge(&delta).buckets, late.buckets);
    }

    #[test]
    fn disabled_metering_drops_records_and_timers() {
        let h = histogram("test.hist.gated");
        h.reset();
        crate::metrics::set_enabled(false);
        h.record(5);
        {
            let _t = h.timer();
        }
        crate::metrics::set_enabled(true);
        assert_eq!(h.snapshot().count, 0);
        h.record(5);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn timer_records_elapsed_nanos() {
        let h = histogram("test.hist.timer");
        h.reset();
        {
            let _t = h.timer();
            std::thread::sleep(Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000_000, "timer recorded {}ns", s.sum);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let g = gauge("test.gauge.basic");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        assert!(std::ptr::eq(g, gauge("test.gauge.basic")));
        assert!(gauge_snapshot()
            .iter()
            .any(|&(n, v)| n == "test.gauge.basic" && v == -2.25));
    }

    #[test]
    fn macros_cache_lookup() {
        let a = histogram!("test.hist.macro");
        let b = histogram!("test.hist.macro");
        assert!(std::ptr::eq(a, b));
        let ga = gauge!("test.gauge.macro");
        let gb = gauge!("test.gauge.macro");
        assert!(std::ptr::eq(ga, gb));
    }

    #[test]
    fn snapshot_listing_is_sorted() {
        histogram("test.hist.zz").record_always(1);
        histogram("test.hist.aa").record_always(1);
        let snap = hist_snapshot();
        assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
