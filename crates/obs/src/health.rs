//! Structured health events.
//!
//! Subsystems report conditions ("loss went NaN at epoch 2 batch 17",
//! "loss trend diverging") as [`HealthEvent`]s instead of panicking:
//! the event is recorded here, surfaced through `/healthz` and the
//! run report's `health` section, and the *caller's* policy decides
//! whether the run continues. The sink is bounded ([`MAX_EVENTS`]) so a
//! pathological run cannot grow it without limit; overflow is counted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Severity of a health event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Informational (e.g. "health monitoring enabled").
    Info,
    /// Degraded but running (e.g. a skipped non-finite batch).
    Warn,
    /// The run is considered failing.
    Fail,
}

impl Level {
    /// Lowercase label used in reports and the exposition endpoint.
    pub fn label(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Fail => "fail",
        }
    }
}

/// One recorded health condition.
#[derive(Debug, Clone)]
pub struct HealthEvent {
    /// Severity.
    pub level: Level,
    /// Reporting subsystem (`"trainer.loss"`, `"trainer.grad"`, ...).
    pub source: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Monotonic sequence number (process-wide).
    pub seq: u64,
}

/// Events kept in memory; older events stay, later ones are dropped
/// (the first occurrences are the diagnostic ones).
pub const MAX_EVENTS: usize = 1024;

static EVENTS: Mutex<Vec<HealthEvent>> = Mutex::new(Vec::new());
static SEQ: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Records a health event; returns its sequence number.
pub fn record(level: Level, source: &'static str, message: String) -> u64 {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    {
        let mut ev = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
        if ev.len() < MAX_EVENTS {
            ev.push(HealthEvent {
                level,
                source,
                message,
                seq,
            });
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Mirror into the flight recorder so post-mortem dumps carry the
    // health timeline (no-op when the recorder is off).
    crate::flight::note_health(level, source, seq);
    seq
}

/// A copy of all recorded events, in record order.
pub fn events() -> Vec<HealthEvent> {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The worst severity recorded so far (`None` when no events).
pub fn worst() -> Option<Level> {
    EVENTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|e| e.level)
        .max()
}

/// Events that did not fit in the bounded sink.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears recorded events (between measured runs).
pub fn reset() {
    EVENTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Health state is process-global and other tests in this crate may
    // record events concurrently, so assertions here are monotonic
    // (presence, ordering) rather than exact-count.

    #[test]
    fn events_record_in_order_with_worst_tracking() {
        let a = record(Level::Info, "test.health", "starting".into());
        let b = record(Level::Warn, "test.health", "wobbling".into());
        assert!(b > a);
        let evs = events();
        let mine: Vec<_> = evs.iter().filter(|e| e.source == "test.health").collect();
        assert!(mine.len() >= 2);
        assert!(mine.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(worst() >= Some(Level::Warn));
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Fail);
        assert_eq!(Level::Fail.label(), "fail");
    }
}
