//! The `/dashboard` page: a self-contained live training dashboard.
//!
//! One HTML document, zero external assets — no CDN scripts, no
//! stylesheets, no fonts, no images. Inline JS polls the expo server's
//! own `/timeseries.json`, `/alerts.json`, and `/healthz` every couple
//! of seconds and renders SVG sparklines (built as DOM nodes, no
//! libraries) for the headline series — `train.loss`, `val.ap`,
//! `step.latency_ns.p99`, `pipeline.queue.occupancy` — plus whatever
//! else the store holds, an alert banner listing firing rules, a
//! health badge, and — when the introspection layer is on — a
//! per-layer panel built from `/insight.json` (parameter groups with
//! their latest gradient norm, weight norm, and update ratio;
//! non-finite groups sort to the top and are highlighted). Works from `file://` saves too: everything it needs
//! ships in this one response, which is what "std-only dashboard"
//! means for a dependency-free workspace.

/// The complete `/dashboard` document.
pub fn html() -> &'static str {
    PAGE
}

const PAGE: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>tgl dashboard</title>
<style>
  body { background:#101418; color:#d8dee6; font:13px/1.4 monospace; margin:0; padding:16px; }
  h1 { font-size:16px; margin:0 0 4px 0; }
  #meta { color:#7b8794; margin-bottom:12px; }
  #badge { display:inline-block; padding:1px 8px; border-radius:3px; font-weight:bold; }
  .ok   { background:#1d3b2a; color:#5dd39e; }
  .warn { background:#3b331d; color:#e8c45d; }
  .fail { background:#3b1d1d; color:#e86a5d; }
  #alerts { margin:0 0 12px 0; }
  .alert { padding:4px 8px; margin:2px 0; border-left:3px solid #e86a5d; background:#1b1416; }
  .alert.resolved { border-color:#5dd39e; opacity:0.6; }
  #charts { display:flex; flex-wrap:wrap; gap:12px; }
  .card { background:#161b21; border:1px solid #232a32; border-radius:4px; padding:8px; }
  .card .name { color:#9fb3c8; }
  .card .val { float:right; color:#e8eef4; }
  svg { display:block; margin-top:4px; }
  polyline { fill:none; stroke:#4aa8ff; stroke-width:1.5; }
  .gap circle { fill:#e86a5d; }
  #insight table { border-collapse:collapse; margin-top:4px; }
  #insight th, #insight td { text-align:right; padding:1px 10px 1px 0; }
  #insight th:first-child, #insight td:first-child { text-align:left; }
  #insight th { color:#9fb3c8; font-weight:normal; }
  #insight tr.bad td { color:#e86a5d; font-weight:bold; }
</style>
</head>
<body>
<h1>tgl dashboard <span id="badge" class="ok">...</span></h1>
<div id="meta">polling /timeseries.json + /alerts.json every 2s</div>
<div id="alerts"></div>
<div id="insight"></div>
<div id="charts"></div>
<script>
"use strict";
var PREFERRED = ["train.loss", "val.ap", "step.latency_ns.p99", "pipeline.queue.occupancy"];
var MAX_CHARTS = 12, W = 280, H = 60;

function fetchJson(path) {
  return fetch(path, {cache: "no-store"}).then(function (r) { return r.json(); });
}

function fmt(v) {
  if (v === null || !isFinite(v)) return "NaN";
  if (v !== 0 && (Math.abs(v) >= 1e6 || Math.abs(v) < 1e-3)) return v.toExponential(2);
  return String(Math.round(v * 10000) / 10000);
}

function sparkline(points) {
  var svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("width", W); svg.setAttribute("height", H);
  var vals = points.map(function (p) { return p[1]; }).filter(function (v) { return v !== null && isFinite(v); });
  if (!vals.length) return svg;
  var lo = Math.min.apply(null, vals), hi = Math.max.apply(null, vals);
  if (hi === lo) { hi = lo + 1; }
  var n = points.length, coords = [];
  for (var i = 0; i < n; i++) {
    var v = points[i][1];
    var x = n > 1 ? (i / (n - 1)) * (W - 4) + 2 : W / 2;
    if (v === null || !isFinite(v)) {
      // non-finite point: mark it in red at the top edge
      var g = document.createElementNS("http://www.w3.org/2000/svg", "g");
      g.setAttribute("class", "gap");
      var c = document.createElementNS("http://www.w3.org/2000/svg", "circle");
      c.setAttribute("cx", x); c.setAttribute("cy", 4); c.setAttribute("r", 2);
      g.appendChild(c); svg.appendChild(g);
      continue;
    }
    var y = H - 4 - ((v - lo) / (hi - lo)) * (H - 8);
    coords.push(x + "," + y);
  }
  var line = document.createElementNS("http://www.w3.org/2000/svg", "polyline");
  line.setAttribute("points", coords.join(" "));
  svg.appendChild(line);
  return svg;
}

function pickSeries(all) {
  var byName = {}, out = [];
  all.forEach(function (s) { byName[s.name] = s; });
  PREFERRED.forEach(function (n) { if (byName[n]) { out.push(byName[n]); delete byName[n]; } });
  all.forEach(function (s) {
    if (out.length < MAX_CHARTS && byName[s.name] && s.points.length > 1) {
      out.push(s); delete byName[s.name];
    }
  });
  return out;
}

function renderCharts(doc) {
  var root = document.getElementById("charts");
  root.textContent = "";
  pickSeries(doc.series || []).forEach(function (s) {
    var card = document.createElement("div");
    card.className = "card";
    var head = document.createElement("div");
    var name = document.createElement("span");
    name.className = "name"; name.textContent = s.name;
    var val = document.createElement("span");
    var last = s.points.length ? s.points[s.points.length - 1][1] : null;
    val.className = "val"; val.textContent = fmt(last);
    head.appendChild(name); head.appendChild(val);
    card.appendChild(head);
    card.appendChild(sparkline(s.points));
    root.appendChild(card);
  });
}

function renderAlerts(doc) {
  var root = document.getElementById("alerts");
  root.textContent = "";
  (doc.rules || []).forEach(function (r) {
    if (!r.firing && !r.fired_total) return;
    var div = document.createElement("div");
    div.className = "alert" + (r.firing ? "" : " resolved");
    div.textContent = (r.firing ? "FIRING " : "resolved ") + r.name + ": " +
      r.metric + " " + r.condition + " [" + r.severity + "] last=" + fmt(r.last_value) +
      " fired " + r.fired_total + "x";
    root.appendChild(div);
  });
}

function renderInsight(doc) {
  var root = document.getElementById("insight");
  root.textContent = "";
  var groups = {};
  (doc.stats || []).forEach(function (s) {
    var m = /^insight\.layer\.(.+)\.(grad_norm|weight_norm|update_ratio)$/.exec(s.name);
    if (!m) return;
    if (!groups[m[1]]) groups[m[1]] = {};
    groups[m[1]][m[2]] = s.last;
  });
  var names = Object.keys(groups);
  if (!names.length) return;
  // Non-finite gradient norms first, then descending norm: the
  // diverged layer tops the panel.
  names.sort(function (a, b) {
    var ka = groups[a].grad_norm, kb = groups[b].grad_norm;
    ka = (ka === null || !isFinite(ka)) ? Infinity : ka;
    kb = (kb === null || !isFinite(kb)) ? Infinity : kb;
    return kb - ka || (a < b ? -1 : 1);
  });
  var card = document.createElement("div");
  card.className = "card";
  var head = document.createElement("div");
  head.className = "name";
  head.textContent = "model introspection (" + (doc.steps || 0) + " steps)";
  card.appendChild(head);
  var table = document.createElement("table");
  var hr = document.createElement("tr");
  ["group", "grad_norm", "weight_norm", "update_ratio"].forEach(function (h) {
    var th = document.createElement("th"); th.textContent = h; hr.appendChild(th);
  });
  table.appendChild(hr);
  names.forEach(function (n) {
    var g = groups[n], tr = document.createElement("tr");
    var bad = [g.grad_norm, g.weight_norm, g.update_ratio].some(function (v) {
      return v === null || !isFinite(v);
    });
    if (bad) tr.className = "bad";
    [n, fmt(g.grad_norm), fmt(g.weight_norm), fmt(g.update_ratio)].forEach(function (c) {
      var td = document.createElement("td"); td.textContent = c; tr.appendChild(td);
    });
    table.appendChild(tr);
  });
  card.appendChild(table);
  root.appendChild(card);
}

function renderHealth(status) {
  var badge = document.getElementById("badge");
  badge.textContent = status;
  badge.className = status === "ok" ? "ok" : (status === "fail" ? "fail" : "warn");
}

function tick() {
  fetchJson("/timeseries.json").then(renderCharts).catch(function () {});
  fetchJson("/alerts.json").then(renderAlerts).catch(function () {});
  fetchJson("/insight.json").then(renderInsight).catch(function () {});
  fetch("/healthz", {cache: "no-store"})
    .then(function (r) { renderHealth(r.status === 200 ? "ok" : "fail"); })
    .catch(function () { renderHealth("down"); });
}

tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_self_contained_html() {
        let page = html();
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("</html>"));
        assert!(page.contains("/timeseries.json"));
        assert!(page.contains("/alerts.json"));
        assert!(page.contains("/insight.json"));
        assert!(page.contains("update_ratio"));
        assert!(page.contains("svg"));
        // Zero external assets: nothing fetched from elsewhere. The
        // only absolute URL allowed is the SVG XML namespace constant,
        // which the browser never requests.
        assert!(!page.contains("https://"));
        let externals = page
            .matches("http://")
            .count();
        assert_eq!(externals, page.matches("http://www.w3.org/2000/svg").count());
        assert!(!page.contains("src="));
        assert!(!page.contains("<link"));
        assert!(!page.contains("@import"));
    }
}
