//! Critical-path analysis over tracer spans.
//!
//! The profiler says where CPU time goes; this module says what the
//! *wall clock* was waiting on. It consumes the spans recorded by
//! [`crate::trace`] (thread ids + parent hints included), reduces them
//! to non-overlapping per-thread *leaf segments* (the innermost active
//! span owns each instant, so container spans like `step` contribute
//! only their self time), classifies every segment into a pipeline
//! stage (sample / transfer / forward / backward / opt / other), and
//! computes:
//!
//! - per-stage **serial** time (sum of segment durations), split into
//!   **exclusive** time (that stage alone was running) and
//!   **overlapped** time (some other thread was also busy);
//! - the **critical path**: a maximal chain of segments ordered by
//!   time, preferring parent-linked and same-thread predecessors, whose
//!   total is the best lower bound on achievable wall time;
//! - **overlap efficiency** (`serial / wall`; 1.0 = fully sequential,
//!   approaching the thread count = perfectly overlapped) and pool
//!   busy/wait attribution from the runtime counters.
//!
//! This is the acceptance instrument for the pipelined trainer
//! (ROADMAP item 2): a pipelining refactor must show transfer/sample
//! segments moving from `exclusive` to `overlapped` and the critical
//! path shrinking toward the forward/backward chain.

use crate::trace::Span;
use std::fmt::Write as _;

/// Schema tag of the JSON artifact rendered by [`to_json`].
pub const SCHEMA: &str = "tgl-critpath/v1";

/// Pipeline stage a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Temporal neighbor sampling + dedup.
    Sample,
    /// Feature/device transfers and staging.
    Transfer,
    /// Forward compute (attention, GEMM, embeddings, ...).
    Forward,
    /// Backward pass.
    Backward,
    /// Optimizer step.
    Opt,
    /// Container self-time, pool bookkeeping, everything else.
    Other,
}

impl Stage {
    /// All stages in display order.
    pub const ALL: [Stage; 6] = [
        Stage::Sample,
        Stage::Transfer,
        Stage::Forward,
        Stage::Backward,
        Stage::Opt,
        Stage::Other,
    ];

    /// Lowercase label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Sample => "sample",
            Stage::Transfer => "transfer",
            Stage::Forward => "forward",
            Stage::Backward => "backward",
            Stage::Opt => "opt",
            Stage::Other => "other",
        }
    }
}

/// Maps a span name to its pipeline stage. Profiler op spans carry a
/// shape suffix (`matmul[64x100,100x100]`) which is stripped first.
pub fn classify(name: &str) -> Stage {
    let base = name.split('[').next().unwrap_or(name);
    if base.ends_with(".bwd") || base == "backward" {
        return Stage::Backward;
    }
    match base {
        // "prefetch" is the pipelined trainer's sampler-stage
        // container; its self time is plan assembly + negative draws.
        "sample" | "dedup" | "time_zero" | "time_nbrs" | "prefetch" => Stage::Sample,
        "feature_load" | "preload" | "prep_batch" => Stage::Transfer,
        "opt_step" => Stage::Opt,
        "step" | "epoch" | "eval" | "forward" => Stage::Other,
        _ if base.starts_with("transfer") => Stage::Transfer,
        _ if base.starts_with("pool.") => Stage::Other,
        _ => Stage::Forward,
    }
}

/// One leaf segment: a half-open interval `[start_ns, end_ns)` on one
/// thread during which `name` was the innermost active span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Innermost span's name.
    pub name: &'static str,
    /// Stage of that span.
    pub stage: Stage,
    /// Thread the segment ran on.
    pub tid: u32,
    /// Start offset (ns from trace epoch).
    pub start_ns: u64,
    /// End offset (ns from trace epoch).
    pub end_ns: u64,
    /// Owning span's id (0 when the recorder never allocated one).
    pub id: u64,
    /// Owning span's parent hint (0 = none).
    pub parent: u64,
}

impl Segment {
    fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Reduces spans to per-thread leaf segments. For each thread the
/// spans form a forest of nested intervals; a sweep with an explicit
/// stack assigns every instant to the innermost span covering it, so
/// container spans contribute exactly their self time.
pub fn leaf_segments(spans: &[Span]) -> Vec<Segment> {
    let mut by_tid: std::collections::HashMap<u32, Vec<&Span>> = std::collections::HashMap::new();
    for s in spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    let mut segs = Vec::new();
    for (tid, mut list) in by_tid {
        // Outer (longer) spans first at equal start so they sit deeper
        // in the stack than the children they contain.
        list.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
        // Stack entries: (span, cursor) — cursor is the next instant of
        // the span not yet assigned to a deeper child.
        let mut stack: Vec<(&Span, u64)> = Vec::new();
        let emit = |span: &Span, from: u64, to: u64, segs: &mut Vec<Segment>| {
            if to > from {
                segs.push(Segment {
                    name: span.name,
                    stage: classify(span.name),
                    tid,
                    start_ns: from,
                    end_ns: to,
                    id: span.id,
                    parent: span.parent(),
                });
            }
        };
        for s in &list {
            // Close spans that end before this one starts.
            while let Some(&(top, cursor)) = stack.last() {
                if top.end_ns() <= s.start_ns {
                    emit(top, cursor, top.end_ns(), &mut segs);
                    stack.pop();
                    if let Some(last) = stack.last_mut() {
                        last.1 = last.1.max(top.end_ns());
                    }
                } else {
                    break;
                }
            }
            // The parent ran alone from its cursor until this child
            // starts; spans recorded out of nesting order (overlapping
            // but not nested) are treated as if nested — close enough
            // for self-time accounting and cannot happen from the
            // guard-based recorder.
            if let Some(last) = stack.last_mut() {
                emit(last.0, last.1, s.start_ns.min(last.0.end_ns()), &mut segs);
                last.1 = last.1.max(s.start_ns.min(last.0.end_ns()));
            }
            if s.dur_ns == 0 {
                continue;
            }
            stack.push((s, s.start_ns));
        }
        while let Some((top, cursor)) = stack.pop() {
            emit(top, cursor, top.end_ns(), &mut segs);
            if let Some(last) = stack.last_mut() {
                last.1 = last.1.max(top.end_ns());
            }
        }
    }
    segs.sort_by_key(|s| (s.start_ns, s.tid));
    segs
}

/// Per-stage timing row in an [`Analysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// The stage.
    pub stage: Stage,
    /// Sum of segment durations (CPU-serial time), seconds.
    pub serial_s: f64,
    /// Portion of busy wall time where only this stage ran, seconds.
    pub exclusive_s: f64,
    /// Portion of this stage's busy time overlapped with other
    /// concurrent work, seconds.
    pub overlapped_s: f64,
    /// Time this stage contributes to the critical path, seconds.
    pub critical_s: f64,
    /// Number of leaf segments.
    pub segments: usize,
}

/// Result of [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Traced wall time: `max(end) - min(start)` over all spans, s.
    pub wall_s: f64,
    /// Wall time during which at least one thread was busy, s.
    pub busy_s: f64,
    /// Total serial work: sum of all leaf-segment durations, s.
    pub serial_s: f64,
    /// Critical-path total, s.
    pub critical_s: f64,
    /// Wall time not on the critical path (`wall - critical`), s.
    pub wait_s: f64,
    /// `serial / wall`; 1.0 = sequential, N = N-way overlapped.
    pub overlap_efficiency: f64,
    /// Distinct thread ids observed.
    pub threads: usize,
    /// Number of `step` container spans (training steps traced).
    pub steps: usize,
    /// Spans consumed.
    pub spans: usize,
    /// Leaf segments produced.
    pub segments: usize,
    /// Per-stage rows (all six stages, display order).
    pub stages: Vec<StageRow>,
    /// Runtime pool busy time (sum of `pool.busy_ns.t*` counters), ns.
    pub pool_busy_ns: u64,
    /// Runtime pool wait time (`pool.wait_ns` histogram sum), ns.
    pub pool_wait_ns: u64,
}

fn stage_index(stage: Stage) -> usize {
    Stage::ALL.iter().position(|&s| s == stage).unwrap()
}

/// Analyzes a set of tracer spans (from [`crate::trace::take`] or
/// [`crate::trace::snapshot`]). Returns a zeroed analysis when the
/// trace is empty.
pub fn analyze(spans: &[Span]) -> Analysis {
    let ns = 1e-9;
    let mut rows: Vec<StageRow> = Stage::ALL
        .iter()
        .map(|&stage| StageRow {
            stage,
            serial_s: 0.0,
            exclusive_s: 0.0,
            overlapped_s: 0.0,
            critical_s: 0.0,
            segments: 0,
        })
        .collect();
    let pool_busy_ns = pool_busy_total();
    let pool_wait_ns = crate::hist::hist_snapshot()
        .iter()
        .find(|(n, _)| *n == "pool.wait_ns")
        .map_or(0, |(_, s)| s.sum);
    if spans.is_empty() {
        return Analysis {
            wall_s: 0.0,
            busy_s: 0.0,
            serial_s: 0.0,
            critical_s: 0.0,
            wait_s: 0.0,
            overlap_efficiency: 0.0,
            threads: 0,
            steps: 0,
            spans: 0,
            segments: 0,
            stages: rows,
            pool_busy_ns,
            pool_wait_ns,
        };
    }

    let segs = leaf_segments(spans);
    let wall_start = spans.iter().map(|s| s.start_ns).min().unwrap();
    let wall_end = spans.iter().map(|s| s.end_ns()).max().unwrap();
    let wall_s = (wall_end - wall_start) as f64 * ns;

    let mut serial_s = 0.0;
    for seg in &segs {
        let row = &mut rows[stage_index(seg.stage)];
        row.serial_s += seg.dur_ns() as f64 * ns;
        row.segments += 1;
        serial_s += seg.dur_ns() as f64 * ns;
    }

    // Boundary sweep for exclusive vs overlapped attribution: between
    // consecutive boundaries the set of active segments is constant.
    // `delta` entries: (time, +1/-1, stage). Ends sort before starts at
    // equal time so back-to-back segments don't look overlapped.
    let mut bounds: Vec<(u64, i32, usize)> = Vec::with_capacity(segs.len() * 2);
    for seg in &segs {
        bounds.push((seg.start_ns, 1, stage_index(seg.stage)));
        bounds.push((seg.end_ns, -1, stage_index(seg.stage)));
    }
    bounds.sort_by_key(|&(t, d, _)| (t, d));
    let mut active = [0i64; 6];
    let mut total_active = 0i64;
    let mut busy_s = 0.0;
    let mut prev_t = bounds.first().map_or(0, |b| b.0);
    for (t, delta, si) in bounds {
        if t > prev_t && total_active > 0 {
            let dt = (t - prev_t) as f64 * ns;
            busy_s += dt;
            if total_active == 1 {
                let solo = active.iter().position(|&c| c > 0).unwrap();
                rows[solo].exclusive_s += dt;
            } else {
                for (k, &c) in active.iter().enumerate() {
                    if c > 0 {
                        rows[k].overlapped_s += dt;
                    }
                }
            }
        }
        prev_t = t;
        active[si] += i64::from(delta);
        total_active += i64::from(delta);
    }

    // Critical path: greedy backward walk from the last-ending segment.
    // Predecessor = the segment with the latest end not after our
    // start; ties prefer (a) our span's recorded parent, (b) a segment
    // sharing that parent, (c) same thread. The chain's gaps are wait.
    let mut by_end: Vec<&Segment> = segs.iter().collect();
    by_end.sort_by_key(|s| (s.end_ns, s.start_ns, s.tid));
    let mut critical_s = 0.0;
    if let Some(&last) = by_end.last() {
        let mut cur = last;
        loop {
            rows[stage_index(cur.stage)].critical_s += cur.dur_ns() as f64 * ns;
            critical_s += cur.dur_ns() as f64 * ns;
            // Candidates ending at or before cur.start.
            let cut = by_end.partition_point(|s| s.end_ns <= cur.start_ns);
            if cut == 0 {
                break;
            }
            let best_end = by_end[cut - 1].end_ns;
            let score = |s: &Segment| -> u32 {
                if cur.parent != 0 && s.id == cur.parent {
                    3
                } else if cur.parent != 0 && s.parent == cur.parent {
                    2
                } else if s.tid == cur.tid {
                    1
                } else {
                    0
                }
            };
            let mut best = by_end[cut - 1];
            let mut i = cut - 1;
            loop {
                let cand = by_end[i];
                if cand.end_ns < best_end {
                    break;
                }
                if score(cand) > score(best) {
                    best = cand;
                }
                if i == 0 {
                    break;
                }
                i -= 1;
            }
            cur = best;
        }
    }

    let steps = spans.iter().filter(|s| s.name == "step").count();
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    Analysis {
        wall_s,
        busy_s,
        serial_s,
        critical_s,
        wait_s: (wall_s - critical_s).max(0.0),
        overlap_efficiency: if wall_s > 0.0 { serial_s / wall_s } else { 0.0 },
        threads: tids.len(),
        steps,
        spans: spans.len(),
        segments: segs.len(),
        stages: rows,
        pool_busy_ns,
        pool_wait_ns,
    }
}

fn pool_busy_total() -> u64 {
    crate::metrics::snapshot()
        .iter()
        .filter(|(n, _)| n.starts_with("pool.busy_ns."))
        .map(|&(_, v)| v)
        .sum()
}

/// Renders the analysis as a `tgl-critpath/v1` JSON artifact.
pub fn to_json(a: &Analysis) -> String {
    let mut out = String::with_capacity(2048);
    let _ = write!(
        out,
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"wall_s\": {:.9},\n  \"busy_s\": {:.9},\n  \"serial_s\": {:.9},\n  \"critical_s\": {:.9},\n  \"wait_s\": {:.9},\n  \"overlap_efficiency\": {:.6},\n  \"threads\": {},\n  \"steps\": {},\n  \"spans\": {},\n  \"segments\": {},\n  \"pool_busy_ns\": {},\n  \"pool_wait_ns\": {},\n  \"stages\": [",
        a.wall_s,
        a.busy_s,
        a.serial_s,
        a.critical_s,
        a.wait_s,
        a.overlap_efficiency,
        a.threads,
        a.steps,
        a.spans,
        a.segments,
        a.pool_busy_ns,
        a.pool_wait_ns
    );
    for (i, row) in a.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"stage\": \"{}\", \"serial_s\": {:.9}, \"exclusive_s\": {:.9}, \"overlapped_s\": {:.9}, \"critical_s\": {:.9}, \"segments\": {}}}",
            row.stage.label(),
            row.serial_s,
            row.exclusive_s,
            row.overlapped_s,
            row.critical_s,
            row.segments
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the human-readable `--critpath` table.
pub fn render_table(a: &Analysis) -> String {
    let mut out = String::new();
    let pct = |x: f64| if a.wall_s > 0.0 { 100.0 * x / a.wall_s } else { 0.0 };
    let _ = writeln!(
        out,
        "critical path: {:.3}s of {:.3}s wall ({:.1}%), wait {:.3}s",
        a.critical_s,
        a.wall_s,
        pct(a.critical_s),
        a.wait_s
    );
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>11} {:>11} {:>10} {:>9}",
        "stage", "serial(s)", "exclusive(s)", "overlap(s)", "critpath(s)", "segments"
    );
    for row in &a.stages {
        let _ = writeln!(
            out,
            "{:<10} {:>10.3} {:>11.3} {:>11.3} {:>10.3} {:>9}",
            row.stage.label(),
            row.serial_s,
            row.exclusive_s,
            row.overlapped_s,
            row.critical_s,
            row.segments
        );
    }
    let _ = writeln!(
        out,
        "overlap efficiency {:.2}x over {} thread(s), {} step(s), busy {:.3}s",
        a.overlap_efficiency, a.threads, a.steps, a.busy_s
    );
    if a.pool_busy_ns > 0 || a.pool_wait_ns > 0 {
        let _ = writeln!(
            out,
            "pool: busy {:.3}s, wait {:.3}s",
            a.pool_busy_ns as f64 * 1e-9,
            a.pool_wait_ns as f64 * 1e-9
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Float sums over ns-scale values accumulate 1-ulp error.
    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-15
    }

    fn sp(name: &'static str, tid: u32, start: u64, dur: u64, id: u64, parent: u64) -> Span {
        Span {
            name,
            tid,
            start_ns: start,
            dur_ns: dur,
            id,
            args: if parent != 0 {
                Some(crate::trace::SpanArgs {
                    parent,
                    ..Default::default()
                })
            } else {
                None
            },
        }
    }

    #[test]
    fn classifies_known_span_names() {
        assert_eq!(classify("sample"), Stage::Sample);
        assert_eq!(classify("dedup"), Stage::Sample);
        assert_eq!(classify("prefetch"), Stage::Sample);
        assert_eq!(classify("feature_load"), Stage::Transfer);
        assert_eq!(classify("transfer_to[accel]"), Stage::Transfer);
        assert_eq!(classify("attention"), Stage::Forward);
        assert_eq!(classify("matmul[64x100,100x100]"), Stage::Forward);
        assert_eq!(classify("matmul.bwd"), Stage::Backward);
        assert_eq!(classify("backward"), Stage::Backward);
        assert_eq!(classify("opt_step"), Stage::Opt);
        assert_eq!(classify("step"), Stage::Other);
        assert_eq!(classify("pool.job"), Stage::Other);
    }

    #[test]
    fn fully_serial_chain_has_critical_path_equal_to_wall() {
        // One thread, three back-to-back stages: CP == serial == wall.
        let spans = vec![
            sp("sample", 0, 0, 100, 1, 0),
            sp("attention", 0, 100, 300, 2, 0),
            sp("backward", 0, 400, 200, 3, 0),
        ];
        let a = analyze(&spans);
        assert!(close(a.wall_s, 600e-9));
        assert!(close(a.serial_s, 600e-9));
        assert!(close(a.critical_s, 600e-9));
        assert!(a.wait_s < 1e-15);
        assert!((a.overlap_efficiency - 1.0).abs() < 1e-9);
        let fwd = &a.stages[stage_index(Stage::Forward)];
        assert!(close(fwd.serial_s, 300e-9));
        assert!(close(fwd.exclusive_s, 300e-9));
        assert_eq!(fwd.overlapped_s, 0.0);
    }

    #[test]
    fn fully_parallel_spans_overlap_completely() {
        // Two threads running the same interval: CP == wall == one
        // span; serial == 2x wall; everything overlapped.
        let spans = vec![
            sp("attention", 0, 0, 500, 1, 0),
            sp("attention", 1, 0, 500, 2, 0),
        ];
        let a = analyze(&spans);
        assert!(close(a.wall_s, 500e-9));
        assert!(close(a.serial_s, 1000e-9));
        assert!(close(a.critical_s, 500e-9));
        assert!((a.overlap_efficiency - 2.0).abs() < 1e-9);
        let fwd = &a.stages[stage_index(Stage::Forward)];
        assert_eq!(fwd.exclusive_s, 0.0);
        assert!(close(fwd.overlapped_s, 500e-9));
        assert_eq!(a.threads, 2);
    }

    #[test]
    fn mixed_overlap_known_answer() {
        // t0: sample [0,40) then forward [40,100).
        // t1: transfer [0,30) overlapping the sample.
        let spans = vec![
            sp("sample", 0, 0, 40, 1, 0),
            sp("attention", 0, 40, 60, 2, 0),
            sp("feature_load", 1, 0, 30, 3, 0),
        ];
        let a = analyze(&spans);
        assert!(close(a.wall_s, 100e-9));
        assert!(close(a.serial_s, 130e-9));
        assert!(close(a.busy_s, 100e-9));
        // CP: attention(60) <- sample(40) = 100; transfer loses the
        // tiebreak (sample ends later: 40 > 30).
        assert!(close(a.critical_s, 100e-9));
        assert!(a.wait_s < 1e-15);
        let sample = &a.stages[stage_index(Stage::Sample)];
        let transfer = &a.stages[stage_index(Stage::Transfer)];
        let fwd = &a.stages[stage_index(Stage::Forward)];
        assert!(close(sample.exclusive_s, 10e-9)); // [30,40)
        assert!(close(sample.overlapped_s, 30e-9)); // [0,30)
        assert!(close(transfer.overlapped_s, 30e-9));
        assert_eq!(transfer.exclusive_s, 0.0);
        assert!(close(fwd.exclusive_s, 60e-9));
        assert_eq!(transfer.critical_s, 0.0);
        assert!(close(sample.critical_s, 40e-9));
        assert!(close(fwd.critical_s, 60e-9));
    }

    #[test]
    fn container_spans_contribute_only_self_time() {
        // step [0,100) containing sample [10,40) and attention [40,90):
        // step's leaf segments are [0,10) and [90,100) => Other 20ns.
        let spans = vec![
            sp("step", 0, 0, 100, 1, 0),
            sp("sample", 0, 10, 30, 2, 1),
            sp("attention", 0, 40, 50, 3, 1),
        ];
        let a = analyze(&spans);
        assert!(
            close(a.serial_s, 100e-9),
            "self times must sum to wall on one thread"
        );
        let other = &a.stages[stage_index(Stage::Other)];
        assert!(close(other.serial_s, 20e-9));
        assert_eq!(a.steps, 1);
        // CP covers the whole wall: step-tail <- attention <- sample <- step-head.
        assert!(close(a.critical_s, 100e-9));
    }

    #[test]
    fn parent_hint_breaks_predecessor_ties() {
        // Two candidates end at t=50; cur's parent hint picks span 1.
        let spans = vec![
            sp("sample", 0, 0, 50, 1, 0),
            sp("feature_load", 1, 0, 50, 2, 0),
            sp("attention", 2, 50, 50, 3, 1),
        ];
        let a = analyze(&spans);
        let sample = &a.stages[stage_index(Stage::Sample)];
        let transfer = &a.stages[stage_index(Stage::Transfer)];
        assert!(close(sample.critical_s, 50e-9));
        assert_eq!(transfer.critical_s, 0.0);
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let a = analyze(&[]);
        assert_eq!(a.wall_s, 0.0);
        assert_eq!(a.spans, 0);
        assert_eq!(a.stages.len(), 6);
        let json = to_json(&a);
        assert!(json.contains("\"schema\": \"tgl-critpath/v1\""));
    }

    #[test]
    fn json_and_table_render() {
        let spans = vec![
            sp("sample", 0, 0, 40, 1, 0),
            sp("attention", 0, 40, 60, 2, 0),
        ];
        let a = analyze(&spans);
        let json = to_json(&a);
        assert!(json.contains("\"schema\": \"tgl-critpath/v1\""));
        assert!(json.contains("\"stage\": \"sample\""));
        assert!(json.contains("\"stage\": \"forward\""));
        let table = render_table(&a);
        assert!(table.contains("critical path:"));
        assert!(table.contains("overlap efficiency"));
        for stage in Stage::ALL {
            assert!(table.contains(stage.label()));
        }
    }
}
