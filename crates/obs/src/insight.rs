//! Model & data introspection: deterministic per-step statistics about
//! *what the model and the data are doing*, not just where time goes.
//!
//! The rest of the obs stack answers "where did the wall clock go"
//! (profiler, critpath, histograms). This module answers the questions
//! a temporal-GNN operator actually asks when a run misbehaves:
//!
//! * **Model stats, per parameter group** — gradient norm, weight norm,
//!   and update ratio for every *named* group (`layer0.w_q`,
//!   `layer1.ffn`, `predictor`, ...), plus dead-ReLU / zero-activation
//!   fraction per activation scope. A diverging run is attributable to
//!   a specific layer instead of one whole-model scalar.
//! * **Temporal-data stats, per batch** — node-memory staleness at read
//!   time, sampled-neighbor time-delta distribution, negative-sampling
//!   collision rate, dedup effectiveness, and mailbox depth. These are
//!   the drift/staleness signals continuous-time training and serving
//!   SLOs are built on.
//!
//! # Architecture: the per-batch bag
//!
//! Observations are collected into an [`InsightBag`] — a plain value
//! installed thread-locally around one batch's work. The trainer calls
//! [`begin_batch`] where the batch is *built* (the sampler thread under
//! `--pipeline`, inline otherwise), carries the bag across the channel
//! on the batch itself ([`take_batch`] / [`install_batch`]), and calls
//! [`flush_step`] on the compute thread in strict batch order. Because
//! every observation site runs in a serial section and the flush order
//! is the batch order, every emitted series is **bitwise identical at
//! any thread count and pipeline depth** — the same contract as the
//! rest of [`timeseries`](crate::timeseries).
//!
//! Per-step values land three ways: as pushed `insight.*` series in the
//! timeseries store (so `obs::alert` SLO rules target them with no new
//! machinery), as cross-group prom gauges (`insight.grad_norm_max`,
//! ...), and in a cumulative registry of streaming sketches
//! (count/mean/M2/min/max via Welford + the log2-bucket histogram for
//! p99) rendered as the `tgl-insight/v1` artifact and the `--insight`
//! table.
//!
//! Disabled (the default), every site costs one relaxed atomic load —
//! inside the repo's 2% disabled observability budget (`obs_overhead`
//! bench). Enable with [`enable`], `TGL_INSIGHT=on`, or `--insight` in
//! the CLI/quickstart.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::hist::{self, HistSnapshot, NUM_BUCKETS};

// ---------------------------------------------------------------------
// Enable gate (same shape as timeseries / flight)

/// 0 = uninitialized (consult `TGL_INSIGHT`), 1 = on, 2 = off.
static STATE: AtomicU32 = AtomicU32::new(0);

#[cold]
fn init_state() -> u32 {
    let on = matches!(
        std::env::var("TGL_INSIGHT").as_deref(),
        Ok("on") | Ok("1") | Ok("ON")
    );
    let s = if on { 1 } else { 2 };
    STATE.store(s, Ordering::Relaxed);
    s
}

/// Whether introspection is collecting. First call reads `TGL_INSIGHT`
/// (default off); after that a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    let s = STATE.load(Ordering::Relaxed);
    if s == 0 {
        return init_state() == 1;
    }
    s == 1
}

/// Force introspection on or off, overriding `TGL_INSIGHT`.
pub fn enable(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Streaming sketch

/// Streaming count/mean/M2/min/max (Welford). Observation order is the
/// serial batch order, so the running mean is deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Sketch {
    /// Finite values observed.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    m2: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Sketch {
    /// Folds one value in. Non-finite values are ignored (they are
    /// surfaced through the raw series, where `nonfinite` alert rules
    /// look for them, not through the summary sketch).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

/// A sketch plus a log2-bucket histogram so per-batch distributions
/// (staleness, neighbor time-deltas) report a p99 as well as moments.
#[derive(Debug, Clone)]
struct Dist {
    sketch: Sketch,
    buckets: [u64; NUM_BUCKETS],
    bsum: u64,
    bmax: u64,
}

impl Default for Dist {
    fn default() -> Dist {
        Dist {
            sketch: Sketch::default(),
            buckets: [0; NUM_BUCKETS],
            bsum: 0,
            bmax: 0,
        }
    }
}

impl Dist {
    fn observe(&mut self, v: f64) {
        self.sketch.observe(v);
        if v.is_finite() {
            let u = if v > 0.0 { v as u64 } else { 0 };
            self.buckets[hist::bucket_index(u)] += 1;
            self.bsum += u;
            self.bmax = self.bmax.max(u);
        }
    }

    fn p99(&self) -> f64 {
        HistSnapshot {
            count: self.sketch.count,
            sum: self.bsum,
            max: self.bmax,
            buckets: self.buckets,
        }
        .quantile(0.99)
    }
}

// ---------------------------------------------------------------------
// The per-batch bag

/// Per-group model stats harvested after backward on the compute
/// thread.
#[derive(Debug, Clone)]
struct GroupStat {
    group: String,
    grad_norm: f64,
    weight_norm: f64,
    update_ratio: f64,
}

/// One batch's worth of observations. Built wherever the batch is
/// built, carried on the batch, flushed on the compute thread in batch
/// order.
#[derive(Debug, Clone, Default)]
pub struct InsightBag {
    mem_staleness: Dist,
    nbr_dt: Dist,
    mailbox_depth: Dist,
    neg_candidates: u64,
    neg_collisions: u64,
    dedup_rows_in: u64,
    dedup_rows_saved: u64,
    /// Activation scope → (zero count, total count).
    act: BTreeMap<&'static str, (u64, u64)>,
    model: Vec<GroupStat>,
}

thread_local! {
    static BAG: RefCell<Option<Box<InsightBag>>> = const { RefCell::new(None) };
    static ACT_SCOPE: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// True when introspection is enabled *and* a bag is installed on this
/// thread — the cheap guard instrumentation sites check before doing
/// any work to build observation values.
#[inline]
pub fn active() -> bool {
    enabled() && BAG.with(|b| b.borrow().is_some())
}

/// Installs a fresh bag on this thread (call where the batch is built).
pub fn begin_batch() {
    if !enabled() {
        return;
    }
    BAG.with(|b| *b.borrow_mut() = Some(Box::default()));
}

/// Removes this thread's bag so it can travel with the batch across a
/// pipeline channel. `None` while disabled or when no bag is installed.
pub fn take_batch() -> Option<Box<InsightBag>> {
    if !enabled() {
        return None;
    }
    BAG.with(|b| b.borrow_mut().take())
}

/// Installs a bag that traveled with a batch (compute-thread side of a
/// pipeline). Passing `None` clears any stale bag.
pub fn install_batch(bag: Option<Box<InsightBag>>) {
    BAG.with(|b| *b.borrow_mut() = bag);
}

fn with_bag(f: impl FnOnce(&mut InsightBag)) {
    if !enabled() {
        return;
    }
    BAG.with(|b| {
        if let Some(bag) = b.borrow_mut().as_mut() {
            f(bag);
        }
    });
}

// ---------------------------------------------------------------------
// Observation sites

/// Node-memory staleness at read time: `query_time − stored_time` per
/// read row (the GRU delta the memory models already compute).
pub fn observe_mem_staleness(deltas: &[f32]) {
    with_bag(|b| {
        for &d in deltas {
            b.mem_staleness.observe(f64::from(d.max(0.0)));
        }
    });
}

/// Sampled-neighbor time deltas (`dst_time − neighbor_time`) for one
/// sampler query, in output order.
pub fn observe_nbr_dt(dts: &[f64]) {
    with_bag(|b| {
        for &d in dts {
            b.nbr_dt.observe(d.max(0.0));
        }
    });
}

/// Occupied-slot counts per node for one mailbox read.
pub fn observe_mailbox_depths(depths: &[u64]) {
    with_bag(|b| {
        for &d in depths {
            b.mailbox_depth.observe(d as f64);
        }
    });
}

/// One batch's negative draw: how many candidates were drawn and how
/// many collided with the batch's positive destinations.
pub fn observe_neg_sampling(candidates: u64, collisions: u64) {
    with_bag(|b| {
        b.neg_candidates += candidates;
        b.neg_collisions += collisions;
    });
}

/// One dedup pass: rows in and rows eliminated (cache effectiveness).
pub fn observe_dedup(rows_in: u64, rows_saved: u64) {
    with_bag(|b| {
        b.dedup_rows_in += rows_in;
        b.dedup_rows_saved += rows_saved;
    });
}

/// Zero-activation counts for the current activation scope (no-op when
/// no scope is open — evaluation passes stay unobserved).
pub fn observe_activation(zeros: u64, total: u64) {
    if total == 0 {
        return;
    }
    let Some(scope) = ACT_SCOPE.with(|s| s.borrow().last().copied()) else {
        return;
    };
    with_bag(|b| {
        let e = b.act.entry(scope).or_insert((0, 0));
        e.0 += zeros;
        e.1 += total;
    });
}

/// Opens a named activation scope (`layer0`, `predictor`, ...) for the
/// duration of the returned guard; ReLU sites attribute their
/// zero-fractions to the innermost open scope.
pub fn act_scope(name: &'static str) -> ActScope {
    if !enabled() {
        return ActScope { pushed: false };
    }
    ACT_SCOPE.with(|s| s.borrow_mut().push(name));
    ActScope { pushed: true }
}

/// RAII guard from [`act_scope`].
#[derive(Debug)]
pub struct ActScope {
    pushed: bool,
}

impl Drop for ActScope {
    fn drop(&mut self) {
        if self.pushed {
            ACT_SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Records one parameter group's post-step stats (harvested by the
/// trainer after `backward` + `opt.step`).
pub fn record_group(group: &str, grad_norm: f64, weight_norm: f64, update_ratio: f64) {
    with_bag(|b| {
        b.model.push(GroupStat {
            group: group.to_string(),
            grad_norm,
            weight_norm,
            update_ratio,
        });
    });
}

// ---------------------------------------------------------------------
// Flush: per-step series + cumulative registry + prom gauges

/// Cumulative per-series aggregate backing the artifact and the table.
#[derive(Debug, Clone, Copy, Default)]
struct Agg {
    sketch: Sketch,
    last: f64,
}

static REG: std::sync::LazyLock<Mutex<BTreeMap<String, Agg>>> =
    std::sync::LazyLock::new(|| Mutex::new(BTreeMap::new()));

/// Steps flushed since process start / last [`reset`].
static STEPS: AtomicU64 = AtomicU64::new(0);

fn emit(reg: &mut BTreeMap<String, Agg>, name: String, v: f64) {
    crate::timeseries::record_owned(&name, v);
    let a = reg.entry(name).or_default();
    a.sketch.observe(v);
    a.last = v;
}

/// Flushes this thread's bag: pushes every per-step `insight.*` series
/// point (in a fixed order, so series are bitwise reproducible),
/// updates the cumulative registry, and sets the cross-group prom
/// gauges. Called once per training step, on the compute thread, in
/// batch order. A missing bag (insight disabled, or the batch was
/// dropped) is a no-op.
pub fn flush_step() {
    if !enabled() {
        return;
    }
    let Some(bag) = BAG.with(|b| b.borrow_mut().take()) else {
        return;
    };
    STEPS.fetch_add(1, Ordering::Relaxed);
    let mut reg = REG.lock().unwrap_or_else(|e| e.into_inner());
    if bag.mem_staleness.sketch.count > 0 {
        emit(
            &mut reg,
            "insight.data.mem_staleness.mean".into(),
            bag.mem_staleness.sketch.mean,
        );
        emit(
            &mut reg,
            "insight.data.mem_staleness.p99".into(),
            bag.mem_staleness.p99(),
        );
    }
    if bag.nbr_dt.sketch.count > 0 {
        emit(
            &mut reg,
            "insight.data.nbr_dt.mean".into(),
            bag.nbr_dt.sketch.mean,
        );
        emit(&mut reg, "insight.data.nbr_dt.p99".into(), bag.nbr_dt.p99());
    }
    if bag.mailbox_depth.sketch.count > 0 {
        emit(
            &mut reg,
            "insight.data.mailbox_depth.mean".into(),
            bag.mailbox_depth.sketch.mean,
        );
    }
    if bag.neg_candidates > 0 {
        let rate = bag.neg_collisions as f64 / bag.neg_candidates as f64;
        emit(&mut reg, "insight.data.neg_collision_rate".into(), rate);
        crate::gauge!("insight.neg_collision_rate").set(rate);
    }
    if bag.dedup_rows_in > 0 {
        emit(
            &mut reg,
            "insight.data.dedup_saved_frac".into(),
            bag.dedup_rows_saved as f64 / bag.dedup_rows_in as f64,
        );
    }
    let mut dead_max = 0.0f64;
    for (scope, &(zeros, total)) in &bag.act {
        if total == 0 {
            continue;
        }
        let frac = zeros as f64 / total as f64;
        emit(&mut reg, format!("insight.act.{scope}.dead_frac"), frac);
        dead_max = dead_max.max(frac);
    }
    if !bag.act.is_empty() {
        crate::gauge!("insight.dead_frac_max").set(dead_max);
    }
    let (mut gn_max, mut ur_max) = (0.0f64, 0.0f64);
    let (mut gn_nonfinite, mut ur_nonfinite) = (false, false);
    for g in &bag.model {
        emit(
            &mut reg,
            format!("insight.layer.{}.grad_norm", g.group),
            g.grad_norm,
        );
        emit(
            &mut reg,
            format!("insight.layer.{}.weight_norm", g.group),
            g.weight_norm,
        );
        emit(
            &mut reg,
            format!("insight.layer.{}.update_ratio", g.group),
            g.update_ratio,
        );
        gn_max = gn_max.max(g.grad_norm);
        ur_max = ur_max.max(g.update_ratio);
        gn_nonfinite |= !g.grad_norm.is_finite();
        ur_nonfinite |= !g.update_ratio.is_finite();
    }
    if !bag.model.is_empty() {
        // A non-finite group poisons the max, so "any layer blew up" is
        // visible from the single cross-group gauge too.
        crate::gauge!("insight.grad_norm_max").set(if gn_nonfinite { f64::NAN } else { gn_max });
        crate::gauge!("insight.update_ratio_max").set(if ur_nonfinite { f64::NAN } else { ur_max });
    }
    crate::counter!("insight.steps").incr();
}

// ---------------------------------------------------------------------
// Readout: registry, artifact, table

/// One cumulative per-series summary from the insight registry.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightStat {
    /// Series name (`insight.layer.layer0.w_q.grad_norm`, ...).
    pub name: String,
    /// Finite per-step values folded in.
    pub count: u64,
    /// Mean of the per-step values.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Smallest per-step value.
    pub min: f64,
    /// Largest per-step value.
    pub max: f64,
    /// Most recent per-step value (may be non-finite).
    pub last: f64,
}

/// Cumulative summaries for every insight series, sorted by name.
pub fn stats() -> Vec<InsightStat> {
    let reg = REG.lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(name, a)| InsightStat {
            name: name.clone(),
            count: a.sketch.count,
            mean: a.sketch.mean,
            std: a.sketch.std(),
            min: a.sketch.min,
            max: a.sketch.max,
            last: a.last,
        })
        .collect()
}

/// Steps flushed so far.
pub fn steps() -> u64 {
    STEPS.load(Ordering::Relaxed)
}

/// Clears the cumulative registry, the step counter, and this thread's
/// bag (test hook; series in the timeseries store are cleared by
/// [`timeseries::reset`](crate::timeseries::reset)).
pub fn reset() {
    REG.lock().unwrap_or_else(|e| e.into_inner()).clear();
    STEPS.store(0, Ordering::Relaxed);
    BAG.with(|b| *b.borrow_mut() = None);
}

/// Renders the registry as a `tgl-insight/v1` artifact (the
/// `/insight.json` endpoint body).
pub fn to_json() -> String {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let all = stats();
    let mut out = String::with_capacity(4 * 1024);
    let _ = write!(
        out,
        "{{\n  \"schema\": \"tgl-insight/v1\",\n  \"unix_ms\": {unix_ms},\n  \"steps\": {},\n  \"stats\": [",
        steps()
    );
    for (i, s) in all.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": \"");
        crate::flight::esc(&s.name, &mut out);
        let _ = write!(out, "\", \"count\": {}, \"mean\": ", s.count);
        crate::timeseries::json_num(s.mean, &mut out);
        out.push_str(", \"std\": ");
        crate::timeseries::json_num(s.std, &mut out);
        out.push_str(", \"min\": ");
        crate::timeseries::json_num(s.min, &mut out);
        out.push_str(", \"max\": ");
        crate::timeseries::json_num(s.max, &mut out);
        out.push_str(", \"last\": ");
        crate::timeseries::json_num(s.last, &mut out);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn fmt_val(v: f64) -> String {
    if !v.is_finite() {
        format!("{v}")
    } else if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders the `--insight` console table: the top-`k` parameter groups
/// by most recent gradient norm (non-finite groups first — they are
/// the ones being hunted), then every data-quality stat.
pub fn render_table(k: usize) -> String {
    let all = stats();
    let mut out = String::new();
    // group → (grad_norm, weight_norm, update_ratio), keyed off `last`.
    let mut groups: BTreeMap<&str, [f64; 3]> = BTreeMap::new();
    for s in &all {
        if let Some(rest) = s.name.strip_prefix("insight.layer.") {
            if let Some((group, stat)) = rest.rsplit_once('.') {
                let slot = match stat {
                    "grad_norm" => 0,
                    "weight_norm" => 1,
                    "update_ratio" => 2,
                    _ => continue,
                };
                groups.entry(group).or_insert([0.0; 3])[slot] = s.last;
            }
        }
    }
    if !groups.is_empty() {
        let mut rows: Vec<(&str, [f64; 3])> = groups.into_iter().collect();
        // Non-finite grad norms sort to the top, then descending norm.
        rows.sort_by(|a, b| {
            let key = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
            key(b.1[0])
                .partial_cmp(&key(a.1[0]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        let _ = writeln!(
            out,
            "model introspection — top {} parameter groups by grad norm ({} steps)",
            k.min(rows.len()),
            steps()
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>12} {:>12} {:>12}",
            "group", "grad_norm", "weight_norm", "update_ratio"
        );
        for (group, [gn, wn, ur]) in rows.into_iter().take(k) {
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>12} {:>12}",
                group,
                fmt_val(gn),
                fmt_val(wn),
                fmt_val(ur)
            );
        }
    }
    let data: Vec<&InsightStat> = all
        .iter()
        .filter(|s| s.name.starts_with("insight.data.") || s.name.starts_with("insight.act."))
        .collect();
    if !data.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "data introspection");
        let _ = writeln!(
            out,
            "  {:<34} {:>12} {:>12} {:>12} {:>12}",
            "stat", "last", "mean", "min", "max"
        );
        for s in data {
            let name = s
                .name
                .strip_prefix("insight.data.")
                .or_else(|| s.name.strip_prefix("insight."))
                .unwrap_or(&s.name);
            let _ = writeln!(
                out,
                "  {:<34} {:>12} {:>12} {:>12} {:>12}",
                name,
                fmt_val(s.last),
                fmt_val(s.mean),
                fmt_val(s.min),
                fmt_val(s.max)
            );
        }
    }
    if out.is_empty() {
        out.push_str("insight: no observations recorded (enable with --insight / TGL_INSIGHT=on)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    #[test]
    fn sketch_matches_closed_form() {
        let mut s = Sketch::default();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.observe(v);
        }
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of the classic example: sqrt(32/7).
        assert!((s.std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        s.observe(f64::NAN);
        assert_eq!(s.count, 8, "non-finite values must not poison the sketch");
    }

    #[test]
    fn disabled_sites_observe_nothing() {
        let _g = serial();
        enable(false);
        reset();
        begin_batch();
        assert!(!active());
        observe_dedup(10, 5);
        flush_step();
        assert_eq!(steps(), 0);
        assert!(stats().is_empty());
    }

    #[test]
    fn bag_travels_and_flushes_in_order() {
        let _g = serial();
        enable(true);
        reset();
        // "Sampler thread": build a bag, observe, detach.
        begin_batch();
        assert!(active());
        observe_dedup(100, 25);
        observe_neg_sampling(50, 5);
        observe_nbr_dt(&[1.0, 3.0, 5.0]);
        let bag = take_batch();
        assert!(bag.is_some());
        assert!(!active());
        // "Compute thread": reattach, add model stats, flush.
        install_batch(bag);
        record_group("layer0.w_q", 2.0, 10.0, 1e-3);
        flush_step();
        assert_eq!(steps(), 1);
        let all = stats();
        let get = |n: &str| all.iter().find(|s| s.name == n).cloned().unwrap();
        assert_eq!(get("insight.data.dedup_saved_frac").last, 0.25);
        assert_eq!(get("insight.data.neg_collision_rate").last, 0.1);
        assert!((get("insight.data.nbr_dt.mean").last - 3.0).abs() < 1e-12);
        assert_eq!(get("insight.layer.layer0.w_q.grad_norm").last, 2.0);
        assert_eq!(get("insight.layer.layer0.w_q.update_ratio").last, 1e-3);
        enable(false);
        reset();
    }

    #[test]
    fn activation_scope_attributes_to_innermost() {
        let _g = serial();
        enable(true);
        reset();
        begin_batch();
        // No scope open: dropped.
        observe_activation(1, 2);
        {
            let _outer = act_scope("layer0");
            observe_activation(3, 10);
            {
                let _inner = act_scope("predictor");
                observe_activation(5, 10);
            }
            observe_activation(2, 10);
        }
        flush_step();
        let all = stats();
        let get = |n: &str| all.iter().find(|s| s.name == n).cloned().unwrap();
        assert_eq!(get("insight.act.layer0.dead_frac").last, 0.25);
        assert_eq!(get("insight.act.predictor.dead_frac").last, 0.5);
        assert!(!all.iter().any(|s| s.name == "insight.act..dead_frac"));
        enable(false);
        reset();
    }

    #[test]
    fn artifact_and_table_render() {
        let _g = serial();
        enable(true);
        reset();
        begin_batch();
        record_group("layer0.w_q", f64::NAN, 1.0, 2.0);
        record_group("predictor", 0.5, 1.0, 1e-4);
        observe_mem_staleness(&[1.0, 2.0, 100.0]);
        flush_step();
        let json = to_json();
        assert!(json.contains("\"schema\": \"tgl-insight/v1\""));
        assert!(json.contains("\"steps\": 1"));
        assert!(json.contains("insight.layer.predictor.grad_norm"));
        assert!(json.contains("null"), "NaN last must render as null");
        assert!(!json.contains("NaN"));
        let table = render_table(10);
        // The non-finite group sorts first — it is the one being hunted.
        let nan_pos = table.find("layer0.w_q").unwrap();
        let ok_pos = table.find("predictor").unwrap();
        assert!(nan_pos < ok_pos, "non-finite grad group must sort first:\n{table}");
        assert!(table.contains("mem_staleness.mean"));
        enable(false);
        reset();
    }

    #[test]
    fn dist_p99_tracks_upper_tail() {
        let mut d = Dist::default();
        for _ in 0..99 {
            d.observe(10.0);
        }
        d.observe(1000.0);
        let p99 = d.p99();
        assert!(p99 >= 10.0, "p99 {p99}");
        assert!(d.sketch.max == 1000.0);
    }
}
