//! Global named-phase duration accumulator.
//!
//! This is the aggregation behind `tglite::prof` and the Fig. 7
//! per-operation breakdown: each `(name, duration)` pair recorded on
//! *any* thread accumulates into one process-global map keyed by phase
//! name, which the measuring caller drains with [`take`]. The map is
//! bounded by the number of distinct phase names (a dozen or so), so it
//! never grows with run length the way the trace sink can.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);

static PHASES: Mutex<Option<HashMap<&'static str, Duration>>> = Mutex::new(None);

/// Turns phase accumulation on or off. Off by default; a disabled
/// span does one relaxed atomic load here.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether phase accumulation is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `dur` to the running total for `name`, regardless of which
/// thread calls it. Callers normally go through `tgl_obs::span` or
/// `tglite::prof::scope`, which check [`enabled`] first; calling this
/// directly records unconditionally.
pub fn add(name: &'static str, dur: Duration) {
    let mut map = PHASES.lock().unwrap_or_else(|e| e.into_inner());
    *map.get_or_insert_with(HashMap::new).entry(name).or_default() += dur;
}

/// Drains all accumulated phases, sorted by descending total duration
/// (ties broken by name for stable output).
pub fn take() -> Vec<(&'static str, Duration)> {
    let mut map = PHASES.lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<_> = map.take().unwrap_or_default().into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    #[test]
    fn phases_accumulate_across_threads() {
        let _g = serial();
        enable(true);
        take();
        add("phase-test-main", Duration::from_millis(2));
        std::thread::spawn(|| add("phase-test-worker", Duration::from_millis(5)))
            .join()
            .unwrap();
        add("phase-test-main", Duration::from_millis(1));
        let report = take();
        enable(false);
        let get = |n: &str| report.iter().find(|(p, _)| *p == n).map(|(_, d)| *d);
        assert_eq!(get("phase-test-main"), Some(Duration::from_millis(3)));
        assert_eq!(get("phase-test-worker"), Some(Duration::from_millis(5)));
        // Sorted by descending duration.
        let worker_pos = report.iter().position(|(p, _)| *p == "phase-test-worker");
        let main_pos = report.iter().position(|(p, _)| *p == "phase-test-main");
        assert!(worker_pos < main_pos);
    }

    #[test]
    fn take_drains() {
        let _g = serial();
        add("phase-test-drain", Duration::from_millis(1));
        assert!(take().iter().any(|(n, _)| *n == "phase-test-drain"));
        assert!(!take().iter().any(|(n, _)| *n == "phase-test-drain"));
    }
}
