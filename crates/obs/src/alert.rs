//! Declarative SLO / alert rules evaluated on the time-series store.
//!
//! A [`Rule`] names a series in [`timeseries`](crate::timeseries) and a
//! condition over its most recent `window` points — a threshold
//! (`above` / `below`), a trend (`trend = non-decreasing`, the loss
//! plateau / divergence detector), a non-finite sentinel, or a
//! pegged-at-capacity check. Rules are written in a tiny INI-style file
//! (`--slo <path>` / `TGL_SLO`):
//!
//! ```text
//! # step p99 latency SLO
//! [step-latency-slo]
//! metric   = step.latency_ns.p99
//! above    = 5e9
//! window   = 8
//! for      = 3
//! severity = warn
//!
//! [loss-divergence]
//! metric   = train.loss
//! trend    = non-decreasing
//! window   = 8
//! for      = 4
//! severity = fail
//! ```
//!
//! [`evaluate`] runs every installed rule against the store with
//! `for_n_samples` hysteresis: a rule *fires* only after `for`
//! consecutive breaching evaluations and *resolves* only after `for`
//! consecutive clean ones, so a single spike cannot flap an alert.
//! Hysteresis advances only when the target series has gained points
//! since the rule's last evaluation, which makes the firing sequence a
//! pure function of the series contents — **bitwise identical at any
//! thread count** when the series itself is (the harness drives
//! evaluation per training step).
//!
//! Firings are structured: each transition lands in the health sink
//! (`health::record`, which also mirrors it into flight-recorder
//! rings), increments `alerts.fired` / sets the `alerts.firing` gauge
//! for `/metrics`, and is retained for the `tgl-alerts/v1` artifact
//! served at `/alerts.json`. The harness routes fail-severity firings
//! through the `TGL_HEALTH` policy (warn → log and continue, fail →
//! flight dump + abort).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::health::Level;
use crate::timeseries;

/// Condition a rule checks over the last `window` points.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Latest point strictly above the threshold.
    Above(f64),
    /// Latest point strictly below the threshold.
    Below(f64),
    /// The series has not decreased across the window (`!(last <
    /// first)`): fires on plateaus, divergence, and — deliberately —
    /// on NaN/Inf tails, so a poisoned loss trips the trend rule too.
    TrendNonDecreasing,
    /// Any non-finite value in the window.
    NonFinite,
    /// Every point in the window at or above the cap (e.g.
    /// `pipeline.queue.occupancy` pegged at capacity).
    Pegged(f64),
}

impl Condition {
    /// Short label for artifacts and log lines.
    pub fn label(&self) -> &'static str {
        match self {
            Condition::Above(_) => "above",
            Condition::Below(_) => "below",
            Condition::TrendNonDecreasing => "trend-non-decreasing",
            Condition::NonFinite => "nonfinite",
            Condition::Pegged(_) => "pegged",
        }
    }

    /// Whether the last `window` points (chronological order) breach.
    fn breaches(&self, window: &[(u64, f64)]) -> bool {
        let last = match window.last() {
            Some(&(_, v)) => v,
            None => return false,
        };
        match *self {
            Condition::Above(t) => last > t,
            Condition::Below(t) => last < t,
            // NaN comparisons are false, so `!(last < first)` is true
            // for a NaN tail — exactly the divergence signal we want.
            // (`last >= first` would be false for NaN, hence the allow.)
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            Condition::TrendNonDecreasing => !(last < window[0].1),
            Condition::NonFinite => window.iter().any(|&(_, v)| !v.is_finite()),
            Condition::Pegged(cap) => window.iter().all(|&(_, v)| v >= cap),
        }
    }
}

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (the INI section header); health events use the
    /// source `alert.<name>`.
    pub name: String,
    /// Target series in the time-series store.
    pub metric: String,
    /// Breach condition.
    pub condition: Condition,
    /// Points the condition inspects; evaluation waits until the
    /// series holds at least this many (warmup).
    pub window: usize,
    /// Consecutive breaching (resp. clean) evaluations required to
    /// fire (resp. resolve) — the `for_n_samples` hysteresis.
    pub for_n: usize,
    /// Severity of the fired health event.
    pub severity: Level,
}

/// A parsed set of rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    /// Rules in file order.
    pub rules: Vec<Rule>,
}

fn parse_level(s: &str) -> Result<Level, String> {
    match s {
        "info" => Ok(Level::Info),
        "warn" => Ok(Level::Warn),
        "fail" => Ok(Level::Fail),
        other => Err(format!("unknown severity '{other}' (use info|warn|fail)")),
    }
}

impl RuleSet {
    /// Parses the INI-style rules text (see the module docs). Errors
    /// name the offending line.
    pub fn parse(text: &str) -> Result<RuleSet, String> {
        struct Draft {
            name: String,
            metric: Option<String>,
            condition: Option<Condition>,
            window: usize,
            for_n: usize,
            severity: Level,
            line: usize,
        }
        fn finish(d: Draft, rules: &mut Vec<Rule>) -> Result<(), String> {
            let metric = d
                .metric
                .ok_or_else(|| format!("rule [{}] (line {}): missing 'metric'", d.name, d.line))?;
            let condition = d.condition.ok_or_else(|| {
                format!(
                    "rule [{}] (line {}): missing condition (above|below|trend|nonfinite|pegged)",
                    d.name, d.line
                )
            })?;
            rules.push(Rule {
                name: d.name,
                metric,
                condition,
                window: d.window.max(1),
                for_n: d.for_n.max(1),
                severity: d.severity,
            });
            Ok(())
        }
        let mut rules = Vec::new();
        let mut current: Option<Draft> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i + 1;
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                if let Some(d) = current.take() {
                    finish(d, &mut rules)?;
                }
                if name.trim().is_empty() {
                    return Err(format!("line {lineno}: empty rule name"));
                }
                current = Some(Draft {
                    name: name.trim().to_string(),
                    metric: None,
                    condition: None,
                    window: 1,
                    for_n: 1,
                    severity: Level::Warn,
                    line: lineno,
                });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected 'key = value', got '{line}'"))?;
            let (key, value) = (key.trim(), value.trim());
            let d = current
                .as_mut()
                .ok_or_else(|| format!("line {lineno}: '{key}' outside any [rule] section"))?;
            let num = |v: &str| -> Result<f64, String> {
                v.parse()
                    .map_err(|_| format!("line {lineno}: '{key}' wants a number, got '{v}'"))
            };
            let set_cond = |d: &mut Draft, c: Condition| -> Result<(), String> {
                if d.condition.is_some() {
                    return Err(format!(
                        "line {lineno}: rule [{}] already has a condition",
                        d.name
                    ));
                }
                d.condition = Some(c);
                Ok(())
            };
            match key {
                "metric" => d.metric = Some(value.to_string()),
                "window" => {
                    d.window = value.parse().map_err(|_| {
                        format!("line {lineno}: 'window' wants an integer, got '{value}'")
                    })?;
                }
                "for" | "for_n_samples" => {
                    d.for_n = value.parse().map_err(|_| {
                        format!("line {lineno}: '{key}' wants an integer, got '{value}'")
                    })?;
                }
                "severity" => {
                    d.severity = parse_level(value).map_err(|e| format!("line {lineno}: {e}"))?;
                }
                "above" => {
                    let t = num(value)?;
                    set_cond(d, Condition::Above(t))?;
                }
                "below" => {
                    let t = num(value)?;
                    set_cond(d, Condition::Below(t))?;
                }
                "trend" => {
                    if value != "non-decreasing" {
                        return Err(format!(
                            "line {lineno}: 'trend' supports only 'non-decreasing', got '{value}'"
                        ));
                    }
                    set_cond(d, Condition::TrendNonDecreasing)?;
                }
                "nonfinite" => {
                    if !matches!(value, "true" | "1" | "on") {
                        return Err(format!(
                            "line {lineno}: 'nonfinite' wants true, got '{value}'"
                        ));
                    }
                    set_cond(d, Condition::NonFinite)?;
                }
                "pegged" => {
                    let t = num(value)?;
                    set_cond(d, Condition::Pegged(t))?;
                }
                other => return Err(format!("line {lineno}: unknown key '{other}'")),
            }
        }
        if let Some(d) = current.take() {
            finish(d, &mut rules)?;
        }
        if rules.is_empty() {
            return Err("no rules defined".to_string());
        }
        Ok(RuleSet { rules })
    }

    /// Reads and parses a rules file.
    pub fn from_file(path: &std::path::Path) -> Result<RuleSet, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        RuleSet::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// One fire/resolve transition of a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    /// Rule name.
    pub rule: String,
    /// Target series.
    pub metric: String,
    /// Rule severity.
    pub severity: Level,
    /// `true` = fired, `false` = resolved.
    pub firing: bool,
    /// Series index of the point that completed the hysteresis.
    pub idx: u64,
    /// That point's value.
    pub value: f64,
}

struct RuleState {
    rule: Rule,
    /// Leaked `alert.<name>`, the health-event source.
    source: &'static str,
    firing: bool,
    breaches: u32,
    oks: u32,
    fired_total: u64,
    /// Series `total` at the last hysteresis advance; evaluation is
    /// idempotent until the series gains points.
    seen_total: u64,
    last_idx: u64,
    last_value: f64,
}

#[derive(Default)]
struct Engine {
    states: Vec<RuleState>,
    /// Bounded transition history for the artifact.
    transitions: Vec<Firing>,
}

const MAX_TRANSITIONS: usize = 256;

static ENGINE: Mutex<Option<Engine>> = Mutex::new(None);
/// Fast-path gate so `evaluate()` with no rules installed is one
/// relaxed load (it sits on the per-step hot path).
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs a rule set, replacing any previous one and resetting all
/// rule state. Registers the `alerts.*` metric families immediately so
/// exposition scrapes see them before the first evaluation.
pub fn install(set: RuleSet) {
    let states = set
        .rules
        .into_iter()
        .map(|rule| RuleState {
            source: Box::leak(format!("alert.{}", rule.name).into_boxed_str()),
            rule,
            firing: false,
            breaches: 0,
            oks: 0,
            fired_total: 0,
            seen_total: 0,
            last_idx: 0,
            last_value: 0.0,
        })
        .collect();
    let mut engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    *engine = Some(Engine {
        states,
        transitions: Vec::new(),
    });
    INSTALLED.store(true, Ordering::Relaxed);
    crate::counter!("alerts.evaluations").add(0);
    crate::counter!("alerts.fired").add(0);
    crate::gauge!("alerts.firing").set(0.0);
}

/// Removes all rules and state.
pub fn clear() {
    INSTALLED.store(false, Ordering::Relaxed);
    let mut engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    *engine = None;
    crate::gauge!("alerts.firing").set(0.0);
}

/// Whether a rule set is installed.
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Evaluates every installed rule against the time-series store and
/// returns the transitions (fires and resolves) this pass produced.
/// No-op (one relaxed load) when nothing is installed; idempotent for
/// a rule until its target series gains points.
pub fn evaluate() -> Vec<Firing> {
    if !INSTALLED.load(Ordering::Relaxed) {
        return Vec::new();
    }
    let mut engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    let engine = match engine.as_mut() {
        Some(e) => e,
        None => return Vec::new(),
    };
    crate::counter!("alerts.evaluations").incr();
    let mut fired = Vec::new();
    for st in engine.states.iter_mut() {
        let snap = match timeseries::get(&st.rule.metric) {
            Some(s) => s,
            None => continue,
        };
        if snap.total == st.seen_total || snap.points.len() < st.rule.window {
            continue;
        }
        st.seen_total = snap.total;
        let window = &snap.points[snap.points.len() - st.rule.window..];
        let &(idx, value) = window.last().expect("window is non-empty");
        st.last_idx = idx;
        st.last_value = value;
        let breach = st.rule.condition.breaches(window);
        let transition = if breach {
            st.breaches += 1;
            st.oks = 0;
            (!st.firing && st.breaches >= st.rule.for_n as u32).then(|| {
                st.firing = true;
                st.fired_total += 1;
                true
            })
        } else {
            st.oks += 1;
            st.breaches = 0;
            (st.firing && st.oks >= st.rule.for_n as u32).then(|| {
                st.firing = false;
                false
            })
        };
        if let Some(now_firing) = transition {
            let t = Firing {
                rule: st.rule.name.clone(),
                metric: st.rule.metric.clone(),
                severity: st.rule.severity,
                firing: now_firing,
                idx,
                value,
            };
            let (level, verb) = if now_firing {
                crate::counter!("alerts.fired").incr();
                (st.rule.severity, "fired")
            } else {
                (Level::Info, "resolved")
            };
            crate::health::record(
                level,
                st.source,
                format!(
                    "alert {} {verb}: {} {} (value {} at idx {})",
                    st.rule.name,
                    st.rule.metric,
                    st.rule.condition.label(),
                    value,
                    idx
                ),
            );
            if engine.transitions.len() < MAX_TRANSITIONS {
                engine.transitions.push(t.clone());
            }
            fired.push(t);
        }
    }
    let firing_now = engine.states.iter().filter(|s| s.firing).count();
    crate::gauge!("alerts.firing").set(firing_now as f64);
    fired
}

/// Per-rule state for reports and summaries.
#[derive(Debug, Clone)]
pub struct RuleStatus {
    /// The rule itself.
    pub rule: Rule,
    /// Currently firing.
    pub firing: bool,
    /// Times fired since install.
    pub fired_total: u64,
    /// Latest evaluated point.
    pub last_idx: u64,
    /// Latest evaluated value.
    pub last_value: f64,
}

/// Status of every installed rule (empty when none installed).
pub fn status() -> Vec<RuleStatus> {
    let engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    engine
        .as_ref()
        .map(|e| {
            e.states
                .iter()
                .map(|s| RuleStatus {
                    rule: s.rule.clone(),
                    firing: s.firing,
                    fired_total: s.fired_total,
                    last_idx: s.last_idx,
                    last_value: s.last_value,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Transition history since install (bounded to the most recent
/// [`MAX_TRANSITIONS`]... actually the first — history stops recording
/// once full; `fired_total` keeps exact counts).
pub fn transitions() -> Vec<Firing> {
    let engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    engine
        .as_ref()
        .map(|e| e.transitions.clone())
        .unwrap_or_default()
}

/// Renders the engine as a `tgl-alerts/v1` artifact (the
/// `/alerts.json` endpoint body).
pub fn to_json() -> String {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let rules = status();
    let trans = transitions();
    let mut out = String::with_capacity(4 * 1024);
    let _ = write!(
        out,
        "{{\n  \"schema\": \"tgl-alerts/v1\",\n  \"unix_ms\": {unix_ms},\n  \"installed\": {},\n  \"rules\": [",
        installed()
    );
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": \"");
        crate::flight::esc(&r.rule.name, &mut out);
        out.push_str("\", \"metric\": \"");
        crate::flight::esc(&r.rule.metric, &mut out);
        let _ = write!(
            out,
            "\", \"condition\": \"{}\", \"window\": {}, \"for\": {}, \"severity\": \"{}\", \"firing\": {}, \"fired_total\": {}, \"last_idx\": {}, \"last_value\": ",
            r.rule.condition.label(),
            r.rule.window,
            r.rule.for_n,
            r.rule.severity.label(),
            r.firing,
            r.fired_total,
            r.last_idx
        );
        crate::timeseries::json_num(r.last_value, &mut out);
        out.push('}');
    }
    out.push_str("\n  ],\n  \"transitions\": [");
    for (i, t) in trans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        crate::flight::esc(&t.rule, &mut out);
        out.push_str("\", \"metric\": \"");
        crate::flight::esc(&t.metric, &mut out);
        let _ = write!(
            out,
            "\", \"severity\": \"{}\", \"firing\": {}, \"idx\": {}, \"value\": ",
            t.severity.label(),
            t.firing,
            t.idx
        );
        crate::timeseries::json_num(t.value, &mut out);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    fn setup(rules: &str) {
        timeseries::enable(true);
        timeseries::reset();
        install(RuleSet::parse(rules).unwrap());
    }

    #[test]
    fn parser_accepts_every_condition_and_defaults() {
        let set = RuleSet::parse(
            "# comment\n\
             [a]\nmetric = m\nabove = 1.5\n\n\
             [b]\nmetric = m\nbelow = -2\nwindow = 4\nfor = 2\nseverity = fail\n\
             [c]\nmetric = m\ntrend = non-decreasing\n\
             [d]\nmetric = m\nnonfinite = true\n\
             [e]\nmetric = m\npegged = 8\nfor_n_samples = 3\n",
        )
        .unwrap();
        assert_eq!(set.rules.len(), 5);
        assert_eq!(set.rules[0].condition, Condition::Above(1.5));
        assert_eq!(set.rules[0].window, 1);
        assert_eq!(set.rules[0].for_n, 1);
        assert_eq!(set.rules[0].severity, Level::Warn);
        assert_eq!(set.rules[1].condition, Condition::Below(-2.0));
        assert_eq!(set.rules[1].severity, Level::Fail);
        assert_eq!(set.rules[4].for_n, 3);
    }

    #[test]
    fn parser_rejects_malformed_rules() {
        for (bad, why) in [
            ("metric = m\n", "key outside section"),
            ("[a]\nabove = 1\n", "missing metric"),
            ("[a]\nmetric = m\n", "missing condition"),
            ("[a]\nmetric = m\nabove = 1\nbelow = 2\n", "two conditions"),
            ("[a]\nmetric = m\nabove = x\n", "non-numeric threshold"),
            ("[a]\nmetric = m\nfrobnicate = 1\n", "unknown key"),
            ("", "no rules"),
        ] {
            assert!(RuleSet::parse(bad).is_err(), "parser accepted {why}");
        }
    }

    #[test]
    fn threshold_rule_fires_after_for_n_consecutive_breaches() {
        let _g = serial();
        setup("[hot]\nmetric = syn.spike\nabove = 10\nfor = 2\n");
        let s = timeseries::series("syn.spike");
        // Single-sample spike: breach, then recovery — must NOT fire.
        for v in [1.0, 50.0, 1.0, 1.0] {
            s.push(v);
            assert!(evaluate().is_empty(), "spike flapped the alert");
        }
        // Sustained breach: fires on the 2nd consecutive breach.
        s.push(60.0);
        assert!(evaluate().is_empty());
        s.push(70.0);
        let fired = evaluate();
        assert_eq!(fired.len(), 1);
        assert!(fired[0].firing);
        assert_eq!(fired[0].rule, "hot");
        assert_eq!(fired[0].value, 70.0);
        // Resolve needs 2 consecutive clean samples too.
        s.push(1.0);
        assert!(evaluate().is_empty());
        s.push(1.0);
        let resolved = evaluate();
        assert_eq!(resolved.len(), 1);
        assert!(!resolved[0].firing);
        clear();
    }

    #[test]
    fn flat_series_trips_trend_but_not_thresholds() {
        let _g = serial();
        setup(
            "[plateau]\nmetric = syn.flat\ntrend = non-decreasing\nwindow = 4\nfor = 3\n\
             [hot]\nmetric = syn.flat\nabove = 10\n",
        );
        let s = timeseries::series("syn.flat");
        let mut fired = Vec::new();
        for _ in 0..10 {
            s.push(1.0);
            fired.extend(evaluate());
        }
        // Warmup: window=4 → first evaluation at the 4th point; for=3
        // consecutive breaches → fires on the 6th point (idx 5).
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "plateau");
        assert_eq!(fired[0].idx, 5);
        clear();
    }

    #[test]
    fn decreasing_ramp_never_trips_trend() {
        let _g = serial();
        setup("[plateau]\nmetric = syn.ramp\ntrend = non-decreasing\nwindow = 4\nfor = 2\n");
        let s = timeseries::series("syn.ramp");
        for i in 0..20 {
            s.push(10.0 - i as f64 * 0.5);
            assert!(evaluate().is_empty(), "decreasing ramp fired at {i}");
        }
        clear();
    }

    #[test]
    fn nan_poisoned_series_trips_nonfinite_and_trend_but_not_above() {
        let _g = serial();
        setup(
            "[poison]\nmetric = syn.nan\nnonfinite = true\nwindow = 2\n\
             [plateau]\nmetric = syn.nan\ntrend = non-decreasing\nwindow = 2\n\
             [hot]\nmetric = syn.nan\nabove = 0.5\n",
        );
        let s = timeseries::series("syn.nan");
        s.push(0.3);
        assert!(evaluate().is_empty());
        s.push(f64::NAN);
        let fired = evaluate();
        let names: Vec<&str> = fired.iter().map(|f| f.rule.as_str()).collect();
        assert!(names.contains(&"poison"), "nonfinite rule must fire");
        assert!(names.contains(&"plateau"), "trend must treat NaN as breach");
        assert!(!names.contains(&"hot"), "NaN must not satisfy 'above'");
        clear();
    }

    #[test]
    fn pegged_rule_needs_the_whole_window_at_cap() {
        let _g = serial();
        setup("[full]\nmetric = syn.occ\npegged = 4\nwindow = 3\n");
        let s = timeseries::series("syn.occ");
        for v in [4.0, 4.0, 3.0, 4.0, 4.0] {
            s.push(v);
            assert!(evaluate().is_empty(), "pegged fired with a dip in window");
        }
        s.push(4.0);
        let fired = evaluate();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "full");
        clear();
    }

    #[test]
    fn evaluation_is_idempotent_without_new_points() {
        let _g = serial();
        setup("[hot]\nmetric = syn.idem\nabove = 0\nfor = 3\n");
        let s = timeseries::series("syn.idem");
        s.push(1.0);
        // 10 evaluations of the same point advance hysteresis once.
        for _ in 0..10 {
            assert!(evaluate().is_empty());
        }
        s.push(1.0);
        assert!(evaluate().is_empty());
        s.push(1.0);
        assert_eq!(evaluate().len(), 1, "3rd new point must complete for=3");
        clear();
    }

    #[test]
    fn firings_route_to_health_sink_and_metrics() {
        let _g = serial();
        crate::health::reset();
        setup("[sev]\nmetric = syn.sev\nabove = 0\nseverity = fail\n");
        let before = crate::metrics::get("alerts.fired");
        timeseries::series("syn.sev").push(1.0);
        let fired = evaluate();
        assert_eq!(fired[0].severity, Level::Fail);
        assert_eq!(crate::metrics::get("alerts.fired"), before + 1);
        assert_eq!(crate::hist::gauge("alerts.firing").get(), 1.0);
        let ev = crate::health::events();
        assert!(ev
            .iter()
            .any(|e| e.source == "alert.sev" && e.level == Level::Fail));
        clear();
    }

    #[test]
    fn artifact_renders_rules_and_transitions() {
        let _g = serial();
        setup("[hot]\nmetric = syn.art\nabove = 0\n");
        timeseries::series("syn.art").push(2.0);
        evaluate();
        let json = to_json();
        assert!(json.contains("\"schema\": \"tgl-alerts/v1\""));
        assert!(json.contains("\"name\": \"hot\""));
        assert!(json.contains("\"firing\": true"));
        assert!(json.contains("\"transitions\": ["));
        clear();
        timeseries::enable(false);
    }
}
