//! Cross-thread span tracer with Chrome trace-event export.
//!
//! Spans record into a sharded global sink (one mutex-protected vector
//! per shard, sharded by thread id) so concurrent workers rarely
//! contend on the same lock. [`take`] drains every shard;
//! [`to_chrome_json`] renders the drained spans as Chrome trace-event
//! JSON — open the file in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the per-thread timeline.
//!
//! Every recorded span carries a process-unique `id`, and, through its
//! [`SpanArgs`], an optional `parent` hint: the id of the innermost
//! span that was open on the recording thread (maintained by a
//! thread-local stack, see [`begin_span`] / [`finish_span`]). Pool
//! workers inherit the dispatching thread's parent via
//! [`adopt_parent`], so cross-thread edges survive into the trace —
//! the critical-path analyzer ([`crate::critpath`]) uses these hints
//! to disambiguate predecessors.
//!
//! Tracing is **off by default**: unlike the phase accumulator (bounded
//! by the number of phase names) the sink grows with every span, so it
//! should only run when a `--trace-out` style flag asks for it.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

const SHARDS: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

static SINK: [Mutex<Vec<Span>>; SHARDS] = [const { Mutex::new(Vec::new()) }; SHARDS];

/// Process-wide time origin; all span timestamps are offsets from it
/// so they stay monotonic and shard-order independent.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process trace epoch — the time base
/// shared by the tracer and the flight recorder.
pub(crate) fn now_ns() -> u64 {
    Instant::now().saturating_duration_since(epoch()).as_nanos() as u64
}

/// Offset of `at` from the process trace epoch, in nanoseconds.
pub(crate) fn offset_ns(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_nanos() as u64
}

/// Next span id; 0 is reserved for "no span / no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of spans currently open on this thread, innermost last.
    static OPEN: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// One completed span: a named interval on a specific thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase / operation name.
    pub name: &'static str,
    /// Dense thread id from [`crate::thread_id`].
    pub tid: u32,
    /// Start offset from the process trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Process-unique span id (0 when recorded by legacy paths that
    /// never allocated one).
    pub id: u64,
    /// Optional op-profiler enrichment and parent hint rendered into
    /// the trace event's `args` object.
    pub args: Option<SpanArgs>,
}

impl Span {
    /// The parent hint carried in [`SpanArgs`] (0 = none).
    pub fn parent(&self) -> u64 {
        self.args.map_or(0, |a| a.parent)
    }

    /// End offset (`start_ns + dur_ns`) from the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Profiler enrichment attached to op spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanArgs {
    /// Analytic floating-point operations of the op call.
    pub flops: u64,
    /// Analytic bytes moved (read + written).
    pub bytes: u64,
    /// Input-shape signature, e.g. `2x3,3x4` (may be empty).
    pub shape: &'static str,
    /// Id of the innermost span open on the recording thread when this
    /// span ended (0 = none): the dependency-edge hint the critical-path
    /// analyzer consumes.
    pub parent: u64,
}

/// Turns span recording on or off. Enabling pins the trace epoch so
/// the first span doesn't start at a huge offset.
pub fn enable(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocates an id for a span that just started and pushes it on the
/// calling thread's open-span stack. Pair with [`finish_span`].
pub fn begin_span() -> u64 {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    OPEN.with(|o| o.borrow_mut().push(id));
    id
}

/// The id of the innermost open span on this thread (0 = none).
pub fn current_parent() -> u64 {
    OPEN.with(|o| o.borrow().last().copied().unwrap_or(0))
}

/// Pushes a foreign span id (captured on another thread with
/// [`current_parent`]) onto this thread's open-span stack for the
/// guard's lifetime, so work executed on a pool worker records the
/// dispatching span as its parent. A zero id is a no-op.
pub fn adopt_parent(id: u64) -> AdoptGuard {
    if id != 0 {
        OPEN.with(|o| o.borrow_mut().push(id));
    }
    AdoptGuard { id }
}

/// RAII guard produced by [`adopt_parent`].
#[derive(Debug)]
pub struct AdoptGuard {
    id: u64,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            let id = self.id;
            OPEN.with(|o| {
                let mut v = o.borrow_mut();
                if let Some(pos) = v.iter().rposition(|&x| x == id) {
                    v.remove(pos);
                }
            });
        }
    }
}

/// Closes a span opened with [`begin_span`]: pops `id` from the open
/// stack, then (when tracing is enabled) records the span with the
/// remaining innermost open span as its parent hint. Must be called
/// even when tracing was disabled mid-span, so the stack stays
/// balanced; pass `id == 0` when [`begin_span`] was never called.
pub fn finish_span(id: u64, name: &'static str, start: Instant, dur: Duration) {
    let parent = OPEN.with(|o| {
        let mut v = o.borrow_mut();
        if id != 0 {
            if let Some(pos) = v.iter().rposition(|&x| x == id) {
                v.remove(pos);
            }
        }
        v.last().copied().unwrap_or(0)
    });
    if !enabled() {
        return;
    }
    push_span(name, start, dur, if id == 0 { NEXT_ID.fetch_add(1, Ordering::Relaxed) } else { id }, parent, None);
}

/// Records one completed span for the calling thread. Callers normally
/// go through `tgl_obs::span`, which checks [`enabled`] first; calling
/// this directly records unconditionally.
pub fn record(name: &'static str, start: Instant, dur: Duration) {
    record_with(name, start, dur, None);
}

/// [`record`] with optional profiler enrichment. Dynamic names must be
/// interned first (see [`crate::intern::intern`]). The innermost open
/// span on this thread becomes the parent hint (unless `args` already
/// carries one).
pub fn record_with(name: &'static str, start: Instant, dur: Duration, args: Option<SpanArgs>) {
    let parent = current_parent();
    let args = match args {
        Some(mut a) => {
            if a.parent == 0 {
                a.parent = parent;
            }
            Some(a)
        }
        None if parent != 0 => Some(SpanArgs {
            parent,
            ..SpanArgs::default()
        }),
        None => None,
    };
    push_span(name, start, dur, NEXT_ID.fetch_add(1, Ordering::Relaxed), parent, args);
}

fn push_span(
    name: &'static str,
    start: Instant,
    dur: Duration,
    id: u64,
    parent: u64,
    args: Option<SpanArgs>,
) {
    let tid = crate::thread_id();
    let args = match args {
        some @ Some(_) => some,
        None if parent != 0 => Some(SpanArgs {
            parent,
            ..SpanArgs::default()
        }),
        None => None,
    };
    let span = Span {
        name,
        tid,
        start_ns: offset_ns(start),
        dur_ns: dur.as_nanos() as u64,
        id,
        args,
    };
    let shard = tid as usize % SHARDS;
    SINK[shard]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(span);
}

/// Drains every shard, returning all recorded spans sorted by start
/// time (then thread id) for stable output.
pub fn take() -> Vec<Span> {
    let mut all = Vec::new();
    for shard in &SINK {
        all.append(&mut shard.lock().unwrap_or_else(|e| e.into_inner()));
    }
    all.sort_by_key(|s| (s.start_ns, s.tid));
    all
}

/// The same sorted view as [`take`] without draining — for live
/// consumers (`/critpath.json`, the run report's critpath section)
/// while the owning process still intends to export the trace.
pub fn snapshot() -> Vec<Span> {
    let mut all = Vec::new();
    for shard in &SINK {
        all.extend(shard.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned());
    }
    all.sort_by_key(|s| (s.start_ns, s.tid));
    all
}

/// Renders spans as Chrome trace-event JSON (complete `"ph":"X"`
/// events, microsecond timestamps as the format requires).
pub fn to_chrome_json(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Span names are identifiers plus shape signatures like
        // `matmul[2x3,3x4]` — no quotes or backslashes — so plain
        // interpolation is JSON-safe here.
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"tgl\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
            s.name,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.tid
        );
        if let Some(a) = &s.args {
            let _ = write!(
                out,
                ",\"args\":{{\"flops\":{},\"bytes\":{},\"shape\":\"{}\",\"id\":{},\"parent\":{}}}",
                a.flops, a.bytes, a.shape, s.id, a.parent
            );
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Drains the sink and writes a Chrome trace-event JSON file at `path`.
pub fn save_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let spans = take();
    std::fs::write(path, to_chrome_json(&spans))?;
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    #[test]
    fn spans_record_across_threads_with_distinct_tids() {
        let _g = serial();
        enable(true);
        take();
        {
            let _s = crate::span("trace-test-main");
        }
        std::thread::spawn(|| {
            let _s = crate::span("trace-test-worker");
        })
        .join()
        .unwrap();
        let spans = take();
        enable(false);
        let main = spans.iter().find(|s| s.name == "trace-test-main").unwrap();
        let worker = spans.iter().find(|s| s.name == "trace-test-worker").unwrap();
        assert_ne!(main.tid, worker.tid);
        assert_ne!(main.id, 0);
        assert_ne!(worker.id, 0);
        assert_ne!(main.id, worker.id);
        // Drained: a second take sees nothing from this test.
        assert!(!take().iter().any(|s| s.name.starts_with("trace-test-")));
    }

    #[test]
    fn nested_spans_carry_parent_hints() {
        let _g = serial();
        enable(true);
        take();
        {
            let _outer = crate::span("trace-test-parent");
            let _inner = crate::span("trace-test-child");
        }
        let spans = take();
        enable(false);
        let outer = spans.iter().find(|s| s.name == "trace-test-parent").unwrap();
        let inner = spans.iter().find(|s| s.name == "trace-test-child").unwrap();
        assert_eq!(inner.parent(), outer.id, "child must point at its parent");
        assert_eq!(outer.parent(), 0, "outermost span has no parent");
    }

    #[test]
    fn adopted_parents_cross_threads() {
        let _g = serial();
        enable(true);
        take();
        let parent_id;
        {
            let _outer = crate::span("trace-test-dispatch");
            parent_id = current_parent();
            assert_ne!(parent_id, 0);
            std::thread::spawn(move || {
                let _adopt = adopt_parent(parent_id);
                let _s = crate::span("trace-test-adopted");
            })
            .join()
            .unwrap();
        }
        let spans = take();
        enable(false);
        let adopted = spans.iter().find(|s| s.name == "trace-test-adopted").unwrap();
        assert_eq!(adopted.parent(), parent_id);
    }

    #[test]
    fn snapshot_does_not_drain() {
        let _g = serial();
        enable(true);
        take();
        {
            let _s = crate::span("trace-test-snap");
        }
        assert!(snapshot().iter().any(|s| s.name == "trace-test-snap"));
        let spans = take();
        enable(false);
        assert!(spans.iter().any(|s| s.name == "trace-test-snap"));
    }

    #[test]
    fn chrome_json_shape() {
        let spans = vec![
            Span { name: "alpha", tid: 0, start_ns: 1_500, dur_ns: 2_000_123, id: 0, args: None },
            Span { name: "beta", tid: 3, start_ns: 10_000, dur_ns: 500, id: 0, args: None },
        ];
        let json = to_chrome_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000.123"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.ends_with("}"));
        assert!(!json.contains("\"args\""));
    }

    #[test]
    fn chrome_json_renders_op_args() {
        let spans = vec![Span {
            name: "matmul[2x3,3x4]",
            tid: 1,
            start_ns: 1_000,
            dur_ns: 2_000,
            id: 9,
            args: Some(SpanArgs { flops: 48, bytes: 128, shape: "2x3,3x4", parent: 7 }),
        }];
        let json = to_chrome_json(&spans);
        assert!(json.contains("\"name\":\"matmul[2x3,3x4]\""));
        assert!(json.contains(
            "\"args\":{\"flops\":48,\"bytes\":128,\"shape\":\"2x3,3x4\",\"id\":9,\"parent\":7}"
        ));
    }

    #[test]
    fn timestamps_are_monotonic_offsets() {
        let _g = serial();
        enable(true);
        take();
        {
            let _a = crate::span("trace-test-order-a");
        }
        std::thread::sleep(Duration::from_millis(1));
        {
            let _b = crate::span("trace-test-order-b");
        }
        let spans = take();
        enable(false);
        let a = spans.iter().find(|s| s.name == "trace-test-order-a").unwrap();
        let b = spans.iter().find(|s| s.name == "trace-test-order-b").unwrap();
        assert!(a.start_ns < b.start_ns);
    }
}
